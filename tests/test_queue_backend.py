"""Distributed queue backend: claim atomicity, leases, dedup, worker parity.

Covers the pull-based work-stealing layer end to end:

* the store's queue table (enqueue/claim/finish/requeue/reclaim semantics),
* :class:`~repro.orchestration.worker.QueueWorker` drain loops,
* ``SweepRunner(backend="queue")`` parity with the local backend,
* two *real* worker processes sharing one store — zero duplicate
  executions, and recovery from a SIGKILL mid-cell via lease reclaim.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import RunSpec
from repro.orchestration import (
    ExperimentPlan,
    QueuedCell,
    QueueWorker,
    ResultStore,
    SweepDefinition,
    SweepRunner,
    cells_from_run_specs,
    expand_cells,
    row_identity,
)
from repro.orchestration.worker import WorkerReport

REPO_ROOT = Path(__file__).resolve().parents[1]


def _tiny_definition(reps: int = 2, seed: int = 5) -> SweepDefinition:
    return SweepDefinition(
        name="tiny",
        seed=seed,
        repetitions=reps,
        plans=(
            ExperimentPlan(experiment="table1", grid={"ns": [64, 128], "repetitions": 1}),
            ExperimentPlan(experiment="ablation", grid={"n": 64, "repetitions": 1}),
        ),
    )


def _enqueue(store: ResultStore, cells) -> int:
    return store.enqueue_cells(
        (c.experiment, c.param_hash, c.seed, c.spec_json()) for c in cells
    )


def _worker_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _worker_command(store: str, worker_id: str, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "worker",
        "--store", store, "--worker-id", worker_id, "--poll", "0.05", *extra,
    ]


# --------------------------------------------------------------------------- #
# queue table semantics
# --------------------------------------------------------------------------- #
class TestQueueStore:
    def test_enqueue_claim_finish_lifecycle(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))
        with ResultStore(tmp_path / "r.sqlite") as store:
            assert _enqueue(store, cells) == len(cells)
            assert store.queue_depth()["pending"] == len(cells)
            claim = store.claim_cell("w1")
            assert isinstance(claim, QueuedCell)
            assert claim.state == "claimed"
            assert claim.owner == "w1"
            assert claim.attempt == 1
            assert claim.key == cells[0].key  # oldest pending first
            store.finish_cell(claim.key, "done")
            depth = store.queue_depth()
            assert depth == {
                "pending": len(cells) - 1, "claimed": 0, "done": 1, "failed": 0,
            }

    def test_claim_returns_none_on_empty_queue(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            assert store.claim_cell("w1") is None

    def test_finish_rejects_non_terminal_state(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ValueError, match="terminal"):
                store.finish_cell(("e", "h", 1), "pending")

    def test_reenqueue_resets_only_terminal_rows(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:2]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            first = store.claim_cell("w1")
            store.finish_cell(first.key, "done")
            second = store.claim_cell("w1")  # stays claimed
            # re-submitting the sweep resets the done row to pending but
            # must not steal the claim another worker is executing
            assert _enqueue(store, cells) == 1
            states = {c.key: c for c in store.queue_cells()}
            assert states[first.key].state == "pending"
            assert states[first.key].attempt == 0
            assert states[second.key].state == "claimed"
            assert states[second.key].attempt == 1

    def test_requeue_preserves_attempt_count(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            claim = store.claim_cell("w1")
            store.requeue_cell(claim.key)
            (row,) = store.queue_cells()
            assert row.state == "pending"
            assert row.owner is None
            assert row.attempt == 1  # requeue hands back the claim, not the budget
            again = store.claim_cell("w2")
            assert again.attempt == 2

    def test_reclaim_stale_returns_expired_claims(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            claim = store.claim_cell("dead-worker")
            time.sleep(1.1)  # julianday() has 1s resolution via datetime('now')
            assert store.reclaim_stale(lease_s=3600.0) == []  # fresh lease: untouched
            reclaimed = store.reclaim_stale(lease_s=0.5)
            assert reclaimed == [claim.key]
            (row,) = store.queue_cells()
            assert row.state == "pending"
            assert row.attempt == 1

    def test_fresh_heartbeat_blocks_reclaim(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            claim = store.claim_cell("w1")
            time.sleep(1.6)
            # a live heartbeat renews the lease even when claim_time is old;
            # lease 1.4 splits the two ages even with datetime('now')'s
            # 1-second truncation (claim age >= 1.6, heartbeat age <= 1.0)
            store.mark_heartbeat_key(claim.key, "w1")
            assert store.reclaim_stale(lease_s=1.4) == []
            assert store.queue_cells()[0].state == "claimed"

    def test_fail_exhausted_respects_attempt_budget(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            for _ in range(2):  # burn two claims
                claim = store.claim_cell("w1")
                store.requeue_cell(claim.key)
            assert store.fail_exhausted(max_attempts=3) == []  # budget not spent yet
            (cell,) = store.fail_exhausted(max_attempts=2)
            assert cell.state == "failed"
            assert cell.attempt == 2
            assert store.queue_cells()[0].state == "failed"

    def test_queue_counts_and_stale_claims_views(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            store.claim_cell("w1")
            time.sleep(1.1)
            counts = {row["experiment"]: row for row in store.queue_counts()}
            assert set(counts) == {c.experiment for c in cells}
            assert sum(r["pending"] + r["claimed"] for r in counts.values()) == len(cells)
            (stale,) = store.stale_claims(lease_s=0.5)
            assert stale["owner"] == "w1"
            assert stale["age_s"] > 0.5
            assert store.stale_claims(lease_s=3600.0) == []

    def test_concurrent_claims_cover_queue_exactly_once(self, tmp_path):
        """Racing claimants on separate connections never claim the same cell."""
        path = tmp_path / "r.sqlite"
        cells = expand_cells(_tiny_definition())
        with ResultStore(path) as store:
            _enqueue(store, cells)
        claimed: list[tuple] = []
        lock = threading.Lock()

        def drain_claims(worker: str) -> None:
            with ResultStore(path) as conn:
                while True:
                    claim = conn.claim_cell(worker)
                    if claim is None:
                        return
                    with lock:
                        claimed.append(claim.key)
                    conn.finish_cell(claim.key, "done")

        threads = [
            threading.Thread(target=drain_claims, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(c.key for c in cells)
        assert len(set(claimed)) == len(cells)

    def test_record_result_retries_through_held_write_lock(self, tmp_path):
        """A writer blocked by another connection's transaction lands via retry."""
        path = tmp_path / "r.sqlite"
        errors: list[BaseException] = []

        def blocked_writer() -> None:
            # tiny sqlite-level timeout so the application-level retry loop,
            # not the driver, is what carries the write through
            try:
                with ResultStore(path, busy_timeout_s=0.01) as writer:
                    writer.record_failure("other", {"n": 1}, 2, "boom")
            except BaseException as exc:  # surfaced in the main thread below
                errors.append(exc)

        with ResultStore(path) as store:
            store._begin_immediate()
            store._conn.execute(
                "INSERT INTO queue (experiment, param_hash, seed, spec_json) "
                "VALUES ('e', 'h', 1, '{}')"
            )
            writer_thread = threading.Thread(target=blocked_writer)
            writer_thread.start()
            time.sleep(0.3)  # let the writer hit the held lock and start retrying
            store._conn.commit()
            writer_thread.join(timeout=30)
            assert not writer_thread.is_alive()
            assert errors == []
            assert store.query(status="failed")[0].experiment == "other"


# --------------------------------------------------------------------------- #
# worker drain loop (in-process)
# --------------------------------------------------------------------------- #
class TestQueueWorker:
    def test_drain_executes_queue_and_records_results(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            report = QueueWorker(store, worker_id="w1", poll_interval_s=0.05).drain()
            assert isinstance(report, WorkerReport)
            assert report.executed == len(cells)
            assert report.failed == 0
            assert store.queue_depth()["done"] == len(cells)
            for cell in cells:
                run = store.get(cell.experiment, cell.params, cell.seed)
                assert run is not None and run.ok

    def test_cached_claim_skips_execution(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            SweepRunner(store, jobs=1).run_cells(cells)  # result already stored
            _enqueue(store, cells)
            # enqueue_cells resets done rows, but the runs row survives —
            # the claim is served from cache without re-executing
            report = QueueWorker(store, worker_id="w1", poll_interval_s=0.05).drain()
            assert report.cached == 1
            assert report.executed == 0
            assert store.queue_depth()["done"] == 1

    def test_no_skip_worker_reexecutes_cached_cells(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            SweepRunner(store, jobs=1).run_cells(cells)
            _enqueue(store, cells)
            report = QueueWorker(
                store, worker_id="w1", poll_interval_s=0.05, skip_completed=False
            ).drain()
            assert report.executed == 1
            assert report.cached == 0

    def test_exhausted_cell_records_gave_up_failure(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            claim = store.claim_cell("crashy")
            store.requeue_cell(claim.key)  # attempt budget now spent for cap=1
            report = QueueWorker(
                store, worker_id="w1", max_attempts=1, poll_interval_s=0.05
            ).drain()
            assert report.exhausted == 1
            assert report.executed == 0
            assert store.queue_cells()[0].state == "failed"
            (failure,) = store.query(status="failed")
            assert "gave up after 1 claim(s)" in failure.error

    def test_worker_report_summary_mentions_counts(self):
        report = WorkerReport(worker="w1", executed=3, failed=1, cached=2, wall_s=1.0)
        assert "3 executed, 1 failed, 2 cached" in report.summary()
        assert "gave up" not in report.summary()
        assert "1 gave up" in WorkerReport(worker="w", exhausted=1).summary()

    def test_row_identity_round_trips_both_cell_kinds(self):
        exp_cells = expand_cells(_tiny_definition(reps=1))
        spec = RunSpec(protocol="drr", params={"n": 64}, seed=9)
        for cell in exp_cells + cells_from_run_specs([spec]):
            experiment, params, seed = row_identity(cell.spec_json())
            assert experiment == cell.experiment
            assert seed == cell.seed
            # the decoded params must hash to the digest the cell was queued
            # under, or worker result rows would not upsert onto local ones
            from repro.orchestration import param_hash

            assert param_hash(params) == cell.param_hash

    def test_idle_backoff_doubles_with_jitter_and_caps(self, tmp_path):
        from repro.orchestration.worker import BACKOFF_CAP_FACTOR

        with ResultStore(tmp_path / "r.sqlite") as store:
            worker = QueueWorker(store, worker_id="w1", poll_interval_s=0.1)
            for polls, target in ((0, 0.1), (1, 0.2), (2, 0.4), (3, 0.8)):
                for _ in range(20):
                    sleep = worker.idle_backoff_s(polls)
                    assert target / 2 <= sleep <= target
            # the ladder tops out at BACKOFF_CAP_FACTOR x base
            cap = 0.1 * BACKOFF_CAP_FACTOR
            for polls in (3, 10, 1000):
                assert worker.idle_backoff_s(polls) <= cap
            # and jitter actually varies the draw
            draws = {round(worker.idle_backoff_s(5), 6) for _ in range(20)}
            assert len(draws) > 1

    def test_idle_backoff_resets_after_claim(self, tmp_path):
        """A drain over a queue that refills: the post-claim poll is fast again.

        Exercised indirectly: the loop counts consecutive empty polls and
        passes that to idle_backoff_s, so claiming once must restart the
        ladder.  We drive drain() with max_cells to keep it bounded.
        """
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            _enqueue(store, cells)
            sleeps: list[float] = []
            worker = QueueWorker(
                store, worker_id="w1", poll_interval_s=0.01, linger_s=0.05
            )
            original = worker.idle_backoff_s
            worker.idle_backoff_s = lambda polls: sleeps.append(polls) or original(polls)
            report = worker.drain()
            assert report.executed == 1
            # every idle sleep the linger produced restarted from zero after
            # the successful claim and then climbed monotonically
            assert sleeps == sorted(sleeps)
            assert sleeps[0] == 0

    def test_invalid_worker_knobs_rejected(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            for kwargs in (
                {"lease_s": 0}, {"max_attempts": 0}, {"poll_interval_s": 0},
                {"heartbeat_interval_s": 0}, {"linger_s": -1}, {"max_cells": 0},
            ):
                with pytest.raises(ValueError):
                    QueueWorker(store, **kwargs)


# --------------------------------------------------------------------------- #
# SweepRunner queue backend
# --------------------------------------------------------------------------- #
class TestQueueBackendRunner:
    def test_queue_backend_matches_local_store_bit_for_bit(self, tmp_path):
        definition = _tiny_definition()
        with ResultStore(tmp_path / "local.sqlite") as store:
            local_report = SweepRunner(store, jobs=1).run(definition)
            local = {(r.experiment, r.param_hash, r.seed): r for r in store.query()}
        with ResultStore(tmp_path / "queue.sqlite") as store:
            queue_report = SweepRunner(store, jobs=1, backend="queue").run(definition)
            queued = {(r.experiment, r.param_hash, r.seed): r for r in store.query()}
            assert store.queue_depth()["done"] == queue_report.executed
        assert queue_report.failed == 0
        assert queue_report.executed == local_report.executed
        assert local.keys() == queued.keys()
        for key, run in local.items():
            other = queued[key]
            assert run.rows == other.rows, f"rows differ for {key}"
            assert run.headers == other.headers
            assert run.params == other.params
            assert run.notes == other.notes

    def test_queue_backend_resume_report_matches_local(self, tmp_path):
        definition = _tiny_definition()
        with ResultStore(tmp_path / "local.sqlite") as store:
            SweepRunner(store, jobs=1).run(definition)
            local_resume = SweepRunner(store, jobs=1).run(definition)
        with ResultStore(tmp_path / "queue.sqlite") as store:
            SweepRunner(store, jobs=1, backend="queue").run(definition)
            queue_resume = SweepRunner(store, jobs=1, backend="queue").run(definition)
        assert queue_resume.skipped == queue_resume.total > 0
        assert queue_resume.summary() == local_resume.summary()

    def test_duplicate_specs_collapse_to_one_execution(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))
        doubled = cells + [cells[0]]
        with ResultStore(tmp_path / "r.sqlite") as store:
            report = SweepRunner(store, jobs=1).run_cells(doubled)
            assert report.executed == len(cells)
            assert report.cached == 1
            assert report.total == len(doubled)
            assert len(store) == len(cells)  # the twin produced no extra row
            assert ", 1 cached" in report.summary()

    def test_dedup_fans_failures_out_to_twins(self, tmp_path):
        definition = SweepDefinition(
            name="crashy",
            seed=3,
            repetitions=1,
            plans=(
                ExperimentPlan(
                    experiment="table1",
                    grid={"ns": [64], "repetitions": 1, "workload": ["nope"]},
                ),
            ),
        )
        cells = expand_cells(definition)
        with ResultStore(tmp_path / "r.sqlite") as store:
            report = SweepRunner(store, jobs=1).run_cells(cells + [cells[0]])
            assert report.failed == 2  # the representative and its twin
            assert report.cached == 0
            twin = report.outcomes[-1]
            assert twin.error is not None and "ValueError" in twin.error

    def test_queue_backend_dedups_before_enqueueing(self, tmp_path):
        cells = expand_cells(_tiny_definition(reps=1))[:1]
        with ResultStore(tmp_path / "r.sqlite") as store:
            report = SweepRunner(store, jobs=1, backend="queue").run_cells(
                cells + [cells[0]]
            )
            assert report.executed == 1
            assert report.cached == 1
            assert store.queue_depth()["done"] == 1

    def test_memory_store_rejected_for_multiprocess_queue(self):
        with ResultStore(":memory:") as store:
            runner = SweepRunner(store, jobs=2, backend="queue")
            with pytest.raises(ValueError, match="file-backed"):
                runner.run(_tiny_definition(reps=1))

    def test_memory_store_fine_for_inprocess_queue(self):
        with ResultStore(":memory:") as store:
            report = SweepRunner(store, jobs=1, backend="queue").run(
                _tiny_definition(reps=1)
            )
            assert report.executed == report.total > 0

    def test_unknown_backend_rejected(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ValueError, match="unknown execution backend"):
                SweepRunner(store, backend="slurm")

    def test_invalid_queue_knobs_rejected(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ValueError):
                SweepRunner(store, lease_s=0)
            with pytest.raises(ValueError):
                SweepRunner(store, max_attempts=0)


# --------------------------------------------------------------------------- #
# real worker processes sharing one store
# --------------------------------------------------------------------------- #
class TestDistributedWorkers:
    def test_two_workers_drain_with_zero_duplicate_executions(self, tmp_path):
        path = tmp_path / "r.sqlite"
        cells = expand_cells(_tiny_definition())
        with ResultStore(path) as store:
            _enqueue(store, cells)
        workers = [
            subprocess.Popen(
                _worker_command(str(path), f"proc{i}", "--linger", "2"),
                env=_worker_env(), cwd=str(REPO_ROOT),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for i in range(2)
        ]
        for proc in workers:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"worker failed:\n{out}\n{err}"
        with ResultStore(path) as store:
            rows = store.queue_cells()
            assert len(rows) == len(cells)
            # every cell executed exactly once: terminal state reached on
            # the first (and only) claim, by whichever worker won it
            assert all(row.state == "done" for row in rows)
            assert all(row.attempt == 1 for row in rows)
            for cell in cells:
                run = store.get(cell.experiment, cell.params, cell.seed)
                assert run is not None and run.ok

    def test_sigterm_mid_cell_releases_claim_and_exits_zero(self, tmp_path):
        """Graceful shutdown: a SIGTERMed worker hands its claim back.

        Unlike the SIGKILL case below, no lease has to expire — the
        worker's signal handler requeues the in-flight cell (pending,
        no owner, heartbeat row deleted) and the process exits 0.
        """
        path = tmp_path / "r.sqlite"
        # ~1.4s of engine simulation: a window wide enough to SIGTERM into
        spec = RunSpec(protocol="drr-gossip", params={"n": 4096}, backend="engine", seed=7)
        cells = cells_from_run_specs([spec])
        with ResultStore(path) as store:
            _enqueue(store, cells)
        victim = subprocess.Popen(
            _worker_command(str(path), "polite", "--heartbeat", "300"),
            env=_worker_env(), cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            with ResultStore(path) as store:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if store.queue_depth()["claimed"] == 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("worker never claimed the cell")
                os.kill(victim.pid, signal.SIGTERM)
                out, err = victim.communicate(timeout=30)
                assert victim.returncode == 0, f"worker failed:\n{out}\n{err}"
                assert "stopped by SIGTERM" in out
                (row,) = store.queue_cells()
                assert row.state == "pending"
                assert row.owner is None
                assert row.attempt == 1  # the claim is spent, not the budget
                assert store.heartbeats() == []  # liveness row released too
                assert store.query() == []  # nothing half-recorded
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

    def test_sigkilled_worker_claim_is_reclaimed_and_rerun(self, tmp_path):
        path = tmp_path / "r.sqlite"
        # ~1.4s of engine simulation: a window wide enough to SIGKILL into
        spec = RunSpec(protocol="drr-gossip", params={"n": 4096}, backend="engine", seed=7)
        cells = cells_from_run_specs([spec])
        with ResultStore(path) as store:
            _enqueue(store, cells)
        victim = subprocess.Popen(
            # heartbeat interval longer than the test: the claim's lease
            # cannot renew behind our back once the process dies
            _worker_command(str(path), "victim", "--heartbeat", "300"),
            env=_worker_env(), cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            with ResultStore(path) as store:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if store.queue_depth()["claimed"] == 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("worker never claimed the cell")
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)
                time.sleep(1.2)  # let the orphaned lease age past lease_s below
                report = QueueWorker(
                    store, worker_id="rescuer", lease_s=1.0, poll_interval_s=0.05
                ).drain()
                assert report.reclaimed == 1
                assert report.executed == 1
                (row,) = store.queue_cells()
                assert row.state == "done"
                assert row.attempt == 2  # the victim's claim plus the rescue
                run = store.get(cells[0].experiment, cells[0].params, cells[0].seed)
                assert run is not None and run.ok
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()


    def test_sigkilled_worker_mid_churn_sweep_reclaims_and_matches_local(self, tmp_path):
        """Fault injection meets fault tolerance: a churn cell survives its worker.

        A worker is SIGKILLed while executing a run whose *spec* injects
        mid-run node churn; the lease reclaim path reruns the cell, and —
        because churn fates are identity-keyed, not stream-keyed — the
        rescued result is bit-identical to a local execution of the spec.
        """
        from repro.api import RunResult, run

        path = tmp_path / "r.sqlite"
        spec = RunSpec(
            protocol="drr-gossip",
            params={"n": 4096},
            backend="engine",
            seed=7,
            failures={
                "loss_probability": 0.05,
                "churn_rate": 0.001,
                "churn_schedule": [[3, [2, 7, 11], "crash"]],
            },
        )
        cells = cells_from_run_specs([spec])
        with ResultStore(path) as store:
            _enqueue(store, cells)
        victim = subprocess.Popen(
            _worker_command(str(path), "victim", "--heartbeat", "300"),
            env=_worker_env(), cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            with ResultStore(path) as store:
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if store.queue_depth()["claimed"] == 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("worker never claimed the cell")
                os.kill(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)
                time.sleep(1.2)  # let the orphaned lease age past lease_s below
                report = QueueWorker(
                    store, worker_id="rescuer", lease_s=1.0, poll_interval_s=0.05
                ).drain()
                assert report.reclaimed == 1
                assert report.executed == 1
                (row,) = store.queue_cells()
                assert row.state == "done"
                assert row.attempt == 2
                stored = store.get_by_spec_hash(spec.spec_hash())
                assert stored is not None and stored.ok
                rescued = RunResult.from_dict(json.loads(stored.result_json))
            local = run(spec)
            assert rescued.same_outcome(local)
            assert rescued.degradation == local.degradation
            assert rescued.degradation is not None  # churn section survived the queue
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestQueueCLI:
    def test_enqueue_only_then_worker_then_results_queue(self, tmp_path, capsys):
        from repro.harness.cli import main

        store = str(tmp_path / "r.sqlite")
        sweep_argv = [
            "sweep", "--experiments", "ablation", "--ns", "64", "--reps", "2",
            "--seed", "11", "--store", store, "--exec", "queue", "--enqueue-only",
        ]
        assert main(sweep_argv) == 0
        out = capsys.readouterr().out
        assert "enqueued 2 of 2 cell(s)" in out
        assert "2 pending" in out
        assert main(["worker", "--store", store, "--poll", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 failed" in out
        assert main(["results", "--store", store, "--queue"]) == 0
        out = capsys.readouterr().out
        assert "ablation" in out
        assert "stale" not in out  # nothing claimed, nothing stale
        # a re-submitted sweep skips everything without touching the queue
        assert main(sweep_argv[:-1]) == 0  # drop --enqueue-only: full queue run
        out = capsys.readouterr().out
        assert "0 executed, 2 skipped, 0 failed" in out

    def test_enqueue_only_requires_queue_exec(self, tmp_path, capsys):
        from repro.harness.cli import main

        code = main([
            "sweep", "--experiments", "ablation", "--ns", "64",
            "--store", str(tmp_path / "r.sqlite"), "--enqueue-only",
        ])
        assert code == 2
        assert "--enqueue-only requires --exec queue" in capsys.readouterr().err

    def test_worker_without_store_errors(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main(["worker", "--store", str(tmp_path / "missing.sqlite")]) == 1
        assert "no result store" in capsys.readouterr().err

    def test_results_queue_flags_stale_claims(self, tmp_path, capsys):
        from repro.harness.cli import main

        path = tmp_path / "r.sqlite"
        cells = expand_cells(_tiny_definition(reps=1))
        with ResultStore(path) as store:
            _enqueue(store, cells)
            store.claim_cell("dead-worker")
        time.sleep(1.1)
        assert main(["results", "--store", str(path), "--queue", "--stale-after", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "stale claims" in out
        assert "dead-worker" in out

    def test_sweep_exec_queue_with_worker_processes(self, tmp_path, capsys):
        from repro.harness.cli import main

        store = str(tmp_path / "r.sqlite")
        assert main([
            "sweep", "--experiments", "ablation", "--ns", "64", "--reps", "2",
            "--seed", "11", "--store", store, "--exec", "queue", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 skipped, 0 failed" in out
        with ResultStore(store) as s:
            assert s.queue_depth()["done"] == 2
            assert all(row.attempt == 1 for row in s.queue_cells())

    def test_worker_telemetry_export(self, tmp_path, capsys):
        from repro.harness.cli import main

        store = str(tmp_path / "r.sqlite")
        events = tmp_path / "events.jsonl"
        assert main([
            "sweep", "--experiments", "ablation", "--ns", "64", "--reps", "1",
            "--seed", "3", "--store", store, "--exec", "queue", "--enqueue-only",
        ]) == 0
        capsys.readouterr()
        assert main([
            "worker", "--store", store, "--poll", "0.05", "--telemetry", str(events),
        ]) == 0
        out = capsys.readouterr().out
        assert "worker.execute" in out
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert any(e.get("name") == "worker.claim" for e in lines)
