"""Unit tests for repro.topology.base and repro.topology.graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology import (
    Topology,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    make_graph,
    random_regular_graph,
    ring_graph,
)


class TestTopologyBase:
    def test_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology.from_edges("x", 3, [(0, 0)])

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Topology.from_edges("x", 3, [(0, 5)])

    def test_duplicate_edges_collapsed(self):
        topo = Topology.from_edges("x", 3, [(0, 1), (1, 0), (0, 1)])
        assert topo.edge_count == 1

    def test_degrees_and_neighbors(self):
        topo = Topology.from_edges("path", 3, [(0, 1), (1, 2)])
        assert topo.degree(1) == 2
        assert topo.neighbors(1) == (0, 2)
        assert list(topo.edges()) == [(0, 1), (1, 2)]

    def test_connectivity(self):
        connected = Topology.from_edges("path", 3, [(0, 1), (1, 2)])
        disconnected = Topology.from_edges("pair", 3, [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_expected_local_drr_trees_matches_formula(self):
        topo = ring_graph(10)
        assert topo.expected_local_drr_trees() == pytest.approx(10 / 3)

    def test_networkx_round_trip(self):
        topo = grid_graph(16)
        back = Topology.from_networkx("grid", topo.to_networkx())
        assert back.edge_count == topo.edge_count
        assert back.n == topo.n

    def test_neighbor_fn_is_callable(self):
        topo = ring_graph(5)
        fn = topo.neighbor_fn()
        assert fn(0) == (1, 4)


class TestGenerators:
    def test_complete_graph(self):
        topo = complete_graph(6)
        assert topo.edge_count == 15
        assert topo.is_regular()

    def test_ring_graph(self):
        topo = ring_graph(8)
        assert all(topo.degree(i) == 2 for i in range(8))
        assert topo.is_connected()

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_grid_graph_degree_four(self):
        topo = grid_graph(36)
        assert all(topo.degree(i) == 4 for i in range(36))
        assert topo.is_connected()

    def test_grid_graph_rejects_prime(self):
        with pytest.raises(ValueError):
            grid_graph(13)

    def test_hypercube(self):
        topo = hypercube_graph(16)
        assert all(topo.degree(i) == 4 for i in range(16))
        assert topo.is_connected()

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError):
            hypercube_graph(12)

    def test_random_regular(self, rng):
        topo = random_regular_graph(64, 4, rng)
        assert all(topo.degree(i) == 4 for i in range(64))

    def test_random_regular_validates_parameters(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, rng)  # odd n*d
        with pytest.raises(ValueError):
            random_regular_graph(4, 4, rng)  # d >= n

    def test_erdos_renyi_edge_probability(self, rng):
        topo = erdos_renyi_graph(100, 0.1, rng)
        expected = 0.1 * 100 * 99 / 2
        assert abs(topo.edge_count - expected) < 0.35 * expected

    def test_erdos_renyi_invalid_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5, rng)

    def test_make_graph_registry(self, rng):
        topo = make_graph("ring", 16, rng)
        assert topo.n == 16
        with pytest.raises(ValueError):
            make_graph("nope", 16, rng)
