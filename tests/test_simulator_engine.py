"""Unit tests for the network and the synchronous round engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import (
    ConfigurationError,
    EngineConfig,
    FailureModel,
    Message,
    MetricsCollector,
    Network,
    ProtocolNode,
    ProtocolViolation,
    RoundLimitExceeded,
    Send,
    SynchronousEngine,
    Tracer,
    UnknownNodeError,
    default_round_limit,
)


class OneShotSender(ProtocolNode):
    """Sends a single DATA message to node (id+1) mod n in round 0."""

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id)
        self.n = n
        self.sent = False
        self.received: list[Message] = []

    def begin_round(self, ctx):
        if self.sent:
            return []
        self.sent = True
        return [Send(recipient=(self.node_id + 1) % self.n, kind="data", payload={"v": self.node_id})]

    def on_messages(self, ctx, messages):
        self.received.extend(messages)
        return []

    def is_complete(self):
        return self.sent


class ChattyNode(ProtocolNode):
    """Violates the one-call-per-round budget."""

    def begin_round(self, ctx):
        return [Send(recipient=0, kind="data"), Send(recipient=1, kind="data")]

    def is_complete(self):
        return False


class NeverDone(ProtocolNode):
    def is_complete(self):
        return False


def build_engine(n, node_cls=OneShotSender, **config_kwargs):
    rng = np.random.default_rng(0)
    network = Network(n, rng=rng)
    nodes = [node_cls(i, n) if node_cls is OneShotSender else node_cls(i) for i in range(n)]
    engine = SynchronousEngine(
        network=network,
        nodes=nodes,
        rng=rng,
        config=EngineConfig(**config_kwargs) if config_kwargs else None,
    )
    return engine, nodes


class TestNetwork:
    def test_requires_positive_n(self):
        with pytest.raises(ConfigurationError):
            Network(0)

    def test_complete_graph_neighbors(self):
        net = Network(4, rng=np.random.default_rng(0))
        assert net.neighbors(1) == [0, 2, 3]
        assert net.is_complete_graph

    def test_unknown_node_rejected(self):
        net = Network(4, rng=np.random.default_rng(0))
        with pytest.raises(UnknownNodeError):
            net.is_alive(9)

    def test_crash_marks_nodes_dead(self):
        net = Network(4, rng=np.random.default_rng(0))
        net.crash([1, 2])
        assert not net.is_alive(1)
        assert net.alive_count == 2

    def test_cannot_crash_everyone(self):
        net = Network(2, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            net.crash([0, 1])

    def test_deliver_counts_all_and_drops_to_dead(self):
        net = Network(3, rng=np.random.default_rng(0))
        net.crash([2])
        metrics = MetricsCollector(n=3)
        msgs = [Message(0, 1, "data"), Message(0, 2, "data")]
        delivered = net.deliver(msgs, metrics)
        assert metrics.total_messages == 2
        assert len(delivered) == 1
        assert delivered[0].recipient == 1

    def test_initial_crashes_from_failure_model(self):
        net = Network(100, failure_model=FailureModel(crash_fraction=0.1), rng=np.random.default_rng(1))
        assert net.alive_count == 90


class TestEngineBasics:
    def test_messages_delivered_and_metrics_counted(self):
        engine, nodes = build_engine(4)
        result = engine.run()
        assert result.completed
        assert result.metrics.total_messages == 4
        assert all(len(node.received) == 1 for node in nodes)

    def test_node_id_order_enforced(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [OneShotSender(1, 2), OneShotSender(0, 2)]
        with pytest.raises(ConfigurationError):
            SynchronousEngine(network, nodes, rng)

    def test_node_count_must_match(self):
        rng = np.random.default_rng(0)
        network = Network(3, rng=rng)
        with pytest.raises(ConfigurationError):
            SynchronousEngine(network, [OneShotSender(0, 3)], rng)

    def test_call_budget_enforced(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [ChattyNode(0), ChattyNode(1)]
        engine = SynchronousEngine(network, nodes, rng)
        with pytest.raises(ProtocolViolation):
            engine.run()

    def test_round_limit_strict_raises(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [NeverDone(0), NeverDone(1)]
        engine = SynchronousEngine(network, nodes, rng, config=EngineConfig(max_rounds=3))
        with pytest.raises(RoundLimitExceeded):
            engine.run()

    def test_round_limit_lenient_returns_partial(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [NeverDone(0), NeverDone(1)]
        engine = SynchronousEngine(
            network, nodes, rng, config=EngineConfig(max_rounds=3, strict=False)
        )
        result = engine.run()
        assert not result.completed
        assert result.rounds == 3

    def test_stop_condition_halts_early(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [NeverDone(0), NeverDone(1)]
        engine = SynchronousEngine(
            network,
            nodes,
            rng,
            config=EngineConfig(max_rounds=50, stop_condition=lambda nodes, r: r >= 5),
        )
        result = engine.run()
        assert result.stopped_by_condition
        assert result.rounds == 5

    def test_default_round_limit_scales_with_log2(self):
        assert default_round_limit(2) >= 64
        assert default_round_limit(2**16) > default_round_limit(2**8)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(max_rounds=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(max_substeps=0)


class EchoNode(ProtocolNode):
    """Replies to any DATA message with an ACK in the same round."""

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.acks = 0
        self.done_sending = node_id != 0

    def begin_round(self, ctx):
        if self.done_sending:
            return []
        self.done_sending = True
        return [Send(recipient=1, kind="data")]

    def on_messages(self, ctx, messages):
        out = []
        for msg in messages:
            if msg.kind == "data":
                out.append(Send(recipient=msg.sender, kind="ack"))
            else:
                self.acks += 1
        return out

    def is_complete(self):
        return self.done_sending


class TestSubsteps:
    def test_reply_delivered_same_round_with_three_substeps(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [EchoNode(0), EchoNode(1)]
        engine = SynchronousEngine(network, nodes, rng, config=EngineConfig(max_substeps=3))
        result = engine.run()
        assert nodes[0].acks == 1
        assert result.metrics.total_messages == 2

    def test_reply_spills_to_next_round_with_two_substeps(self):
        rng = np.random.default_rng(0)
        network = Network(2, rng=rng)
        nodes = [EchoNode(0), EchoNode(1)]
        engine = SynchronousEngine(network, nodes, rng, config=EngineConfig(max_substeps=2))
        result = engine.run()
        # The ACK is carried over and delivered at the start of round 2.
        assert nodes[0].acks == 1
        assert result.rounds >= 2


class TestTracer:
    def test_tracer_records_deliveries(self):
        rng = np.random.default_rng(0)
        network = Network(3, rng=rng)
        nodes = [OneShotSender(i, 3) for i in range(3)]
        tracer = Tracer()
        engine = SynchronousEngine(network, nodes, rng, tracer=tracer)
        engine.run()
        assert len(tracer) == 3
        assert all(e.delivered for e in tracer.events())
        assert len(tracer.sent_by(0)) == 1
        assert len(tracer.received_by(1)) == 1
        assert "data" in tracer.events().__next__().describe()

    def test_tracer_predicate_filters(self):
        rng = np.random.default_rng(0)
        network = Network(3, rng=rng)
        nodes = [OneShotSender(i, 3) for i in range(3)]
        tracer = Tracer(predicate=lambda e: e.message.sender == 0)
        engine = SynchronousEngine(network, nodes, rng, tracer=tracer)
        engine.run()
        assert len(tracer) == 1
