"""Tests for Phase III: Gossip-max, Gossip-ave, Data-spread."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    run_convergecast,
    run_data_spread,
    run_drr,
    run_gossip_ave,
    run_gossip_max,
)
from repro.core.drr_gossip import DRRGossipConfig, broadcast_root_addresses
from repro.simulator import FailureModel, MetricsCollector


def make_phase3_inputs(n=512, seed=31, delta=0.0, value_scale=100.0):
    """Run Phases I and II so Phase III can be tested in isolation."""
    rng = np.random.default_rng(seed)
    fm = FailureModel(loss_probability=delta)
    values = rng.uniform(0.0, value_scale, size=n)
    drr = run_drr(n, rng=rng, failure_model=fm)
    roots = drr.forest.roots
    cov_max = run_convergecast(drr, values, op="max", failure_model=fm, rng=rng)
    cov_sum = run_convergecast(drr, values, op="sum", failure_model=fm, rng=rng)
    metrics = MetricsCollector(n=n)
    root_of = broadcast_root_addresses(drr, roots, rng, DRRGossipConfig(failure_model=fm), metrics)
    return dict(
        n=n,
        rng=rng,
        fm=fm,
        values=values,
        drr=drr,
        roots=roots,
        cov_max=cov_max,
        cov_sum=cov_sum,
        root_of=root_of,
    )


class TestGossipMax:
    def test_all_roots_learn_max_on_reliable_network(self):
        ctx = make_phase3_inputs()
        result = run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert result.all_roots_agree()
        assert result.consensus_value() == pytest.approx(ctx["values"].max())

    def test_gossip_fraction_monotone_story(self):
        ctx = make_phase3_inputs()
        result = run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        # Theorem 5: after the gossip procedure a constant fraction of roots
        # already holds the maximum.
        assert result.after_gossip_fraction > 0.2

    def test_message_count_linear_in_n(self):
        ctx = make_phase3_inputs(n=1024)
        metrics = MetricsCollector(n=1024)
        run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
            metrics=metrics,
        )
        # Phase III is O(n) messages: allow a generous constant but far below n log n.
        assert metrics.total_messages < 14 * 1024

    def test_rounds_budget_used(self):
        ctx = make_phase3_inputs(n=256)
        result = run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
            gossip_rounds=5,
            sampling_rounds=3,
        )
        assert result.gossip_rounds == 5
        assert result.sampling_rounds == 3

    def test_lossy_network_still_reaches_consensus_whp(self):
        ctx = make_phase3_inputs(delta=0.1, seed=32)
        result = run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            failure_model=ctx["fm"],
            rng=ctx["rng"],
        )
        values = np.array(list(result.estimates.values()))
        top = ctx["cov_max"].value_vector(ctx["roots"]).max()
        assert np.mean(values >= top) > 0.95

    def test_input_validation(self):
        ctx = make_phase3_inputs(n=64)
        with pytest.raises(ValueError):
            run_gossip_max(
                roots=np.array([], dtype=np.int64),
                root_values=np.array([]),
                root_of=ctx["root_of"],
                n=64,
            )
        with pytest.raises(ValueError):
            run_gossip_max(
                roots=ctx["roots"],
                root_values=np.zeros(1),
                root_of=ctx["root_of"],
                n=64,
            )
        with pytest.raises(ValueError):
            run_gossip_max(
                roots=ctx["roots"],
                root_values=ctx["cov_max"].value_vector(ctx["roots"]),
                root_of=np.zeros(3, dtype=np.int64),
                n=64,
            )


class TestGossipAve:
    def test_largest_root_estimate_close_to_true_average(self):
        ctx = make_phase3_inputs()
        largest = ctx["drr"].forest.largest_root()
        result = run_gossip_ave(
            roots=ctx["roots"],
            local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
            local_weights=ctx["cov_sum"].weight_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
            trace_root=largest,
        )
        truth = ctx["values"].mean()
        assert result.estimate_at(largest) == pytest.approx(truth, rel=1e-3)
        assert len(result.history) == result.rounds

    def test_mass_conservation_without_loss(self):
        ctx = make_phase3_inputs()
        result = run_gossip_ave(
            roots=ctx["roots"],
            local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
            local_weights=ctx["cov_sum"].weight_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert sum(result.sums.values()) == pytest.approx(ctx["values"].sum(), rel=1e-9)
        assert sum(result.weights.values()) == pytest.approx(ctx["n"], rel=1e-9)

    def test_loss_only_removes_mass(self):
        ctx = make_phase3_inputs(delta=0.2, seed=33)
        result = run_gossip_ave(
            roots=ctx["roots"],
            local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
            local_weights=ctx["cov_sum"].weight_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            failure_model=ctx["fm"],
            rng=ctx["rng"],
        )
        assert sum(result.weights.values()) <= ctx["n"] + 1e-9
        # the ratio estimate at the largest root survives loss well
        largest = ctx["drr"].forest.largest_root()
        truth = ctx["values"].mean()
        assert abs(result.estimate_at(largest) - truth) / truth < 0.2

    def test_unit_weight_variant_estimates_sum(self):
        ctx = make_phase3_inputs()
        largest = ctx["drr"].forest.largest_root()
        weights = (ctx["roots"] == largest).astype(float)
        result = run_gossip_ave(
            roots=ctx["roots"],
            local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
            local_weights=weights,
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert result.estimate_at(largest) == pytest.approx(ctx["values"].sum(), rel=1e-3)

    def test_weight_validation(self):
        ctx = make_phase3_inputs(n=64)
        with pytest.raises(ValueError):
            run_gossip_ave(
                roots=ctx["roots"],
                local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
                local_weights=-np.ones(ctx["roots"].size),
                root_of=ctx["root_of"],
                n=64,
            )
        with pytest.raises(ValueError):
            run_gossip_ave(
                roots=ctx["roots"],
                local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
                local_weights=np.zeros(ctx["roots"].size),
                root_of=ctx["root_of"],
                n=64,
            )


class TestDataSpread:
    def test_value_reaches_every_root(self):
        ctx = make_phase3_inputs()
        spreader = int(ctx["roots"][0])
        result = run_data_spread(
            roots=ctx["roots"],
            spreader=spreader,
            value=123.456,
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert all(v == pytest.approx(123.456) for v in result.estimates.values())

    def test_requires_finite_value_and_valid_spreader(self):
        ctx = make_phase3_inputs(n=64)
        with pytest.raises(ValueError):
            run_data_spread(ctx["roots"], int(ctx["roots"][0]), float("inf"), ctx["root_of"], 64)
        non_root = int(np.flatnonzero(ctx["drr"].forest.parent >= 0)[0])
        with pytest.raises(ValueError):
            run_data_spread(ctx["roots"], non_root, 1.0, ctx["root_of"], 64)


class TestPhase3Properties:
    @given(st.integers(min_value=16, max_value=256), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_gossip_max_consensus_equals_root_max(self, n, seed):
        ctx = make_phase3_inputs(n=n, seed=seed)
        result = run_gossip_max(
            roots=ctx["roots"],
            root_values=ctx["cov_max"].value_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert result.consensus_value() == pytest.approx(
            float(ctx["cov_max"].value_vector(ctx["roots"]).max())
        )

    @given(st.integers(min_value=16, max_value=200), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_push_sum_mass_is_conserved_for_any_seed(self, n, seed):
        ctx = make_phase3_inputs(n=n, seed=seed)
        result = run_gossip_ave(
            roots=ctx["roots"],
            local_sums=ctx["cov_sum"].value_vector(ctx["roots"]),
            local_weights=ctx["cov_sum"].weight_vector(ctx["roots"]),
            root_of=ctx["root_of"],
            n=ctx["n"],
            rng=ctx["rng"],
        )
        assert sum(result.weights.values()) == pytest.approx(n, rel=1e-9)
