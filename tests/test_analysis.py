"""Tests for the analysis toolkit: theory, fitting, statistics, lower bound."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    adversarial_push_max_messages,
    best_shape,
    bootstrap_mean_ci,
    fit_shape,
    knowledge_spread_after,
    power_law_exponent,
    summarize,
    theory,
    whp_satisfied,
    wilson_interval,
)


class TestTheory:
    def test_log_helpers(self):
        assert float(theory.log2n(1024)) == pytest.approx(10.0)
        assert float(theory.loglog2n(2**16)) == pytest.approx(4.0)
        assert float(theory.loglog2n(2)) == 1.0

    def test_bound_monotonicity(self):
        ns = np.array([2**8, 2**10, 2**12, 2**14])
        for fn in (
            theory.expected_tree_count,
            theory.drr_message_bound,
            theory.uniform_gossip_message_bound,
            theory.chord_uniform_gossip_messages,
        ):
            vals = fn(ns)
            assert np.all(np.diff(vals) > 0)

    def test_drr_bound_smaller_than_uniform_bound(self):
        n = 2**14
        assert theory.drr_message_bound(n) < theory.uniform_gossip_message_bound(n)

    def test_table1_rows_structure(self):
        assert set(theory.TABLE1_ROWS) == {
            "efficient gossip [Kashyap et al.]",
            "uniform gossip [Kempe et al.]",
            "DRR-gossip [this paper]",
        }
        for name, row in theory.TABLE1_ROWS.items():
            assert len(row) == 5
            assert row[2] in ("yes", "no")

    def test_paper_gossip_max_rounds(self):
        assert theory.paper_gossip_max_rounds(1024) >= 8 * math.log2(1024)
        assert theory.paper_gossip_max_rounds(1024, delta=0.1) > theory.paper_gossip_max_rounds(1024)
        with pytest.raises(ValueError):
            theory.paper_gossip_max_rounds(1024, c=0.9)


class TestFitting:
    def test_fit_recovers_linear_relationship(self):
        ns = np.array([256, 512, 1024, 2048, 4096])
        y = 3.0 * np.log2(ns) + 2.0
        fit = fit_shape(ns, y, "log n")
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared > 0.999

    def test_best_shape_distinguishes_logn_from_loglogn(self):
        ns = np.array([2**8, 2**10, 2**12, 2**14, 2**16, 2**18])
        log_curve = 5.0 * np.log2(ns)
        loglog_curve = 5.0 * np.log2(np.log2(ns))
        assert best_shape(ns, log_curve, candidates=["constant", "loglog n", "log n"]).shape_name == "log n"
        assert (
            best_shape(ns, loglog_curve, candidates=["constant", "loglog n", "log n"]).shape_name
            == "loglog n"
        )

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            fit_shape([1, 2], [1, 2], "exp n")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_shape([1], [1], "log n")

    def test_power_law_exponent(self):
        ns = np.array([128, 256, 512, 1024, 2048])
        assert power_law_exponent(ns, 7.0 * ns**1.0) == pytest.approx(1.0, abs=1e-6)
        assert power_law_exponent(ns, 0.5 * ns**2.0) == pytest.approx(2.0, abs=1e-6)
        with pytest.raises(ValueError):
            power_law_exponent(ns, np.zeros_like(ns))

    @given(st.floats(min_value=0.1, max_value=50), st.floats(min_value=-10, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_fit_roundtrip_property(self, slope, intercept):
        ns = np.array([2**8, 2**10, 2**12, 2**14])
        y = slope * np.log2(ns) + intercept
        fit = fit_shape(ns, y, "log n")
        assert fit.slope == pytest.approx(slope, rel=1e-6, abs=1e-6)


class TestStatistics:
    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)
        assert stats.count == 4
        assert "mean" in stats.as_dict()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_wilson_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(90, 100)
        assert lo < 0.9 < hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_wilson_interval_zero_failures_not_degenerate(self):
        lo, hi = wilson_interval(20, 20)
        assert lo < 1.0
        assert hi == 1.0

    def test_wilson_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)

    def test_whp_satisfied(self):
        assert whp_satisfied(100, 100, target=0.9)
        assert not whp_satisfied(5, 10, target=0.9)

    def test_bootstrap_ci_covers_mean(self, rng):
        samples = rng.normal(10.0, 1.0, size=200)
        lo, hi = bootstrap_mean_ci(samples, rng)
        assert lo < samples.mean() < hi
        with pytest.raises(ValueError):
            bootstrap_mean_ci([], rng)


class TestLowerBound:
    def test_knowledge_spread_after_zero_rounds(self):
        spread = knowledge_spread_after(32, 0, rng=1)
        assert np.allclose(spread, 1.0 / 32)

    def test_knowledge_grows_with_rounds(self):
        early = knowledge_spread_after(64, 2, rng=2).min()
        late = knowledge_spread_after(64, 10, rng=2).min()
        assert late >= early

    def test_adversarial_messages_exceed_half_n_log_n(self):
        n = 256
        result = adversarial_push_max_messages(n, rng=3)
        assert result.messages_to_target >= 0.4 * n * math.log2(n)

    def test_adversarial_messages_grow_superlinearly(self):
        small = adversarial_push_max_messages(128, rng=4).messages_to_target / 128
        large = adversarial_push_max_messages(1024, rng=4).messages_to_target / 1024
        assert large > small

    def test_curve_is_monotone_nondecreasing(self):
        result = adversarial_push_max_messages(128, rng=5)
        assert np.all(np.diff(result.curve) >= -1e-12)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            adversarial_push_max_messages(1)
        with pytest.raises(ValueError):
            knowledge_spread_after(1, 3)
