"""Simulation service: HTTP job API + content-addressed result cache.

Covers the whole stack, thin to thick:

* :class:`~repro.service.manager.ServiceManager` — submission dedup
  (cache hit / in-flight attach / enqueue), status and result reads;
* :class:`~repro.service.routers.Router` — URL shapes, status codes,
  telemetry counters, no transport required;
* HTTP end-to-end — :class:`ServiceServer` + :class:`ServiceClient`
  with real queue workers: overlapping clients, concurrent duplicate
  POSTs, and bit-identical parity with direct ``repro.run``;
* the store's spec-hash layer — content-address invariant and the
  migration backfill for stores created before the service existed.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import threading
import time

import pytest

from repro.api import RunResult, RunSpec, run
from repro.observability.telemetry import Telemetry
from repro.orchestration import QueueWorker, ResultStore, cell_spec_hash, cells_from_run_specs
from repro.orchestration.worker import row_identity
from repro.service import Router, ServiceClient, ServiceError, ServiceManager, ServiceServer


def _spec_doc(n: int = 64, seed: int = 3, protocol: str = "drr-gossip") -> dict:
    return {"protocol": protocol, "params": {"n": n}, "seed": seed}


def _drain(path) -> None:
    """Run one in-process worker over the service's store until empty."""
    with ResultStore(path) as store:
        QueueWorker(store, worker_id="drainer", poll_interval_s=0.05).drain()


@contextlib.contextmanager
def _service(tmp_path):
    path = tmp_path / "svc.sqlite"
    with ServiceServer(path, port=0) as server:
        yield server, path


# --------------------------------------------------------------------------- #
# manager: submission dedup + reads
# --------------------------------------------------------------------------- #
class TestServiceManager:
    def test_submit_content_addresses_by_spec_hash(self, tmp_path):
        doc = _spec_doc()
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            submitted = manager.submit(doc)
            # the public run id IS the spec's canonical hash
            assert submitted["run_id"] == RunSpec(**doc).spec_hash()
            assert submitted["state"] == "pending"
            assert submitted["cached"] is False
            assert manager.queue()["depth"]["pending"] == 1

    def test_inflight_duplicate_attaches_without_second_row(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            first = manager.submit(_spec_doc())
            twin = manager.submit(_spec_doc())
            assert twin["run_id"] == first["run_id"]
            assert twin["state"] == "pending"
            assert twin["cached"] is False  # attached, not served from cache
            assert manager.queue()["depth"]["pending"] == 1

    def test_completed_spec_served_from_cache(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            submitted = manager.submit(_spec_doc())
            _drain(path)
            again = manager.submit(_spec_doc())
            assert again == {"run_id": submitted["run_id"], "state": "done", "cached": True}
            assert manager.queue()["depth"]["pending"] == 0
            status, body = manager.result(submitted["run_id"])
            assert status == 200
            assert body["cached"] is True
            assert body["result"]["rounds"] >= 1

    def test_sweep_fans_out_with_repetitions_and_dedups_twins(self, tmp_path):
        doc = {"runs": [_spec_doc(64), _spec_doc(96), _spec_doc(64)], "repetitions": 2}
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            sweep = manager.submit_sweep(doc)
            # 3 specs x 2 derived-seed repetitions, the twin's pair cached
            assert sweep["count"] == 6
            assert sweep["cached"] == 2
            assert len({r["run_id"] for r in sweep["runs"]}) == 4
            assert manager.queue()["depth"]["pending"] == 4

    def test_submit_rejects_multi_spec_and_bad_repetitions(self, tmp_path):
        from repro.api import SpecValidationError

        with ServiceManager(tmp_path / "s.sqlite") as manager:
            with pytest.raises(SpecValidationError, match="exactly one"):
                manager.submit({"runs": [_spec_doc(64), _spec_doc(96)]})
            for bad in (0, -2, "many"):
                with pytest.raises(SpecValidationError, match="repetitions"):
                    manager.submit_sweep({"runs": [_spec_doc()], "repetitions": bad})

    def test_status_lifecycle_pending_then_done(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            run_id = manager.submit(_spec_doc())["run_id"]
            pending = manager.status(run_id)
            assert pending["state"] == "pending"
            assert pending["attempt"] == 0
            assert pending["has_result"] is False
            _drain(path)
            done = manager.status(run_id)
            assert done["state"] == "done"
            assert done["attempt"] == 1
            assert done["has_result"] is True
            assert done["duration_s"] > 0

    def test_status_unknown_id_is_none(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            assert manager.status("ab" * 8) is None

    def test_result_codes_track_run_state(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            run_id = manager.submit(_spec_doc())["run_id"]
            status, body = manager.result(run_id)
            assert status == 409  # still pending: poll later
            assert body["state"] == "pending"
            status, body = manager.result("ff" * 8)
            assert status == 404

    def test_failed_run_reported_with_error(self, tmp_path):
        path = tmp_path / "s.sqlite"
        (cell,) = cells_from_run_specs([RunSpec(**_spec_doc())])
        experiment, params, seed = row_identity(cell.spec_json())
        with ResultStore(path) as store:
            store.record_failure(experiment, params, seed, "boom", spec_json=cell.spec_json())
        with ServiceManager(path) as manager:
            run_id = cell_spec_hash(cell.spec_json())
            assert manager.status(run_id)["state"] == "failed"
            assert manager.status(run_id)["error"] == "boom"
            status, body = manager.result(run_id)
            assert status == 409
            assert body == {"run_id": run_id, "state": "failed", "error": "boom"}

    def test_retry_resets_failed_row_to_pending(self, tmp_path):
        """The operator path for poison cells: failed → pending, fresh budget."""
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            run_id = manager.submit(_spec_doc(64, seed=21))["run_id"]
            # fail the row the way a worker does: claim, record, finish
            with ResultStore(path) as store:
                cell = store.claim_cell("crasher")
                experiment, params, seed = row_identity(cell.spec_json)
                store.record_failure(experiment, params, seed, "boom", spec_json=cell.spec_json)
                store.finish_cell(cell.key, "failed")
            assert manager.status(run_id)["state"] == "failed"
            status, body = manager.retry(run_id)
            assert status == 202
            assert body == {"run_id": run_id, "state": "pending", "retried": True}
            with ResultStore(path) as store:
                row = store.queue_cell_by_spec_hash(run_id)
                assert row.state == "pending"
                assert row.attempt == 0  # full fresh attempt budget
                assert row.owner is None
            assert manager.status(run_id)["state"] == "pending"
            # the retried cell executes and overwrites the failure row
            _drain(path)
            assert manager.status(run_id)["state"] == "done"
            assert manager.result(run_id)[0] == 200

    def test_retry_conflicts_on_every_non_failed_state(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            status, body = manager.retry("ff" * 8)
            assert status == 404
            run_id = manager.submit(_spec_doc(64, seed=22))["run_id"]
            status, body = manager.retry(run_id)
            assert status == 409
            assert body["state"] == "pending"
            assert body["retried"] is False
            with ResultStore(path) as store:
                store.claim_cell("w1")
            status, body = manager.retry(run_id)
            assert status == 409
            assert body["state"] == "claimed"
            with ResultStore(path) as store:
                store.requeue_cell(store.queue_cell_by_spec_hash(run_id).key)
            _drain(path)
            status, body = manager.retry(run_id)
            assert status == 409
            assert body["state"] == "done"

    def test_retry_without_queue_row_names_the_gap(self, tmp_path):
        """A failure recorded before the service era has no row to reset."""
        path = tmp_path / "s.sqlite"
        (cell,) = cells_from_run_specs([RunSpec(**_spec_doc())])
        experiment, params, seed = row_identity(cell.spec_json())
        with ResultStore(path) as store:
            store.record_failure(experiment, params, seed, "boom", spec_json=cell.spec_json())
        with ServiceManager(path) as manager:
            status, body = manager.retry(cell_spec_hash(cell.spec_json()))
            assert status == 409
            assert body["state"] == "failed"
            assert "resubmit" in body["error"]

    def test_healthz_reports_store_identity(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            manager.submit(_spec_doc())
            health = manager.healthz()
            assert health["status"] == "ok"
            assert health["store"] == str(path)
            assert health["queue"]["pending"] == 1


# --------------------------------------------------------------------------- #
# router: URL shapes + status codes (no HTTP transport)
# --------------------------------------------------------------------------- #
class TestRouter:
    def test_submit_codes_202_enqueued_200_cached(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            router = Router(manager)
            status, doc = router.route("POST", "/v1/runs", _spec_doc())
            assert status == 202
            assert doc["cached"] is False
            _drain(path)
            status, doc = router.route("POST", "/v1/runs", _spec_doc())
            assert status == 200
            assert doc["cached"] is True

    def test_error_mapping(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            router = Router(manager)
            assert router.route("POST", "/v1/runs", None)[0] == 400
            # flat params are the canonical submission mistake: 400 + message
            status, doc = router.route(
                "POST", "/v1/runs", {"protocol": "drr-gossip", "n": 64}
            )
            assert status == 400
            assert "unknown keys" in doc["error"]
            assert router.route("GET", f"/v1/runs/{'ab' * 8}", None)[0] == 404
            assert router.route("GET", "/v1/nope", None)[0] == 404
            assert router.route("DELETE", "/v1/runs", None)[0] == 405

    def test_run_id_paths_must_look_like_hashes(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            router = Router(manager)
            # non-hex id falls through to the 404 route, never the manager
            assert router.route("GET", "/v1/runs/not-a-hash", None)[0] == 404
            assert router.route("GET", "/v1/runs/ABCDEF12", None)[0] == 404
            assert router.route("POST", "/v1/runs/not-a-hash/retry", None)[0] == 404

    def test_retry_route_maps_manager_codes(self, tmp_path):
        with ServiceManager(tmp_path / "s.sqlite") as manager:
            router = Router(manager)
            assert router.route("POST", f"/v1/runs/{'ff' * 8}/retry", None)[0] == 404
            run_id = manager.submit(_spec_doc())["run_id"]
            status, doc = router.route("POST", f"/v1/runs/{run_id}/retry", None)
            assert status == 409
            assert doc["state"] == "pending"

    def test_requests_counted_and_spans_aggregated(self, tmp_path):
        telemetry = Telemetry()
        path = tmp_path / "s.sqlite"
        with ServiceManager(path, telemetry=telemetry) as manager:
            router = Router(manager)
            router.route("POST", "/v1/runs", _spec_doc())
            run_id = RunSpec(**_spec_doc()).spec_hash()
            router.route("GET", f"/v1/runs/{run_id}", None)
            router.route("POST", "/v1/runs", {"protocol": "drr-gossip", "n": 1})
            doc = telemetry.as_dict()
            assert doc["counters"]["service.requests"] == 3
            assert doc["counters"]["service.rejected"] == 1
            assert doc["counters"]["service.enqueued"] == 1
            # ids are collapsed out of span names so latency aggregates
            assert "service.GET /v1/runs/{id}" in doc["spans"]


# --------------------------------------------------------------------------- #
# HTTP end-to-end: real server, real clients, real workers
# --------------------------------------------------------------------------- #
class TestServiceHTTP:
    def test_two_clients_overlapping_specs_execute_once(self, tmp_path):
        """The PR's acceptance scenario, minus the subprocess worker pool."""
        specs = [_spec_doc(n, seed=5) for n in (64, 96, 128)]
        with _service(tmp_path) as (server, path):
            with ServiceClient(server.url) as alice, ServiceClient(server.url) as bob:
                sub_a = [alice.submit(s) for s in specs[:2]]
                sub_b = [bob.submit(s) for s in specs[1:]]
                # the overlap attached to alice's pending row
                assert sub_b[0]["run_id"] == sub_a[1]["run_id"]
                assert sub_b[0]["cached"] is False
                _drain(path)
                # every spec executed exactly once: one terminal row per
                # spec, each reached on its first (and only) claim
                with ResultStore(path) as store:
                    rows = store.queue_cells()
                    assert len(rows) == len(specs)
                    assert all(r.state == "done" for r in rows)
                    assert all(r.attempt == 1 for r in rows)
                # resubmissions from either client are cache hits now
                for client, subset in ((alice, specs[:2]), (bob, specs[1:])):
                    for spec in subset:
                        again = client.submit(spec)
                        assert again["cached"] is True
                        assert again["state"] == "done"
                        assert again["_status"] == 200
                # served envelopes are bit-identical to direct execution
                for spec in specs:
                    run_id = RunSpec(**spec).spec_hash()
                    served = RunResult.from_dict(alice.result(run_id)["result"])
                    assert served.same_outcome(run(spec))

    def test_concurrent_duplicate_posts_one_row_one_execution(self, tmp_path):
        """N racing clients POST one spec: one queue row, N identical results."""
        workers = 6
        doc = _spec_doc(96, seed=11)
        with _service(tmp_path) as (server, path):
            barrier = threading.Barrier(workers)
            responses: list[dict] = []
            errors: list[BaseException] = []
            lock = threading.Lock()

            def post() -> None:
                try:
                    with ServiceClient(server.url) as client:
                        barrier.wait()
                        submitted = client.submit(doc)
                    with lock:
                        responses.append(submitted)
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=post) for _ in range(workers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert errors == []
            assert len(responses) == workers
            assert len({r["run_id"] for r in responses}) == 1
            with ResultStore(path) as store:
                assert len(store.queue_cells()) == 1  # the race enqueued once
            _drain(path)
            with ResultStore(path) as store:
                (row,) = store.queue_cells()
                assert row.state == "done"
                assert row.attempt == 1  # one execution total
            run_id = responses[0]["run_id"]
            with ServiceClient(server.url) as client:
                results = [client.result(run_id) for _ in range(workers)]
            assert all(r == results[0] for r in results)
            assert results[0]["cached"] is True

    def test_result_409_until_done_then_wait_for(self, tmp_path):
        with _service(tmp_path) as (server, path):
            with ServiceClient(server.url) as client:
                run_id = client.submit(_spec_doc(64, seed=2))["run_id"]
                early = client.result(run_id)
                assert early["_status"] == 409
                assert early["state"] == "pending"
                drainer = threading.Thread(target=_drain, args=(path,))
                drainer.start()
                status = client.wait_for(run_id, timeout_s=60, poll_s=0.05)
                drainer.join(timeout=60)
                assert status["state"] == "done"
                final = client.result(run_id)
                assert final["_status"] == 200
                assert final["result"]["spec"]["seed"] == 2

    def test_retry_endpoint_end_to_end(self, tmp_path):
        with _service(tmp_path) as (server, path):
            with ServiceClient(server.url) as client:
                run_id = client.submit(_spec_doc(64, seed=31))["run_id"]
                conflict = client.retry(run_id)
                assert conflict["_status"] == 409
                assert conflict["retried"] is False
                with ResultStore(path) as store:
                    cell = store.claim_cell("crasher")
                    experiment, params, seed = row_identity(cell.spec_json)
                    store.record_failure(
                        experiment, params, seed, "boom", spec_json=cell.spec_json
                    )
                    store.finish_cell(cell.key, "failed")
                retried = client.retry(run_id)
                assert retried["_status"] == 202
                assert retried["retried"] is True
                _drain(path)
                assert client.status(run_id)["state"] == "done"
                assert client.result(run_id)["_status"] == 200

    def test_http_error_surfaces_as_service_error(self, tmp_path):
        with _service(tmp_path) as (server, _):
            with ServiceClient(server.url) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit({"protocol": "drr-gossip", "n": 64})
                assert excinfo.value.status == 400
                assert "unknown keys" in str(excinfo.value)

    def test_sweep_queue_and_healthz_endpoints(self, tmp_path):
        with _service(tmp_path) as (server, path):
            with ServiceClient(server.url) as client:
                sweep = client.submit_sweep([_spec_doc(64), _spec_doc(96)])
                assert sweep["_status"] == 202
                assert sweep["count"] == 2
                assert client.queue()["depth"]["pending"] == 2
                assert client.healthz()["status"] == "ok"
                _drain(path)
                assert client.queue()["depth"]["done"] == 2

    def test_client_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="http"):
            ServiceClient("https://example.com")
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("http://127.0.0.1:1", retries=-1)


# --------------------------------------------------------------------------- #
# store: content-address invariant + legacy migration backfill
# --------------------------------------------------------------------------- #
class TestSpecHashStore:
    def test_cell_spec_hash_equals_public_spec_hash(self):
        spec = RunSpec(protocol="drr-gossip", params={"n": 64}, seed=5)
        (cell,) = cells_from_run_specs([spec])
        assert cell_spec_hash(cell.spec_json()) == spec.spec_hash()

    def test_get_by_spec_hash_round_trips_recorded_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        (cell,) = cells_from_run_specs([RunSpec(**_spec_doc())])
        experiment, params, seed = row_identity(cell.spec_json())
        digest = cell_spec_hash(cell.spec_json())
        with ResultStore(path) as store:
            assert store.get_by_spec_hash(digest) is None
            store.record_failure(experiment, params, seed, "boom", spec_json=cell.spec_json())
            found = store.get_by_spec_hash(digest)
            assert found is not None
            assert found.spec_hash == digest
            assert found.error == "boom"

    def test_drained_cell_stores_replayable_result_json(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ServiceManager(path) as manager:
            run_id = manager.submit(_spec_doc(64, seed=9))["run_id"]
        _drain(path)
        with ResultStore(path) as store:
            stored = store.get_by_spec_hash(run_id)
            assert stored is not None and stored.ok
            envelope = RunResult.from_dict(json.loads(stored.result_json))
            assert envelope.same_outcome(run(_spec_doc(64, seed=9)))

    def test_legacy_store_migration_backfills_spec_hashes(self, tmp_path):
        """A pre-service store gains spec_hash columns + backfill on reopen."""
        path = tmp_path / "legacy.sqlite"
        (cell,) = cells_from_run_specs([RunSpec(**_spec_doc())])
        experiment, params, seed = row_identity(cell.spec_json())
        digest = cell_spec_hash(cell.spec_json())
        with ResultStore(path) as store:
            store.enqueue_cells([(cell.experiment, cell.param_hash, cell.seed, cell.spec_json())])
            store.record_failure(experiment, params, seed, "boom", spec_json=cell.spec_json())
        # strip the service-era columns to reconstruct the old schema
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            DROP INDEX IF EXISTS idx_runs_spec_hash;
            DROP INDEX IF EXISTS idx_queue_spec_hash;
            ALTER TABLE runs DROP COLUMN spec_hash;
            ALTER TABLE runs DROP COLUMN result_json;
            ALTER TABLE queue DROP COLUMN spec_hash;
            """
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as store:  # reopening migrates and backfills
            found = store.get_by_spec_hash(digest)
            assert found is not None
            assert found.spec_hash == digest
            row = store.queue_cell_by_spec_hash(digest)
            assert row is not None
            assert row.key == cell.key
