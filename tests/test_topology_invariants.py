"""Property-style invariant tests for the topology layer.

Two families of invariants back the Section 4 experiments:

* Chord finger tables must satisfy the successor/interval invariants of
  Stoica et al. — ``finger[i][k]`` owns ``id_i + 2^k`` and no node sits
  strictly between the target and the finger on the ring — for *random*
  ``n`` and identifier widths ``m``, not just the sizes the experiments
  happen to use.
* The graph generators must produce simple undirected graphs with the
  advertised degree statistics (and connectivity, for the deterministic
  families that guarantee it).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    ChordNetwork,
    Topology,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    make_graph,
    random_regular_graph,
    ring_graph,
)


def assert_simple_undirected(topo: Topology) -> None:
    """CSR sanity: symmetric, self-loop-free, deduplicated, sorted rows."""
    src, dst = topo.edge_arrays()
    assert (src != dst).all()
    n = topo.n
    keys = set((src * n + dst).tolist())
    assert keys == set((dst * n + src).tolist())  # symmetry
    assert len(keys) == src.size  # no duplicate directed edges
    for i in range(min(n, 16)):
        row = list(topo.neighbors(i))
        assert row == sorted(row)
        assert len(row) == topo.degree(i)


# --------------------------------------------------------------------------- #
# Chord invariants
# --------------------------------------------------------------------------- #
class TestChordInvariants:
    @given(
        n=st.integers(min_value=2, max_value=96),
        extra_bits=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_finger_tables_satisfy_successor_and_interval_invariants(self, n, extra_bits, seed):
        rng = np.random.default_rng(seed)
        m = max(3, math.ceil(math.log2(n)) + extra_bits)
        if (1 << m) < 2 * n:
            m = math.ceil(math.log2(2 * n))
        chord = ChordNetwork(n, rng, m=m)
        ids = chord.identifiers
        ring = chord.ring_size
        nodes = np.arange(n)

        # Successor/predecessor structure: identifiers are sorted, so the
        # ring successor of node i is node i+1 (mod n), and predecessor is
        # its inverse permutation.
        assert np.array_equal(chord.successors, (nodes + 1) % n)
        assert np.array_equal(chord.predecessors, (nodes - 1) % n)
        assert np.array_equal(chord.predecessors[chord.successors], nodes)

        # Finger interval invariant: finger[i][k] owns id_i + 2^k — its
        # circular distance from the target is minimal over all nodes.
        for k in range(chord.m):
            targets = (ids + (1 << k)) % ring
            finger_ids = ids[chord.fingers[:, k]]
            finger_dist = (finger_ids - targets) % ring
            all_dist = (ids[None, :] - targets[:, None]) % ring
            assert np.array_equal(finger_dist, all_dist.min(axis=1))

    @given(
        n=st.integers(min_value=2, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_lookup_owner_is_ring_successor_of_target(self, n, seed):
        rng = np.random.default_rng(seed)
        chord = ChordNetwork(n, rng)
        ids = chord.identifiers
        ring = chord.ring_size
        for target in rng.integers(0, ring, size=8):
            result = chord.lookup(int(rng.integers(0, n)), int(target))
            dist = (ids - int(target)) % ring
            assert result.owner == int(np.argmin(dist))
            assert result.hops == len(result.path) - 1


# --------------------------------------------------------------------------- #
# graph generator invariants
# --------------------------------------------------------------------------- #
class TestGeneratorInvariants:
    @given(
        family=st.sampled_from(["ring", "grid", "hypercube", "complete"]),
        exponent=st.integers(min_value=4, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_deterministic_families_connected_with_advertised_degrees(self, family, exponent, seed):
        n = 1 << exponent  # power of two satisfies every family's constraint
        topo = make_graph(family, n, np.random.default_rng(seed))
        assert topo.n == n
        assert_simple_undirected(topo)
        assert topo.is_connected()
        degrees = topo.degrees()
        expected = {"ring": 2, "grid": 4, "hypercube": exponent, "complete": n - 1}[family]
        assert (degrees == expected).all()
        assert topo.is_regular()

    @given(
        n=st.integers(min_value=6, max_value=80),
        d=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_regular_is_simple_and_exactly_regular(self, n, d, seed):
        if (n * d) % 2 != 0:
            d += 1
        if d >= n:
            d = n - 1 if (n * (n - 1)) % 2 == 0 else n - 2
        topo = random_regular_graph(n, d, np.random.default_rng(seed))
        assert_simple_undirected(topo)
        assert (topo.degrees() == d).all()
        assert topo.edge_count == n * d // 2

    @given(
        n=st.integers(min_value=20, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_erdos_renyi_degree_statistics(self, n, seed):
        p = 0.2
        topo = erdos_renyi_graph(n, p, np.random.default_rng(seed))
        assert_simple_undirected(topo)
        mean_degree = float(topo.degrees().mean())
        expected = p * (n - 1)
        # Mean degree concentrates; 5 sigma of the binomial keeps this
        # deterministic-in-practice across the hypothesis seed range.
        sigma = math.sqrt(2 * p * (1 - p) * (n - 1) / n)
        assert abs(mean_degree - expected) < max(1.5, 5 * sigma)

    def test_edge_array_roundtrip_matches_from_edges(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        a = Topology.from_edges("x", 4, edges)
        b = Topology.from_edge_arrays(
            "x", 4, np.array([e[0] for e in edges]), np.array([e[1] for e in edges])
        )
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert list(a.edges()) == sorted(tuple(sorted(e)) for e in edges)

    def test_generators_agree_with_expected_tree_count_formula(self):
        # Theorem 13's quantity is what E8 normalises by; spot-check the
        # degree bookkeeping feeding it.
        assert ring_graph(12).expected_local_drr_trees() == pytest.approx(4.0)
        assert grid_graph(25).expected_local_drr_trees() == pytest.approx(5.0)
        assert complete_graph(8).expected_local_drr_trees() == pytest.approx(1.0)
        assert hypercube_graph(16).expected_local_drr_trees() == pytest.approx(16 / 5.0)
