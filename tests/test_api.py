"""Tests for the declarative run API: RunSpec/RunResult, dispatch, transport.

The headline guarantee under test: a ``RunSpec`` serialised to JSON,
deserialised, and re-run with the same seed reproduces the original
``RunResult`` *exactly* — rounds, per-kind/per-phase/lost message counts,
and estimates — for every registered protocol on both substrate backends,
on reliable and lossy networks.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro import RunSpec, SpecValidationError, TopologySpec
from repro.api import get_protocol, protocol_names
from repro.orchestration import ResultStore, cells_from_run_specs
from repro.orchestration.runner import _execute_cell
from repro.orchestration.store import param_hash
from repro.serialization import canonical_json, stable_digest
from repro.simulator import FailureModel
from repro.topology import Topology

#: One representative spec per registered protocol, sized for test speed.
#: Every protocol in the registry must appear here (enforced below), so a
#: newly registered protocol fails the suite until it gets coverage.
PROTOCOL_SPECS: dict[str, dict] = {
    "drr": {"params": {"n": 96}},
    "drr-gossip": {"params": {"n": 64, "aggregate": "average", "workload": "uniform"}},
    "local-drr": {"topology": {"family": "ring", "n": 64}},
    "push-sum": {"params": {"n": 64, "workload": "normal"}},
    "push-max": {"params": {"n": 64, "workload": "uniform"}},
    "efficient-gossip": {"params": {"n": 64, "aggregate": "max", "workload": "uniform"}},
    "epoch-gossip-ave": {"params": {"n": 64, "workload": "uniform", "epochs": 2}},
    "push-rumor": {"params": {"n": 64}},
    "push-pull-rumor": {"params": {"n": 64}},
    "flood-max": {"topology": {"family": "grid", "n": 64}, "params": {"workload": "uniform"}},
    "chord-lookups": {"topology": {"family": "chord", "n": 48}, "params": {"lookups": 24}},
}

FAILURE_MODELS = [
    FailureModel(),
    FailureModel(loss_probability=0.08, crash_fraction=0.05),
]


def _spec_for(protocol: str, backend: str, failures: FailureModel, seed: int = 5) -> RunSpec:
    base = PROTOCOL_SPECS[protocol]
    return RunSpec(
        protocol=protocol,
        params=base.get("params", {}),
        topology=base.get("topology"),
        failures=failures,
        backend=backend,
        seed=seed,
    )


class TestRoundTripProperty:
    def test_every_registered_protocol_is_covered(self):
        assert set(PROTOCOL_SPECS) == set(protocol_names())

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_SPECS))
    @pytest.mark.parametrize("backend", ["vectorized", "engine"])
    @pytest.mark.parametrize("failures", FAILURE_MODELS, ids=["reliable", "lossy"])
    def test_json_round_trip_reproduces_run_exactly(self, protocol, backend, failures):
        spec = _spec_for(protocol, backend, failures)
        direct = repro.run(spec)
        revived = RunSpec.from_json(spec.to_json())
        assert revived == spec
        replay = repro.run(revived)
        assert replay.same_outcome(direct)
        # the envelope itself round-trips too (spec echo included)
        decoded = repro.api.RunResult.from_json(direct.to_json())
        assert decoded.same_outcome(direct)
        assert decoded.spec == spec

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_SPECS))
    def test_backends_agree_through_the_spec_path(self, protocol):
        """Substrate equivalence holds when both runs go through repro.run."""
        lossy = FailureModel(loss_probability=0.05)
        vec = repro.run(_spec_for(protocol, "vectorized", lossy))
        eng = repro.run(_spec_for(protocol, "engine", lossy))
        assert vec.rounds == eng.rounds
        assert vec.messages == eng.messages
        assert vec.messages_lost == eng.messages_lost
        assert dict(vec.messages_by_kind) == dict(eng.messages_by_kind)


class TestSpecValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown protocol"):
            RunSpec(protocol="nope", params={"n": 8})

    def test_unknown_param_rejected_with_valid_names(self):
        with pytest.raises(SpecValidationError, match="valid: n, probe_budget"):
            RunSpec(protocol="drr", params={"n": 8, "bogus": 1})

    def test_extra_top_level_key_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown keys"):
            RunSpec.from_dict({"protocol": "drr", "params": {"n": 8}, "wat": 1})

    def test_missing_topology_rejected(self):
        with pytest.raises(SpecValidationError, match="needs a topology"):
            RunSpec(protocol="local-drr")

    def test_forbidden_topology_rejected(self):
        with pytest.raises(SpecValidationError, match="takes no topology"):
            RunSpec(protocol="drr", params={"n": 8}, topology={"family": "ring", "n": 8})

    def test_chord_protocol_needs_chord_topology(self):
        with pytest.raises(SpecValidationError, match="chord topology"):
            RunSpec(protocol="chord-lookups", topology={"family": "ring", "n": 8})

    def test_unknown_topology_family_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown topology family"):
            TopologySpec(family="mobius", n=8)

    def test_values_and_contradicting_n_rejected(self):
        with pytest.raises(SpecValidationError, match="contradicts"):
            repro.run(RunSpec(protocol="push-sum", params={"n": 4, "values": [1.0, 2.0]}))

    def test_missing_n_and_values_rejected(self):
        with pytest.raises(SpecValidationError, match="either 'n'"):
            repro.run(RunSpec(protocol="push-sum"))

    def test_params_are_normalised_for_round_trip_equality(self):
        from repro.core import Aggregate

        spec = RunSpec(
            protocol="drr-gossip",
            params={"n": np.int64(64), "aggregate": Aggregate.MAX, "values": None},
        )
        assert spec.params["n"] == 64 and isinstance(spec.params["n"], int)
        assert spec.params["aggregate"] == "max"
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_spec_rejects_malformed_json(self):
        with pytest.raises(SpecValidationError, match="not valid JSON"):
            RunSpec.from_json("{nope")

    def test_adapter_schema_derived_from_signature(self):
        spec = get_protocol("push-sum")
        assert set(spec.param_names) == {"n", "workload", "values", "rounds", "epsilon"}


class TestSpecEquivalenceWithDirectCalls:
    """repro.run(spec) must equal the kwargs-level run_X call it wraps."""

    def test_drr_matches_run_drr(self):
        from repro.core import run_drr

        result = repro.run(RunSpec(protocol="drr", params={"n": 128}, seed=9))
        direct = run_drr(128, rng=9)
        assert result.rounds == direct.rounds
        assert result.messages == direct.metrics.total_messages
        assert result.summary["trees"] == direct.forest.root_count

    def test_drr_gossip_matches_pipeline_call(self):
        from repro.core import drr_gossip_average
        from repro.harness.workloads import make_values

        seed = 17
        rng = np.random.default_rng(seed)
        values = make_values("uniform", 96, rng)
        direct = drr_gossip_average(values, rng=rng)
        result = repro.run(
            RunSpec(
                protocol="drr-gossip",
                params={"n": 96, "aggregate": "average", "workload": "uniform"},
                seed=seed,
            )
        )
        assert result.rounds == direct.rounds
        assert result.messages == direct.messages
        assert np.array_equal(result.estimates, direct.estimates, equal_nan=True)

    def test_explicit_values_skip_rng_draws(self):
        from repro.baselines import push_sum

        values = [1.0, 5.0, 9.0, 2.0] * 16
        direct = push_sum(np.asarray(values), rng=3)
        result = repro.run(RunSpec(protocol="push-sum", params={"values": values}, seed=3))
        assert result.messages == direct.messages
        assert np.array_equal(result.estimates, direct.estimates)


class TestToFromSpecHelpers:
    def test_failure_model_round_trip(self):
        model = FailureModel(loss_probability=0.1, crash_fraction=0.2)
        assert FailureModel.from_spec(model.to_spec()) == model
        assert FailureModel.from_spec(model) is model

    def test_failure_model_rejects_unknown_keys(self):
        from repro.simulator.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown keys"):
            FailureModel.from_spec({"delta": 0.1})

    def test_topology_explicit_round_trip(self):
        topo = Topology.from_edges("tri", 3, [(0, 1), (1, 2), (2, 0)])
        spec = topo.to_spec()
        rebuilt = Topology.from_spec(spec)
        assert rebuilt.n == topo.n
        assert list(rebuilt.edges()) == list(topo.edges())
        # a pinned explicit topology runs through the spec path
        result = repro.run(
            RunSpec(protocol="flood-max", topology=TopologySpec.from_dict(spec), seed=2)
        )
        assert result.summary["max_rel_error"] == 0.0

    def test_topology_from_spec_rejects_generated_families(self):
        with pytest.raises(ValueError, match="explicit"):
            Topology.from_spec({"family": "ring", "n": 8})


class TestCanonicalHashing:
    """Satellite: one shared canonicaliser for RunSpec and the store."""

    def test_nested_dict_ordering_cannot_collide_or_diverge(self):
        a = {"outer": {"x": 1, "y": {"p": [1, 2], "q": 3.0}}, "n": 64}
        b = {"n": 64, "outer": {"y": {"q": 3.0, "p": (1, 2)}, "x": 1}}
        assert canonical_json(a) == canonical_json(b)
        assert param_hash(a) == param_hash(b)
        c = {"n": 64, "outer": {"y": {"q": 3.0, "p": [2, 1]}, "x": 1}}
        assert param_hash(a) != param_hash(c)

    def test_numpy_and_enum_values_normalise(self):
        from repro.core import Aggregate

        assert canonical_json({"a": np.int64(3), "b": Aggregate.MAX}) == '{"a":3,"b":"max"}'

    def test_spec_hash_matches_store_param_hash_convention(self):
        spec = RunSpec(protocol="drr", params={"n": 32}, seed=4)
        doc = spec.to_dict()
        doc.pop("seed")
        assert spec.param_hash() == stable_digest(doc)
        # two spellings of the same spec agree
        twin = RunSpec.from_dict(json.loads(spec.to_json()))
        assert twin.param_hash() == spec.param_hash()
        assert twin.spec_hash() == spec.spec_hash()

    def test_seed_changes_spec_hash_but_not_param_hash(self):
        spec = RunSpec(protocol="drr", params={"n": 32}, seed=4)
        other = spec.with_seed(5)
        assert other.param_hash() == spec.param_hash()
        assert other.spec_hash() != spec.spec_hash()


class TestSpecTransport:
    """Workers receive cells only as serialised specs."""

    def test_execute_cell_takes_one_json_string_for_experiments(self):
        payload = _execute_cell(
            canonical_json({"experiment": "ablation", "params": {"n": 64, "repetitions": 1}, "seed": 3})
        )
        assert payload["ok"], payload.get("error")
        assert payload["result"].experiment == "E12-ablation"

    def test_execute_cell_dispatches_protocol_specs(self):
        spec = RunSpec(protocol="drr", params={"n": 64}, seed=3)
        payload = _execute_cell(spec.canonical_json())
        assert payload["ok"], payload.get("error")
        assert payload["result"].experiment == "run:drr"
        direct = repro.run(spec)
        assert payload["result"].rows[0]["messages"] == direct.messages

    def test_execute_cell_restores_tuples_and_enums_from_json(self):
        cell = canonical_json(
            {
                "experiment": "forest",
                "params": {"ns": [32, 64], "repetitions": 1},
                "seed": 2,
            }
        )
        payload = _execute_cell(cell)
        assert payload["ok"], payload.get("error")
        assert [row["n"] for row in payload["result"].rows] == [32, 64]

    def test_execute_cell_reports_bad_spec_as_failure(self):
        payload = _execute_cell(canonical_json({"protocol": "nope", "seed": 1}))
        assert not payload["ok"]
        assert "unknown protocol" in payload["error"]

    def test_cells_from_run_specs_reps_derive_deterministic_seeds(self):
        spec = RunSpec(protocol="drr", params={"n": 32}, seed=4)
        cells = cells_from_run_specs([spec], repetitions=3)
        assert [c.rep for c in cells] == [0, 1, 2]
        assert cells[0].seed == 4
        assert len({c.seed for c in cells}) == 3
        again = cells_from_run_specs([spec], repetitions=3)
        assert [c.seed for c in again] == [c.seed for c in cells]
        # every cell ships a parseable RunSpec whose seed matches
        for cell in cells:
            revived = RunSpec.from_json(cell.spec_json())
            assert revived.seed == cell.seed
            assert revived.param_hash() == cell.param_hash

    def test_spec_cells_persist_and_resume(self, tmp_path):
        from repro.orchestration import SweepRunner

        spec = RunSpec(protocol="drr", params={"n": 48}, seed=6)
        with ResultStore(tmp_path / "s.sqlite") as store:
            runner = SweepRunner(store, jobs=1)
            first = runner.run_cells(cells_from_run_specs([spec]), name="specs")
            assert first.executed == 1
            second = runner.run_cells(cells_from_run_specs([spec]), name="specs")
            assert second.executed == 0 and second.skipped == 1
            (row,) = store.query(experiment="run:drr")
            assert row.backend == "vectorized"
            revived = RunSpec.from_json(row.spec_json)
            assert revived == spec


class TestStoreBackfill:
    """Satellite: legacy NULL-backend rows are backfilled to the default."""

    @staticmethod
    def _make_legacy_store(path) -> None:
        """Write a store with the pre-substrate schema (no backend/spec_json)."""
        import sqlite3

        conn = sqlite3.connect(str(path))
        conn.executescript(
            """
            CREATE TABLE runs (
                id          INTEGER PRIMARY KEY AUTOINCREMENT,
                experiment  TEXT NOT NULL,
                param_hash  TEXT NOT NULL,
                seed        INTEGER NOT NULL,
                status      TEXT NOT NULL CHECK (status IN ('ok', 'failed')),
                params      TEXT NOT NULL,
                description TEXT NOT NULL DEFAULT '',
                headers     TEXT NOT NULL DEFAULT '[]',
                rows        TEXT NOT NULL DEFAULT '[]',
                notes       TEXT NOT NULL DEFAULT '[]',
                error       TEXT,
                duration_s  REAL,
                created_at  TEXT NOT NULL DEFAULT (datetime('now')),
                UNIQUE (experiment, param_hash, seed)
            );
            """
        )
        conn.execute(
            "INSERT INTO runs (experiment, param_hash, seed, status, params) "
            "VALUES ('forest', ?, 1, 'ok', '{\"ns\": [64]}')",
            (param_hash({"ns": [64]}),),
        )
        conn.commit()
        conn.close()

    def test_legacy_null_backend_rows_backfilled_with_one_warning(self, tmp_path):
        path = tmp_path / "old.sqlite"
        self._make_legacy_store(path)
        with pytest.warns(UserWarning, match="backfilled 1 pre-substrate row"):
            with ResultStore(path) as store:
                (row,) = store.query()
                assert row.backend == "vectorized"
                summary = store.summary()
                assert summary[0]["backend"] == "vectorized"
        # second open: the store is migrated, nothing to backfill, no warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ResultStore(path).close()

    def test_fresh_store_rows_without_backend_stay_null(self, tmp_path):
        """Post-migration stores must not relabel genuinely backend-less rows."""
        path = tmp_path / "new.sqlite"
        from repro.harness.experiments import run_ablation

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # never warns on a modern store
            with ResultStore(path) as store:
                result = run_ablation(n=64, repetitions=1, seed=1)
                store.record_result("no-backend-exp", {"x": 1}, 1, result)
            with ResultStore(path) as store:
                (row,) = store.query()
                assert row.backend is None
