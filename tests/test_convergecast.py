"""Tests for Phase II: convergecast and broadcast (fast and engine paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_broadcast, run_convergecast, run_drr
from repro.simulator import FailureModel


@pytest.fixture
def drr_256():
    return run_drr(256, rng=11)


@pytest.fixture
def values_256(rng):
    return rng.normal(10.0, 5.0, size=256)


class TestConvergecastFast:
    def test_max_local_aggregates_exact(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="max", rng=1)
        forest = drr_256.forest
        for root, value in cov.local_value.items():
            members = forest.tree_members(root)
            assert value == pytest.approx(values_256[members].max())

    def test_min_local_aggregates_exact(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="min", rng=1)
        forest = drr_256.forest
        for root, value in cov.local_value.items():
            members = forest.tree_members(root)
            assert value == pytest.approx(values_256[members].min())

    def test_sum_local_aggregates_and_weights_exact(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="sum", rng=1)
        forest = drr_256.forest
        for root in cov.local_value:
            members = forest.tree_members(root)
            assert cov.local_value[root] == pytest.approx(values_256[members].sum())
            assert cov.local_weight[root] == members.size
        # weights over all roots sum to n
        assert sum(cov.local_weight.values()) == 256

    def test_message_count_one_per_non_root(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="max", rng=1)
        non_roots = int((drr_256.forest.parent >= 0).sum())
        assert cov.metrics.total_messages == non_roots

    def test_rounds_at_most_max_tree_size(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="max", rng=1)
        assert 1 <= cov.rounds <= drr_256.forest.max_tree_size

    def test_value_vector_alignment(self, drr_256, values_256):
        cov = run_convergecast(drr_256, values_256, op="sum", rng=1)
        roots = drr_256.forest.roots
        vec = cov.value_vector(roots)
        assert vec.shape == roots.shape
        assert vec[0] == pytest.approx(cov.local_value[int(roots[0])])

    def test_invalid_op_rejected(self, drr_256, values_256):
        with pytest.raises(ValueError):
            run_convergecast(drr_256, values_256, op="median", rng=1)

    def test_shape_mismatch_rejected(self, drr_256):
        with pytest.raises(ValueError):
            run_convergecast(drr_256, np.zeros(5), op="max", rng=1)

    def test_loss_drops_contributions_but_not_correct_structure(self, drr_256, values_256):
        cov = run_convergecast(
            drr_256, values_256, op="sum", failure_model=FailureModel(loss_probability=0.3), rng=2
        )
        # lost contributions mean the total accounted weight is below n ...
        assert sum(cov.local_weight.values()) < 256
        # ... but each root's local sum never exceeds what its tree holds
        forest = drr_256.forest
        for root, value in cov.local_value.items():
            members = forest.tree_members(root)
            assert value <= values_256[members].sum() + abs(values_256[members]).sum()


class TestBroadcastFast:
    def test_root_address_reaches_whole_tree(self, drr_256):
        forest = drr_256.forest
        payload = {int(r): float(r) for r in forest.roots}
        out = run_broadcast(drr_256, payload, rng=1)
        assert out.received.all()
        for node in range(forest.n):
            assert out.payload[node] == forest.tree_id[node]

    def test_messages_one_per_tree_edge(self, drr_256):
        payload = {int(r): 1.0 for r in drr_256.forest.roots}
        out = run_broadcast(drr_256, payload, rng=1)
        non_roots = int((drr_256.forest.parent >= 0).sum())
        assert out.metrics.total_messages == non_roots

    def test_partial_payload_only_reaches_that_tree(self, drr_256):
        forest = drr_256.forest
        root = int(forest.roots[0])
        out = run_broadcast(drr_256, {root: 7.0}, rng=1)
        members = set(forest.tree_members(root).tolist())
        assert set(np.flatnonzero(out.received).tolist()) == members

    def test_non_root_payload_rejected(self, drr_256):
        forest = drr_256.forest
        non_root = int(np.flatnonzero(forest.parent >= 0)[0])
        with pytest.raises(ValueError):
            run_broadcast(drr_256, {non_root: 1.0}, rng=1)

    def test_loss_reduces_coverage(self, drr_256):
        payload = {int(r): float(r) for r in drr_256.forest.roots}
        out = run_broadcast(drr_256, payload, failure_model=FailureModel(loss_probability=0.5), rng=3)
        assert 0.0 < out.coverage < 1.0


class TestEngineParity:
    def test_convergecast_engine_matches_fast_on_reliable_network(self, values_256):
        drr = run_drr(256, rng=21)
        fast = run_convergecast(drr, values_256, op="sum", rng=1)
        engine = run_convergecast(drr, values_256, op="sum", rng=1, backend="engine")
        assert set(fast.local_value) == set(engine.local_value)
        for root in fast.local_value:
            assert fast.local_value[root] == pytest.approx(engine.local_value[root])
            assert fast.local_weight[root] == engine.local_weight[root]
        assert fast.rounds == engine.rounds
        assert fast.metrics.total_messages == engine.metrics.total_messages

    def test_broadcast_engine_matches_fast_on_reliable_network(self):
        drr = run_drr(128, rng=22)
        payload = {int(r): float(r) * 2 for r in drr.forest.roots}
        fast = run_broadcast(drr, payload, rng=1)
        engine = run_broadcast(drr, payload, rng=1, backend="engine")
        assert np.array_equal(fast.received, engine.received)
        assert np.allclose(fast.payload[fast.received], engine.payload[engine.received])
        assert fast.rounds == engine.rounds

    def test_convergecast_engine_message_count(self, values_256):
        drr = run_drr(256, rng=23)
        engine = run_convergecast(drr, values_256, op="max", rng=1, backend="engine")
        non_roots = int((drr.forest.parent >= 0).sum())
        assert engine.metrics.total_messages == non_roots

    def test_convergecast_engine_survives_loss(self, values_256):
        drr = run_drr(128, rng=24, failure_model=FailureModel(loss_probability=0.2))
        engine = run_convergecast(
            drr,
            values_256[:128],
            op="sum",
            failure_model=FailureModel(loss_probability=0.2),
            rng=2,
            backend="engine",
        )
        assert sum(engine.local_weight.values()) <= 128
