"""Tests for Local-DRR on sparse topologies (Section 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_convergecast, run_drr, run_local_drr
from repro.simulator import FailureModel
from repro.topology import grid_graph, hypercube_graph, make_graph, ring_graph


class TestLocalDRRStructure:
    def test_forest_valid_on_ring(self, rng):
        result = run_local_drr(ring_graph(128), rng=rng)
        result.forest.validate()
        assert result.rounds == 2

    def test_parent_is_best_alive_neighbor(self):
        topo = ring_graph(64)
        result = run_local_drr(topo, rng=5)
        forest = result.forest
        for node in range(64):
            parent = forest.parent[node]
            neighbor_ranks = [forest.rank[v] for v in topo.neighbors(node)]
            if parent == -1:
                # a root out-ranks all of its neighbours
                assert forest.rank[node] >= max(neighbor_ranks)
            else:
                assert parent in topo.neighbors(node)
                assert forest.rank[parent] == max(neighbor_ranks)

    def test_tree_count_near_sum_inverse_degree_plus_one(self):
        topo = grid_graph(1024)  # 4-regular: expected trees = n/5
        counts = [run_local_drr(topo, rng=seed).forest.root_count for seed in range(5)]
        expected = topo.expected_local_drr_trees()
        assert abs(np.mean(counts) - expected) < 0.25 * expected

    def test_tree_height_logarithmic_on_ring(self):
        n = 2048
        heights = [run_local_drr(ring_graph(n), rng=seed).forest.max_tree_height for seed in range(3)]
        assert max(heights) <= 4 * math.log2(n)

    def test_message_count_proportional_to_edges(self):
        topo = hypercube_graph(256)
        result = run_local_drr(topo, rng=3)
        rank_messages = 2 * topo.edge_count
        non_roots = 256 - result.forest.root_count
        assert result.metrics.total_messages == rank_messages + non_roots

    def test_custom_ranks_respected(self):
        topo = ring_graph(16)
        ranks = np.arange(16, dtype=float) / 16.0
        result = run_local_drr(topo, rng=1, ranks=ranks)
        # node 15 has the global highest rank, so it must be a root
        assert result.forest.parent[15] == -1
        # node 0's neighbours are 1 and 15; 15 has the higher rank
        assert result.forest.parent[0] == 15

    def test_rank_shape_validated(self):
        with pytest.raises(ValueError):
            run_local_drr(ring_graph(8), ranks=np.zeros(3))

    def test_lossy_rank_exchange_still_valid_forest(self):
        topo = grid_graph(256)
        result = run_local_drr(topo, rng=7, failure_model=FailureModel(loss_probability=0.3))
        result.forest.validate()

    def test_crashed_nodes_are_isolated(self):
        topo = grid_graph(100)
        result = run_local_drr(topo, rng=8, failure_model=FailureModel(crash_fraction=0.2))
        dead = ~result.forest.alive
        assert (result.forest.parent[dead] == -1).all()
        # no alive node attaches to a dead neighbour
        alive_non_roots = np.flatnonzero(result.forest.alive & (result.forest.parent >= 0))
        assert result.forest.alive[result.forest.parent[alive_non_roots]].all()


class TestLocalDRRIntegration:
    def test_convergecast_works_on_local_drr_forest(self, rng):
        topo = grid_graph(256)
        values = rng.uniform(0, 50, size=256)
        local = run_local_drr(topo, rng=3)
        cov = run_convergecast(local, values, op="max", rng=4)
        for root, value in cov.local_value.items():
            members = local.forest.tree_members(root)
            assert value == pytest.approx(values[members].max())

    def test_complete_graph_local_drr_single_root(self, rng):
        # On the complete graph every node sees everyone, so Local-DRR
        # produces exactly one tree rooted at the global top-ranked node.
        topo = make_graph("complete", 64, rng)
        result = run_local_drr(topo, rng=9)
        assert result.forest.root_count == 1
        assert result.forest.parent[int(np.argmax(result.forest.rank))] == -1

    @given(st.sampled_from(["ring", "grid", "hypercube", "regular4"]), st.integers(min_value=0, max_value=500))
    @settings(max_examples=12, deadline=None)
    def test_forest_invariants_across_families(self, family, seed):
        rng = np.random.default_rng(seed)
        topo = make_graph(family, 64, rng)
        result = run_local_drr(topo, rng=rng)
        forest = result.forest
        forest.validate()
        assert sum(forest.tree_sizes.values()) == 64
        # every non-root's parent is one of its graph neighbours
        for node in range(64):
            parent = forest.parent[node]
            if parent != -1:
                assert parent in topo.neighbors(node)
