"""Backend registry round-trips and ``RunSpec.backend_options``.

Covers the seams the sharded backend threads through: every registered
backend name must survive ``RunSpec`` validation, JSON serialisation, and
``drr-gossip spec validate``; ``backend_options`` must validate, serialise
only when present (so pre-existing spec hashes are stable), and actually
configure the kernel during dispatch.  Also covers the opt-in dtype
narrowing flags of :mod:`repro.substrate.tuning`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import RunSpec, SpecValidationError
from repro.core import run_drr
from repro.harness.cli import main as cli_main
from repro.substrate import BACKENDS, sample_uniform, shutdown_pools, tuning


@pytest.fixture(autouse=True)
def close_pools():
    yield
    shutdown_pools()


# --------------------------------------------------------------------------- #
# every registered backend round-trips through spec machinery
# --------------------------------------------------------------------------- #
class TestBackendRoundTrip:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_runspec_accepts_and_serialises_every_backend(self, backend):
        spec = RunSpec(protocol="drr", params={"n": 64}, backend=backend, seed=5)
        assert spec.backend == backend
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_spec_validate_cli_accepts_every_backend(self, backend, tmp_path, capsys):
        path = tmp_path / f"{backend}.toml"
        path.write_text(
            "[run]\n"
            'protocol = "drr"\n'
            f'backend = "{backend}"\n'
            "seed = 3\n"
            "[run.params]\n"
            "n = 64\n"
        )
        assert cli_main(["spec", "validate", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_unknown_backend_fails_spec_validation(self):
        with pytest.raises(SpecValidationError, match="unknown substrate backend"):
            RunSpec(protocol="drr", params={"n": 64}, backend="quantum")


# --------------------------------------------------------------------------- #
# backend_options validation + serialisation
# --------------------------------------------------------------------------- #
class TestBackendOptions:
    def test_sharded_options_validate_and_round_trip(self):
        spec = RunSpec(
            protocol="drr",
            params={"n": 64},
            backend="sharded",
            backend_options={"shards": 2, "min_batch": 0},
        )
        assert spec.backend_options == {"shards": 2, "min_batch": 0}
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert "backend_options" in spec.to_dict()
        assert "shards=2" in spec.describe()

    def test_empty_options_keep_legacy_spec_identity(self):
        spec = RunSpec(protocol="drr", params={"n": 64}, backend="sharded")
        assert "backend_options" not in spec.to_dict()
        # a legacy document without the field parses to the same identity
        legacy = RunSpec.from_dict(
            {"protocol": "drr", "params": {"n": 64}, "backend": "sharded", "seed": 1}
        )
        assert legacy.spec_hash() == spec.spec_hash()
        assert legacy.param_hash() == spec.param_hash()

    def test_options_rejected_for_backends_that_take_none(self):
        with pytest.raises(SpecValidationError, match="takes no backend_options"):
            RunSpec(protocol="drr", params={"n": 64}, backend="vectorized",
                    backend_options={"shards": 2})

    def test_unknown_and_invalid_option_values_rejected(self):
        with pytest.raises(SpecValidationError, match="does not accept"):
            RunSpec(protocol="drr", params={"n": 64}, backend="sharded",
                    backend_options={"warp": 9})
        with pytest.raises(SpecValidationError, match="'shards' must be >= 1"):
            RunSpec(protocol="drr", params={"n": 64}, backend="sharded",
                    backend_options={"shards": 0})
        with pytest.raises(SpecValidationError, match="must be an integer"):
            RunSpec(protocol="drr", params={"n": 64}, backend="sharded",
                    backend_options={"shards": "many"})

    def test_with_backend_drops_inapplicable_options(self):
        spec = RunSpec(protocol="drr", params={"n": 64}, backend="sharded",
                       backend_options={"shards": 4})
        engine = spec.with_backend("engine")
        assert engine.backend == "engine"
        assert engine.backend_options == {}
        back = engine.with_backend("sharded")
        assert back.backend_options == {}

    def test_dispatch_applies_options_and_matches_vectorized(self):
        spec = RunSpec(
            protocol="drr",
            params={"n": 512},
            backend="sharded",
            backend_options={"shards": 2, "min_batch": 0},
            seed=11,
        )
        sharded_result = repro.run(spec)
        vectorized_result = repro.run(spec.with_backend("vectorized"))
        assert sharded_result.same_outcome(vectorized_result)
        # options are scoped to the run: the kernel's defaults are restored
        kernel = BACKENDS["sharded"]
        assert kernel.min_batch != 0


# --------------------------------------------------------------------------- #
# dtype narrowing (repro.substrate.tuning)
# --------------------------------------------------------------------------- #
class TestTuning:
    def test_default_is_everything_off(self):
        cfg = tuning.get_tuning()
        assert not cfg.narrow_ids and not cfg.narrow_estimates
        assert cfg.id_dtype(10**6) == np.int64
        assert cfg.estimate_dtype() == np.float64

    def test_narrow_ids_preserves_the_rng_stream_and_results(self):
        reference = run_drr(512, rng=9)
        with tuning.tuned(narrow_ids=True):
            assert tuning.get_tuning().id_dtype(512) == np.int32
            narrowed = run_drr(512, rng=9)
        assert np.array_equal(reference.forest.parent, narrowed.forest.parent)
        assert reference.metrics.total_messages == narrowed.metrics.total_messages
        # context manager restored the defaults
        assert not tuning.get_tuning().narrow_ids

    def test_sample_uniform_storage_dtype_only(self):
        rng_wide = np.random.default_rng(4)
        rng_narrow = np.random.default_rng(4)
        wide = sample_uniform(rng_wide, 1000, 256, exclude=np.arange(256))
        with tuning.tuned(narrow_ids=True):
            narrow = sample_uniform(rng_narrow, 1000, 256, exclude=np.arange(256))
        assert wide.dtype == np.int64
        assert narrow.dtype == np.int32
        assert np.array_equal(wide, narrow.astype(np.int64))

    def test_narrow_estimates_changes_only_float_rounding(self):
        from repro.core import DRRGossipConfig, drr_gossip_average

        values = np.random.default_rng(0).uniform(0.0, 100.0, size=2048)
        reference = drr_gossip_average(values, rng=7, config=DRRGossipConfig())
        with tuning.tuned(narrow_estimates=True):
            narrowed = drr_gossip_average(values, rng=7, config=DRRGossipConfig())
        assert narrowed.messages == reference.messages
        assert narrowed.rounds == reference.rounds
        assert np.allclose(narrowed.estimates, reference.estimates, rtol=1e-4, equal_nan=True)


# --------------------------------------------------------------------------- #
# the persisted benchmark trajectory
# --------------------------------------------------------------------------- #
class TestBenchTrajectory:
    def test_append_and_load_round_trip(self, tmp_path):
        from repro.harness.benchlog import append_bench_rows, format_bench_table, load_bench_rows

        path = tmp_path / "BENCH_substrate.json"
        append_bench_rows(
            [{"bench": "smoke", "protocol": "drr", "n": 10, "backend": "vectorized", "wall_s": 0.5}],
            path,
        )
        append_bench_rows(
            [{"bench": "smoke", "protocol": "drr", "n": 10, "backend": "sharded",
              "shards": 2, "wall_s": 0.25}],
            path,
        )
        rows = load_bench_rows(path)
        assert len(rows) == 2
        assert all("timestamp" in row for row in rows)
        table = format_bench_table(rows)
        assert "vectorized" in table and "sharded" in table

    def test_results_bench_cli(self, tmp_path, capsys):
        from repro.harness.benchlog import append_bench_rows

        path = tmp_path / "BENCH_substrate.json"
        append_bench_rows(
            [{"bench": "smoke", "protocol": "drr", "n": 10, "backend": "vectorized", "wall_s": 0.5}],
            path,
        )
        assert cli_main(["results", "--bench", "--bench-file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out and "wall_s" in out

    def test_results_bench_cli_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert cli_main(["results", "--bench", "--bench-file", str(missing)]) == 0
        assert "no benchmark rows" in capsys.readouterr().out
