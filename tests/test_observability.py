"""Tests for the observability layer: telemetry, logging, heartbeats.

The headline guarantee under test: telemetry *observes* execution without
influencing it.  Same-seed runs are bit-identical with telemetry on or off
for every registered protocol on all three backends, on reliable and lossy
networks; spec/param hashes ignore the toggle (so store resume is
untouched); and ``RunResult.same_outcome`` never looks at the telemetry
section.
"""

from __future__ import annotations

import io
import json
import logging
import sqlite3
import time

import numpy as np
import pytest

import repro
from repro import RunSpec
from repro.api import RunResult
from repro.core import DRRGossipConfig, drr_gossip_average, run_drr
from repro.observability import (
    NULL_TELEMETRY,
    Heartbeat,
    NullTelemetry,
    RoundSampler,
    Telemetry,
    configure_logging,
    current_telemetry,
    events_from_telemetry,
    format_telemetry,
    get_logger,
    instrumented,
    use_telemetry,
    write_events_jsonl,
)
from repro.orchestration import ResultStore, SweepRunner, cells_from_run_specs
from repro.simulator import FailureModel
from repro.simulator.errors import ConfigurationError
from repro.simulator.trace import Tracer
from repro.substrate import BACKENDS, shutdown_pools

from test_api import FAILURE_MODELS, PROTOCOL_SPECS


@pytest.fixture(autouse=True, scope="module")
def _shutdown_pools_after_module():
    yield
    shutdown_pools()


def _spec_for(
    protocol: str,
    backend: str,
    failures: FailureModel,
    seed: int = 5,
    telemetry: bool = False,
) -> RunSpec:
    base = PROTOCOL_SPECS[protocol]
    backend_options = {}
    if backend == "sharded":
        # Small specs run inline below min_batch; the pool path is covered
        # by TestShardedTelemetry (min_batch=0 forces every batch through).
        backend_options = {"shards": 2}
    return RunSpec(
        protocol=protocol,
        params=base.get("params", {}),
        topology=base.get("topology"),
        failures=failures,
        backend=backend,
        backend_options=backend_options,
        seed=seed,
        telemetry=telemetry,
    )


# --------------------------------------------------------------------------- #
# RoundSampler
# --------------------------------------------------------------------------- #
class TestRoundSampler:
    def test_small_runs_keep_every_sample(self):
        sampler = RoundSampler(cap=16)
        for value in (0.5, 0.25, 1.5):
            sampler.add(value)
        assert sampler.samples == [0.5, 0.25, 1.5]
        assert sampler.stride == 1

    def test_decimation_bounds_memory_and_keeps_exact_stats(self):
        sampler = RoundSampler(cap=16)
        values = [float(i) for i in range(10_000)]
        for value in values:
            sampler.add(value)
        assert len(sampler.samples) <= 16
        assert sampler.count == 10_000
        assert sampler.total == pytest.approx(sum(values))
        assert sampler.min == 0.0
        assert sampler.max == 9_999.0
        # stride doubles on every decimation
        assert sampler.stride & (sampler.stride - 1) == 0
        assert sampler.stride > 1
        # retained samples are an evenly strided subsample, in order
        assert sampler.samples == sorted(sampler.samples)

    def test_as_dict_shapes(self):
        empty = RoundSampler()
        assert empty.as_dict() == {"count": 0}
        sampler = RoundSampler()
        sampler.add(2.0)
        doc = sampler.as_dict()
        assert doc["count"] == 1
        assert doc["mean_s"] == 2.0
        assert doc["samples_s"] == [2.0]

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            RoundSampler(cap=1)


# --------------------------------------------------------------------------- #
# Telemetry object
# --------------------------------------------------------------------------- #
class TestTelemetry:
    def test_null_telemetry_is_free_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.as_dict() == {}
        # the null span context is one shared object, not a fresh allocation
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        with NULL_TELEMETRY.span("anything"):
            pass
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.round_tick()
        NULL_TELEMETRY.finish()

    def test_phases_rounds_spans_counters_gauges(self):
        tel = Telemetry()
        tel.phase_begin("alpha")
        tel.round_tick()
        tel.round_tick()
        tel.round_tick()
        tel.phase_begin("beta")
        with tel.span("prim"):
            pass
        tel.add_span("prim", 0.5)
        tel.count("widgets")
        tel.count("widgets", 2)
        tel.gauge_max("arena", 10)
        tel.gauge_max("arena", 5)  # lower value must not win
        doc = tel.as_dict()
        assert list(doc["phases"]) == ["alpha", "beta"]
        # 3 ticks in a phase = 2 measured inter-tick durations
        assert doc["phases"]["alpha"]["rounds"]["count"] == 2
        assert doc["phases"]["beta"]["rounds"] == {"count": 0}
        assert doc["spans"]["prim"]["count"] == 2
        assert doc["spans"]["prim"]["max_s"] >= 0.5
        assert doc["counters"] == {"widgets": 3}
        assert doc["gauges"] == {"arena": 10}
        assert doc["wall_s"] > 0.0
        assert doc.get("peak_rss_bytes", 1) > 0

    def test_round_ticks_before_any_phase_open_a_default_phase(self):
        tel = Telemetry()
        tel.round_tick()
        tel.round_tick()
        doc = tel.as_dict()
        assert doc["phases"]["default"]["rounds"]["count"] == 1

    def test_finish_is_idempotent(self):
        tel = Telemetry()
        tel.phase_begin("p")
        tel.finish()
        wall = tel.as_dict()["wall_s"]
        time.sleep(0.01)
        tel.finish()
        assert tel.as_dict()["wall_s"] == wall

    def test_snapshot_is_live(self):
        tel = Telemetry()
        tel.phase_begin("gossip")
        tel.round_tick()
        tel.round_tick()
        snap = tel.snapshot()
        assert snap["phase"] == "gossip"
        assert snap["rounds"] == 1
        assert snap["elapsed_s"] >= 0.0

    def test_record_pool_round_accounting(self):
        tel = Telemetry()
        tel.record_pool_round([0.2, 0.5], wall_s=0.6)
        tel.record_pool_round([0.3, 0.1], wall_s=0.35)
        doc = tel.as_dict()["sharded"]
        assert doc["pool_rounds"] == 2
        workers = doc["workers"]
        assert workers["0"]["busy_s"] == pytest.approx(0.5)
        assert workers["1"]["busy_s"] == pytest.approx(0.6)
        # barrier wait = slowest - own, accumulated
        assert workers["0"]["barrier_wait_s"] == pytest.approx(0.3)
        assert workers["1"]["barrier_wait_s"] == pytest.approx(0.2)
        assert doc["parent_overhead_s"] == pytest.approx(0.15)

    def test_use_telemetry_installs_and_restores(self):
        assert current_telemetry() is NULL_TELEMETRY
        tel = Telemetry()
        with use_telemetry(tel):
            assert current_telemetry() is tel
            with use_telemetry(None):
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is tel
        assert current_telemetry() is NULL_TELEMETRY

    def test_instrumented_decorator(self):
        calls = []

        @instrumented("unit.op")
        def op(x):
            calls.append(x)
            return x * 2

        assert op.__wrapped__(3) == 6  # undecorated original stays reachable
        assert op(1) == 2  # disabled: no recording
        tel = Telemetry()
        with use_telemetry(tel):
            assert op(2) == 4
        spans = tel.as_dict().get("spans", {})
        assert spans["unit.op"]["count"] == 1
        assert calls == [3, 1, 2]

    def test_format_telemetry_summary(self):
        tel = Telemetry()
        tel.phase_begin("drr")
        tel.count("sharded.inline.small_batch", 4)
        text = format_telemetry(tel.as_dict())
        assert "telemetry" in text
        assert "phase drr" in text
        assert "sharded.inline.small_batch" in text
        assert format_telemetry({}) == "(no telemetry recorded)"


# --------------------------------------------------------------------------- #
# neutrality: telemetry never changes outcomes or identities
# --------------------------------------------------------------------------- #
class TestTelemetryNeutrality:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_SPECS))
    @pytest.mark.parametrize("backend", ["vectorized", "sharded", "engine"])
    @pytest.mark.parametrize("failures", FAILURE_MODELS, ids=["reliable", "lossy"])
    def test_same_seed_outcome_identical_with_telemetry_on(self, protocol, backend, failures):
        plain = repro.run(_spec_for(protocol, backend, failures))
        traced = repro.run(_spec_for(protocol, backend, failures, telemetry=True))
        assert traced.same_outcome(plain)
        assert plain.telemetry is None
        assert traced.telemetry is not None
        assert traced.telemetry["wall_s"] > 0.0
        assert traced.telemetry["phases"]

    def test_spec_hashes_ignore_the_toggle(self):
        spec = RunSpec(protocol="drr", params={"n": 64}, seed=9)
        traced = spec.with_telemetry()
        assert traced.telemetry is True
        assert traced.spec_hash() == spec.spec_hash()
        assert traced.param_hash() == spec.param_hash()
        assert spec.to_dict().get("telemetry") is None  # omitted when off
        assert traced.to_dict()["telemetry"] is True  # transport keeps it
        assert RunSpec.from_dict(traced.to_dict()) == traced
        assert traced.describe().endswith("+telemetry")

    def test_result_envelope_round_trips_and_ignores_telemetry(self):
        spec = RunSpec(protocol="drr", params={"n": 64}, seed=9, telemetry=True)
        result = repro.run(spec)
        decoded = RunResult.from_json(result.to_json())
        assert decoded.telemetry == result.telemetry
        assert decoded.same_outcome(result)
        # same_outcome must not look at the telemetry section at all
        plain = repro.run(spec.with_telemetry(False))
        assert plain.to_dict().get("telemetry") is None
        assert plain.same_outcome(result)
        assert "telemetry" in result.describe()

    def test_explicit_recorder_wins_over_the_spec_toggle(self):
        tel = Telemetry()
        result = repro.run(RunSpec(protocol="drr", params={"n": 64}, seed=9), telemetry=tel)
        assert result.telemetry is not None
        assert result.telemetry == tel.as_dict()


# --------------------------------------------------------------------------- #
# sharded pool telemetry
# --------------------------------------------------------------------------- #
class TestShardedTelemetry:
    def _run(self, failure_model=None, telemetry=True):
        kernel = BACKENDS["sharded"]
        tel = Telemetry() if telemetry else None
        config = DRRGossipConfig(backend="sharded", failure_model=failure_model)
        values = np.random.default_rng(0).uniform(0.0, 100.0, size=2000)
        with kernel.options(shards=2, min_batch=0):
            if tel is not None:
                with use_telemetry(tel):
                    result = drr_gossip_average(values, rng=1, config=config)
            else:
                result = drr_gossip_average(values, rng=1, config=config)
        return result, (tel.as_dict() if tel is not None else None)

    def test_pool_run_reports_worker_busy_and_barrier_wait(self):
        result, doc = self._run()
        sharded = doc["sharded"]
        assert sharded["pool_rounds"] > 0
        assert set(sharded["workers"]) == {"0", "1"}
        for worker in sharded["workers"].values():
            assert worker["busy_s"] >= 0.0
            assert worker["barrier_wait_s"] >= 0.0
        assert sharded["parent_overhead_s"] >= 0.0
        assert doc["counters"]["sharded.mirror_bytes"] > 0
        assert doc["gauges"]["sharded.arena_bytes"] > 0
        # telemetry through the pool is outcome-neutral too
        plain, _ = self._run(telemetry=False)
        assert result.rounds == plain.rounds
        assert result.messages == plain.messages
        assert np.array_equal(result.estimates, plain.estimates)

    def test_lossy_relay_runs_pooled_with_no_inline_counters(self):
        # The lossy Phase III relay shards (two barriers, cross-shard
        # occurrence-rank merge): with min_batch=0 nothing falls back
        # inline, so no ``sharded.inline.*`` counter may fire.
        result, doc = self._run(failure_model=FailureModel(loss_probability=0.05))
        inline = [name for name in doc["counters"] if name.startswith("sharded.inline.")]
        assert inline == []
        assert doc["sharded"]["pool_rounds"] > 0

    def test_small_batches_are_counted_when_min_batch_gates(self):
        kernel = BACKENDS["sharded"]
        tel = Telemetry()
        values = np.random.default_rng(0).uniform(0.0, 100.0, size=500)
        with kernel.options(shards=2, min_batch=10_000):
            with use_telemetry(tel):
                drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="sharded"))
        assert tel.as_dict()["counters"]["sharded.inline.small_batch"] > 0


# --------------------------------------------------------------------------- #
# tracing stays engine-only
# --------------------------------------------------------------------------- #
class TestTracerEngineOnly:
    @pytest.mark.parametrize("backend", ["vectorized", "sharded"])
    def test_columnar_backends_reject_an_enabled_tracer(self, backend):
        with pytest.raises(ConfigurationError, match="tracing is engine-only") as excinfo:
            run_drr(64, rng=1, backend=backend, tracer=Tracer())
        # the error points at telemetry as the columnar alternative
        assert "telemetry" in str(excinfo.value)

    def test_disabled_tracer_is_accepted_everywhere(self):
        from repro.simulator.trace import NullTracer

        result = run_drr(64, rng=1, backend="vectorized", tracer=NullTracer())
        assert result.rounds > 0

    def test_engine_backend_still_traces(self):
        tracer = Tracer()
        run_drr(64, rng=1, backend="engine", tracer=tracer)
        assert len(list(tracer.events())) > 0


# --------------------------------------------------------------------------- #
# JSONL event export
# --------------------------------------------------------------------------- #
EVENT_REQUIRED_KEYS = {
    "run": {"wall_s"},
    "phase": {"name", "wall_s", "rounds"},
    "round_samples": {"phase", "count", "mean_s", "min_s", "max_s", "samples_s"},
    "span": {"name", "count", "total_s"},
    "counter": {"name", "value"},
    "gauge": {"name", "value"},
    "worker": {"index", "busy_s", "barrier_wait_s"},
}


class TestJsonlExport:
    def _doc(self):
        tel = Telemetry()
        result = repro.run(
            RunSpec(protocol="drr-gossip", params={"n": 64, "aggregate": "average"}, seed=2),
            telemetry=tel,
        )
        assert result.telemetry is not None
        return result.telemetry

    def test_events_cover_the_schema(self):
        doc = self._doc()
        events = list(events_from_telemetry(doc))
        kinds = {event["event"] for event in events}
        assert {"run", "phase", "round_samples", "span"} <= kinds
        for event in events:
            assert event["event"] in EVENT_REQUIRED_KEYS
            missing = EVENT_REQUIRED_KEYS[event["event"]] - event.keys()
            assert not missing, f"{event['event']} event missing {missing}"

    def test_worker_events_from_a_pool_document(self):
        tel = Telemetry()
        tel.record_pool_round([0.1, 0.2], wall_s=0.25)
        events = list(events_from_telemetry(tel.as_dict()))
        workers = [e for e in events if e["event"] == "worker"]
        assert [w["index"] for w in workers] == [0, 1]
        assert all(w["pool_rounds"] == 1 for w in workers)

    def test_write_and_append_jsonl(self, tmp_path):
        doc = self._doc()
        path = tmp_path / "events.jsonl"
        write_events_jsonl(doc, path)
        first = [json.loads(line) for line in path.read_text().splitlines()]
        assert first[0]["event"] == "run"
        write_events_jsonl(doc, path, append=True)
        combined = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(combined) == 2 * len(first)
        write_events_jsonl(doc, path)  # overwrite mode truncates
        assert len(path.read_text().splitlines()) == len(first)


# --------------------------------------------------------------------------- #
# heartbeat thread
# --------------------------------------------------------------------------- #
class TestHeartbeat:
    def test_ticks_and_line_format(self):
        stream = io.StringIO()
        tel = Telemetry()
        tel.phase_begin("gossip")
        with Heartbeat(tel, interval_s=0.02, stream=stream, label="avg"):
            time.sleep(0.1)
        output = stream.getvalue()
        assert "[heartbeat] avg: elapsed=" in output
        assert "phase=gossip" in output

    def test_null_telemetry_still_reports_elapsed(self):
        stream = io.StringIO()
        beat = Heartbeat(NullTelemetry(), interval_s=0.02, stream=stream).start()
        time.sleep(0.06)
        beat.stop()
        beat.stop()  # idempotent
        assert beat.ticks >= 1
        assert "elapsed=" in stream.getvalue()
        assert "phase=" not in stream.getvalue()

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Heartbeat(NullTelemetry(), interval_s=0.0)


# --------------------------------------------------------------------------- #
# logging hierarchy
# --------------------------------------------------------------------------- #
class TestLogging:
    def test_get_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("orchestration.store").name == "repro.orchestration.store"

    def test_configure_is_idempotent(self):
        root = configure_logging(0)
        before = [h for h in root.handlers if getattr(h, "_repro_cli_handler", False)]
        configure_logging(1)
        configure_logging(2)
        after = [h for h in root.handlers if getattr(h, "_repro_cli_handler", False)]
        assert len(before) == len(after) == 1
        assert root.level == logging.DEBUG
        assert root.propagate is False

    def test_verbosity_levels(self):
        assert configure_logging(-1).level == logging.ERROR
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(3).level == logging.DEBUG
        configure_logging(0)  # leave the default behind for other tests

    def test_store_migration_logs_instead_of_printing(self, tmp_path, caplog):
        path = tmp_path / "legacy.sqlite"
        conn = sqlite3.connect(str(path))
        conn.executescript(_LEGACY_PR5_SCHEMA)
        conn.commit()
        conn.close()
        # configure_logging sets propagate=False on the repro root (its
        # handler is the sink of record); let records through to caplog here.
        root = get_logger()
        previous = root.propagate
        root.propagate = True
        try:
            with caplog.at_level(logging.INFO, logger="repro.orchestration.store"):
                with ResultStore(path):
                    pass
        finally:
            root.propagate = previous
        added = [r.getMessage() for r in caplog.records if "added" in r.getMessage()]
        assert any("telemetry_json" in m for m in added)
        assert any("heartbeat_at" in m for m in added)


# --------------------------------------------------------------------------- #
# result store: telemetry column + heartbeat liveness
# --------------------------------------------------------------------------- #
#: the runs schema as PR 5 shipped it (no telemetry/heartbeat columns)
_LEGACY_PR5_SCHEMA = """
CREATE TABLE runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment  TEXT NOT NULL,
    param_hash  TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    status      TEXT NOT NULL CHECK (status IN ('ok', 'failed')),
    params      TEXT NOT NULL,
    backend     TEXT,
    spec_json   TEXT,
    description TEXT NOT NULL DEFAULT '',
    headers     TEXT NOT NULL DEFAULT '[]',
    rows        TEXT NOT NULL DEFAULT '[]',
    notes       TEXT NOT NULL DEFAULT '[]',
    error       TEXT,
    duration_s  REAL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (experiment, param_hash, seed)
);
"""


class _FakeResult:
    description = "fake"
    headers = ("a",)
    rows = ({"a": 1},)
    notes = ()


class TestStoreTelemetry:
    def test_round_trip_and_heartbeat_stamp(self, tmp_path):
        doc = {"wall_s": 1.25, "phases": {"drr": {"wall_s": 1.0, "rounds": {"count": 3}}}}
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(
                "exp", {"n": 8}, 1, _FakeResult(), telemetry_json=json.dumps(doc)
            )
            store.record_result("exp", {"n": 16}, 1, _FakeResult())
            runs = {run.params["n"]: run for run in store.query()}
        assert runs[8].telemetry == doc
        assert runs[8].heartbeat_at is not None
        assert runs[8].as_dict()["telemetry"] == doc
        assert runs[16].telemetry is None
        assert runs[16].heartbeat_at is not None

    def test_failure_clears_telemetry(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.record_result(
                "exp", {"n": 8}, 1, _FakeResult(), telemetry_json=json.dumps({"wall_s": 1.0})
            )
            store.record_failure("exp", {"n": 8}, 1, "boom")
            run = store.query()[0]
        assert run.status == "failed"
        assert run.telemetry is None

    def test_legacy_store_migrates_in_place(self, tmp_path):
        path = tmp_path / "legacy.sqlite"
        conn = sqlite3.connect(str(path))
        conn.executescript(_LEGACY_PR5_SCHEMA)
        conn.execute(
            "INSERT INTO runs (experiment, param_hash, seed, status, params, backend)"
            " VALUES ('old', 'abc', 1, 'ok', '{}', 'vectorized')"
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            run = store.query()[0]
            assert run.telemetry is None
            assert run.heartbeat_at is None
            # the migrated store accepts telemetry writes and heartbeats
            store.record_result(
                "old", {}, 1, _FakeResult(), telemetry_json=json.dumps({"wall_s": 2.0})
            )
            store.mark_heartbeat("old", {"n": 1}, 7, worker="w1")
            assert store.query()[0].telemetry == {"wall_s": 2.0}
            assert store.heartbeats()[0]["worker"] == "w1"

    def test_heartbeat_claim_refresh_release(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            digest = store.mark_heartbeat("exp", {"n": 8}, 1, worker="w0")
            beats = store.heartbeats()
            assert len(beats) == 1
            assert beats[0]["param_hash"] == digest
            assert beats[0]["age_s"] >= 0.0
            store.mark_heartbeat("exp", {"n": 8}, 1, worker="w1")  # refresh, not duplicate
            assert len(store.heartbeats()) == 1
            assert store.heartbeats()[0]["worker"] == "w1"
            assert store.heartbeats(experiment="other") == []
            # recording the cell's result releases the claim
            store.record_result("exp", {"n": 8}, 1, _FakeResult())
            assert store.heartbeats() == []
            # clear_heartbeat releases without recording
            store.mark_heartbeat("exp", {"n": 8}, 2)
            store.clear_heartbeat("exp", {"n": 8}, 2)
            assert store.heartbeats() == []


# --------------------------------------------------------------------------- #
# sweeps: per-cell telemetry + heartbeat rows
# --------------------------------------------------------------------------- #
class TestSweepTelemetry:
    def test_sweep_rows_carry_telemetry_and_heartbeat(self, tmp_path):
        spec = RunSpec(protocol="drr", params={"n": 48}, seed=3, telemetry=True)
        cells = cells_from_run_specs([spec])
        with ResultStore(tmp_path / "s.sqlite") as store:
            report = SweepRunner(store, jobs=1).run_cells(cells, name="tel")
            assert report.executed == 1 and report.failed == 0
            run = store.query()[0]
            assert run.telemetry is not None
            assert run.telemetry["wall_s"] > 0.0
            assert run.heartbeat_at is not None
            assert store.heartbeats() == []  # claim released on record

            # resume is untouched by the toggle: the same spec without
            # telemetry hashes to the same cell and is skipped
            plain_cells = cells_from_run_specs([spec.with_telemetry(False)])
            assert plain_cells[0].param_hash == cells[0].param_hash
            resume = SweepRunner(store, jobs=1).run_cells(plain_cells, name="tel")
            assert resume.skipped == 1 and resume.executed == 0

    def test_sweep_without_telemetry_stores_none(self, tmp_path):
        spec = RunSpec(protocol="drr", params={"n": 48}, seed=3)
        with ResultStore(tmp_path / "s.sqlite") as store:
            SweepRunner(store, jobs=1).run_cells(cells_from_run_specs([spec]))
            assert store.query()[0].telemetry is None


# --------------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------------- #
class TestCli:
    def test_run_telemetry_prints_summary_and_writes_jsonl(self, tmp_path, capsys):
        from repro.harness.cli import main

        events = tmp_path / "events.jsonl"
        rc = main(["run", "--n", "500", "--telemetry", str(events)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry        : wall" in out
        assert "phase drr" in out
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert lines[0]["event"] == "run"

    def test_run_spec_with_telemetry(self, tmp_path, capsys):
        from repro.harness.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            json.dumps({"protocol": "drr", "params": {"n": 64}, "seed": 4})
        )
        rc = main(["run", "--spec", str(spec_file), "--telemetry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+telemetry" in out
        assert "telemetry        : wall" in out

    def test_results_telemetry_lists_rows_and_heartbeats(self, tmp_path, capsys):
        from repro.harness.cli import main

        store_path = tmp_path / "s.sqlite"
        with ResultStore(store_path) as store:
            store.record_result(
                "exp", {"n": 8}, 1, _FakeResult(),
                telemetry_json=json.dumps({"wall_s": 0.5, "phases": {}}),
            )
            store.mark_heartbeat("exp", {"n": 9}, 2, worker="w0")
        rc = main(["results", "--store", str(store_path), "--telemetry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry        : wall 0.500s" in out
        assert "w0" in out

    def test_results_plot_requires_bench(self, tmp_path, capsys):
        from repro.harness.cli import main

        store_path = tmp_path / "s.sqlite"
        with ResultStore(store_path):
            pass
        rc = main(["results", "--store", str(store_path), "--plot"])
        assert rc == 2
        assert "--bench" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# bench trajectory figures (pure planning; rendering needs matplotlib)
# --------------------------------------------------------------------------- #
class TestBenchFigures:
    ROWS = [
        {"bench": "smoke", "protocol": "p", "backend": "vectorized", "n": 100,
         "wall_s": 1.0, "git_sha": "aaa"},
        {"bench": "smoke", "protocol": "p", "backend": "vectorized", "n": 100,
         "wall_s": 3.0, "git_sha": "aaa"},
        {"bench": "smoke", "protocol": "p", "backend": "sharded", "shards": 2,
         "n": 100, "wall_s": 0.5, "git_sha": "bbb"},
        {"bench": "smoke", "protocol": "q", "backend": "vectorized", "n": 100,
         "wall_s": 2.0, "git_sha": "bbb"},
        {"bench": "smoke", "protocol": "q", "backend": "vectorized", "n": 100,
         "git_sha": "bbb"},  # no wall_s: skipped
    ]

    def test_plan_groups_by_bench_and_protocol(self):
        from repro.harness.plotting import plan_bench_figures

        plans = plan_bench_figures(self.ROWS)
        assert [(p["bench"], p["protocol"]) for p in plans] == [("smoke", "p"), ("smoke", "q")]
        p_plan = plans[0]
        assert p_plan["xticks"] == ["aaa", "bbb"]
        # same-commit repetitions average; sharded series is labelled with P
        assert p_plan["series"]["vectorized n=100"] == ([0.0], [2.0])
        assert p_plan["series"]["sharded[2] n=100"] == ([1.0], [0.5])

    def test_plan_empty_rows(self):
        from repro.harness.plotting import plan_bench_figures

        assert plan_bench_figures([]) == []

    def test_render_requires_matplotlib_or_writes(self, tmp_path):
        from repro.harness.plotting import PlottingUnavailableError, render_bench_plots

        try:
            written = render_bench_plots(self.ROWS, tmp_path)
        except PlottingUnavailableError as exc:
            assert "matplotlib" in str(exc)
        else:
            assert len(written) == 2
            assert all(path.exists() for path in written)
