"""Unit and property tests for repro.core.aggregates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    AGGREGATE_SPECS,
    Aggregate,
    estimate_error,
    exact_aggregate,
    relative_error,
)

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestExactAggregate:
    def test_all_kinds_have_specs(self):
        assert set(AGGREGATE_SPECS) == set(Aggregate)

    def test_max_min_sum_count_average(self):
        v = np.array([1.0, 5.0, -2.0, 4.0])
        assert exact_aggregate(Aggregate.MAX, v) == 5.0
        assert exact_aggregate(Aggregate.MIN, v) == -2.0
        assert exact_aggregate(Aggregate.SUM, v) == 8.0
        assert exact_aggregate(Aggregate.COUNT, v) == 4.0
        assert exact_aggregate(Aggregate.AVERAGE, v) == 2.0

    def test_rank_needs_query(self):
        v = np.array([1.0, 2.0, 3.0])
        assert exact_aggregate(Aggregate.RANK, v, query=2.0) == 2.0
        with pytest.raises(ValueError):
            exact_aggregate(Aggregate.RANK, v)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_aggregate(Aggregate.MAX, np.array([]))

    def test_string_kind_accepted(self):
        assert exact_aggregate("max", np.array([3.0, 7.0])) == 7.0


class TestRelativeError:
    def test_plain_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_truth_absolute_fallback(self):
        assert relative_error(0.05, 0.0) == pytest.approx(0.05)

    def test_zero_truth_without_fallback(self):
        assert relative_error(0.05, 0.0, absolute_fallback=False) == float("inf")
        assert relative_error(0.0, 0.0, absolute_fallback=False) == 0.0


class TestEstimateError:
    def test_exact_aggregate_scores_zero_one(self):
        v = np.array([1.0, 2.0, 3.0])
        estimates = np.array([3.0, 3.0, 2.0])
        err = estimate_error(Aggregate.MAX, estimates, v)
        assert err.tolist() == [0.0, 0.0, 1.0]

    def test_convergent_aggregate_scores_relative(self):
        v = np.array([1.0, 3.0])
        estimates = np.array([2.2, 2.0])
        err = estimate_error(Aggregate.AVERAGE, estimates, v)
        assert err[0] == pytest.approx(0.1)
        assert err[1] == pytest.approx(0.0)


class TestProperties:
    @given(values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_min_le_average_le_max(self, values):
        v = np.array(values)
        lo = exact_aggregate(Aggregate.MIN, v)
        hi = exact_aggregate(Aggregate.MAX, v)
        mid = exact_aggregate(Aggregate.AVERAGE, v)
        assert lo <= mid + 1e-9
        assert mid <= hi + 1e-9

    @given(values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_sum_equals_average_times_count(self, values):
        v = np.array(values)
        s = exact_aggregate(Aggregate.SUM, v)
        a = exact_aggregate(Aggregate.AVERAGE, v)
        c = exact_aggregate(Aggregate.COUNT, v)
        assert s == pytest.approx(a * c, rel=1e-9, abs=1e-6)

    @given(values_strategy, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_rank_is_monotone_in_query(self, values, query):
        v = np.array(values)
        r1 = exact_aggregate(Aggregate.RANK, v, query=query)
        r2 = exact_aggregate(Aggregate.RANK, v, query=query + 1.0)
        assert 0 <= r1 <= len(values)
        assert r1 <= r2
