"""Integration tests for the full DRR-gossip pipelines (Algorithms 7 and 8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Aggregate,
    DRRGossipConfig,
    drr_gossip,
    drr_gossip_average,
    drr_gossip_count,
    drr_gossip_max,
    drr_gossip_min,
    drr_gossip_rank,
    drr_gossip_sum,
)
from repro.simulator import FailureModel


class TestExactAggregates:
    def test_max_every_node_learns_exact_value(self, small_values):
        result = drr_gossip_max(small_values, rng=1)
        assert result.all_correct
        assert result.coverage == 1.0
        assert result.exact == pytest.approx(500.0)
        assert np.all(result.estimates[result.learned] == 500.0)

    def test_min_every_node_learns_exact_value(self, small_values):
        result = drr_gossip_min(small_values, rng=2)
        assert result.all_correct
        assert result.exact == pytest.approx(-500.0)

    def test_count_is_exact(self, small_values):
        result = drr_gossip_count(small_values, rng=3)
        assert result.all_correct
        assert result.exact == 256

    def test_rank_is_exact_for_median_query(self, small_values):
        query = float(np.median(small_values))
        result = drr_gossip_rank(small_values, query=query, rng=4)
        truth = float(np.sum(small_values <= query))
        assert result.exact == truth
        assert result.all_correct


class TestConvergentAggregates:
    def test_average_small_relative_error(self, small_values):
        result = drr_gossip_average(small_values, rng=5)
        assert result.coverage == 1.0
        assert result.max_relative_error < 1e-3

    def test_sum_small_relative_error(self, small_values):
        result = drr_gossip_sum(small_values, rng=6)
        assert result.max_relative_error < 1e-3
        assert result.exact == pytest.approx(small_values.sum())

    def test_average_of_negative_values(self, rng):
        values = -np.abs(rng.normal(40, 5, size=300))
        result = drr_gossip_average(values, rng=7)
        assert result.max_relative_error < 1e-3

    def test_average_of_mixed_sign_values(self, rng):
        values = rng.normal(0.0, 10.0, size=300) + 5.0
        result = drr_gossip_average(values, rng=8)
        assert result.max_relative_error < 1e-2


class TestGenericDispatch:
    @pytest.mark.parametrize(
        "aggregate", [Aggregate.MAX, Aggregate.MIN, Aggregate.AVERAGE, Aggregate.SUM, Aggregate.COUNT]
    )
    def test_dispatch_matches_specific_functions(self, aggregate, tiny_values):
        result = drr_gossip(tiny_values, aggregate, rng=11)
        assert result.aggregate == aggregate
        assert result.n == tiny_values.size

    def test_dispatch_accepts_strings(self, tiny_values):
        result = drr_gossip(tiny_values, "max", rng=12)
        assert result.aggregate == Aggregate.MAX

    def test_rank_via_dispatch_uses_query(self, tiny_values):
        result = drr_gossip(tiny_values, Aggregate.RANK, rng=13, query=0.5)
        assert result.exact == float(np.sum(tiny_values <= 0.5))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            drr_gossip_max(np.array([]), rng=1)


class TestResultObject:
    def test_metrics_phases_present(self, tiny_values):
        result = drr_gossip_max(tiny_values, rng=14)
        phases = result.messages_by_phase()
        for expected in ("drr", "convergecast", "broadcast-root", "gossip-max", "broadcast-final"):
            assert expected in phases
        assert result.messages == sum(phases.values())
        assert result.rounds == sum(result.rounds_by_phase().values())

    def test_average_pipeline_has_extra_phases(self, tiny_values):
        result = drr_gossip_average(tiny_values, rng=15)
        phases = result.messages_by_phase()
        for expected in ("gossip-max-sizes", "gossip-ave", "data-spread"):
            assert expected in phases

    def test_forest_exposed(self, tiny_values):
        result = drr_gossip_max(tiny_values, rng=16)
        assert result.drr.forest.n == tiny_values.size
        result.drr.forest.validate()

    def test_root_estimates_cover_all_roots(self, tiny_values):
        result = drr_gossip_max(tiny_values, rng=17)
        assert set(result.root_estimates) == set(result.drr.forest.roots.tolist())


class TestConfig:
    def test_custom_round_budgets_respected(self, tiny_values):
        config = DRRGossipConfig(gossip_rounds=3, sampling_rounds=2, ave_rounds=5, probe_budget=2)
        result = drr_gossip_average(tiny_values, rng=18, config=config)
        assert result.rounds_by_phase()["gossip-ave"] == 5
        assert result.drr.rounds <= 2

    def test_with_failures_builder(self):
        base = DRRGossipConfig(gossip_rounds=7)
        fm = FailureModel(loss_probability=0.1)
        derived = base.with_failures(fm)
        assert derived.gossip_rounds == 7
        assert derived.failure_model is fm

    def test_engine_backend_gives_identical_answers(self, tiny_values):
        fast = drr_gossip_max(tiny_values, rng=19)
        engine = drr_gossip_max(tiny_values, rng=19, config=DRRGossipConfig(backend="engine"))
        assert fast.exact == engine.exact
        assert engine.all_correct
        assert fast.messages == engine.messages
        assert fast.rounds == engine.rounds
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)

    def test_deterministic_given_seed(self, tiny_values):
        a = drr_gossip_average(tiny_values, rng=20)
        b = drr_gossip_average(tiny_values, rng=20)
        assert np.allclose(a.estimates, b.estimates, equal_nan=True)
        assert a.messages == b.messages


class TestComplexityShape:
    def test_fewer_messages_than_uniform_gossip(self):
        from repro.baselines import push_max

        n = 4096
        values = np.random.default_rng(0).uniform(0, 1, size=n)
        drr = drr_gossip_max(values, rng=21)
        uniform = push_max(values, rng=21)
        # The paper's claim is asymptotic (O(n log log n) vs O(n log n)); at
        # n = 4096 the implemented constants already put DRR-gossip clearly
        # below the uniform-gossip baseline.
        assert drr.messages < 0.75 * uniform.messages

    def test_rounds_logarithmic(self):
        n = 4096
        values = np.random.default_rng(0).uniform(0, 1, size=n)
        result = drr_gossip_max(values, rng=22)
        assert result.rounds < 25 * np.log2(n)


class TestPipelineProperties:
    @given(
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_max_pipeline_correct_for_any_size_and_seed(self, n, seed):
        values = np.random.default_rng(seed).normal(size=n)
        result = drr_gossip_max(values, rng=seed)
        assert result.all_correct
        assert result.coverage == 1.0

    @given(
        st.integers(min_value=8, max_value=150),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_average_pipeline_bounded_error_for_any_seed(self, n, seed):
        values = np.random.default_rng(seed).uniform(1.0, 2.0, size=n)
        result = drr_gossip_average(values, rng=seed)
        assert result.max_relative_error < 0.01
