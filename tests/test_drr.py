"""Tests for Phase I: distributed random ranking (fast and engine paths)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import default_probe_budget, run_drr
from repro.simulator import FailureModel, MessageKind


class TestProbeBudget:
    def test_paper_budget(self):
        assert default_probe_budget(1024) == 9  # log2(1024) - 1
        assert default_probe_budget(2) == 1
        assert default_probe_budget(1) == 1


class TestRunDRRFast:
    def test_forest_is_valid(self):
        result = run_drr(256, rng=1)
        result.forest.validate()
        assert result.forest.n == 256

    def test_every_non_root_has_higher_ranked_parent(self):
        result = run_drr(512, rng=2)
        forest = result.forest
        for node in range(forest.n):
            parent = forest.parent[node]
            if parent != -1:
                assert forest.rank[parent] > forest.rank[node]

    def test_rounds_bounded_by_probe_budget(self):
        result = run_drr(1024, rng=3)
        assert result.rounds <= default_probe_budget(1024)
        assert (result.probes <= default_probe_budget(1024)).all()

    def test_message_kinds(self):
        result = run_drr(256, rng=4)
        kinds = result.metrics.messages_by_kind()
        assert kinds[str(MessageKind.PROBE)] == int(result.probes.sum())
        # every non-root sent exactly one connect message
        assert kinds[str(MessageKind.CONNECT)] == 256 - result.forest.root_count

    def test_reliable_network_all_connects_delivered(self):
        result = run_drr(256, rng=5)
        non_roots = result.forest.parent >= 0
        assert result.connect_delivered[non_roots].all()
        assert not result.connect_delivered[~non_roots].any()

    def test_tree_count_near_n_over_logn(self):
        n = 4096
        counts = [run_drr(n, rng=seed).forest.root_count for seed in range(3)]
        expected = n / math.log2(n)
        assert 0.3 * expected < np.mean(counts) < 3.0 * expected

    def test_max_tree_size_logarithmic(self):
        n = 4096
        sizes = [run_drr(n, rng=seed).forest.max_tree_size for seed in range(3)]
        assert max(sizes) <= 20 * math.log2(n)

    def test_message_complexity_well_below_nlogn(self):
        n = 4096
        result = run_drr(n, rng=6)
        assert result.metrics.total_messages < 0.7 * n * math.log2(n)
        assert result.metrics.total_messages >= n - result.forest.root_count

    def test_custom_probe_budget(self):
        result = run_drr(256, rng=7, probe_budget=1)
        assert result.rounds <= 1
        assert (result.probes <= 1).all()

    def test_custom_ranks_used(self):
        n = 64
        ranks = np.linspace(0.0, 1.0, n)
        result = run_drr(n, rng=8, ranks=ranks)
        assert np.array_equal(result.forest.rank, ranks)
        # the top-ranked node can never find a higher rank, so it is a root
        assert result.forest.parent[n - 1] == -1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            run_drr(0)
        with pytest.raises(ValueError):
            run_drr(16, probe_budget=0)
        with pytest.raises(ValueError):
            run_drr(16, ranks=np.zeros(5))

    def test_crashed_nodes_become_isolated_roots(self):
        fm = FailureModel(crash_fraction=0.25)
        result = run_drr(256, rng=9, failure_model=fm)
        alive = result.forest.alive
        dead = ~alive
        assert dead.sum() == 64
        # dead nodes never probed and never attached
        assert (result.probes[dead] == 0).all()
        assert (result.forest.parent[dead] == -1).all()

    def test_lossy_network_still_produces_valid_forest(self):
        fm = FailureModel(loss_probability=0.2)
        result = run_drr(512, rng=10, failure_model=fm)
        result.forest.validate()
        # some connect messages should be lost at this loss rate
        non_roots = result.forest.parent >= 0
        assert result.connect_delivered[non_roots].sum() < non_roots.sum()

    def test_known_children_consistent_with_connects(self):
        result = run_drr(128, rng=11)
        known = result.known_children
        for parent, kids in enumerate(known):
            for kid in kids:
                assert result.forest.parent[kid] == parent

    def test_deterministic_given_seed(self):
        a = run_drr(256, rng=42)
        b = run_drr(256, rng=42)
        assert np.array_equal(a.forest.parent, b.forest.parent)
        assert a.metrics.total_messages == b.metrics.total_messages


class TestRunDRREngine:
    def test_engine_forest_valid_and_consistent(self):
        result = run_drr(128, rng=1, backend="engine")
        result.forest.validate()
        non_roots = result.forest.parent >= 0
        assert result.connect_delivered[non_roots].all()

    def test_engine_and_fast_are_identical_on_reliable_network(self):
        n = 512
        fast = run_drr(n, rng=3)
        engine = run_drr(n, rng=3, backend="engine")
        # Both backends consume the shared RNG stream in the same order, so
        # the same seed produces the same forest and the same accounting.
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert fast.metrics.total_messages == engine.metrics.total_messages
        assert fast.rounds == engine.rounds

    def test_engine_message_kinds_include_probe_and_rank(self):
        result = run_drr(64, rng=2, backend="engine")
        kinds = result.metrics.messages_by_kind()
        assert kinds[str(MessageKind.PROBE)] > 0
        assert kinds[str(MessageKind.RANK)] > 0
        assert kinds[str(MessageKind.CONNECT)] == 64 - result.forest.root_count

    def test_engine_rounds_close_to_budget(self):
        result = run_drr(256, rng=4, backend="engine")
        assert result.rounds <= default_probe_budget(256) + 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            run_drr(64, rng=1, backend="warp-drive")


class TestDRRProperties:
    @given(st.integers(min_value=2, max_value=300), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_forest_invariants_for_any_n_and_seed(self, n, seed):
        result = run_drr(n, rng=seed)
        forest = result.forest
        forest.validate()
        assert forest.root_count >= 1
        assert sum(forest.tree_sizes.values()) == n
        assert result.metrics.total_messages <= 2 * n * default_probe_budget(n) + n

    @given(st.integers(min_value=4, max_value=200), st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=20, deadline=None)
    def test_forest_valid_under_loss(self, n, delta):
        result = run_drr(n, rng=1, failure_model=FailureModel(loss_probability=delta))
        result.forest.validate()
