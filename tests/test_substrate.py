"""Backend-equivalence guarantees of the execution substrate.

The substrate's contract (see ``repro/substrate/kernel.py``): the columnar
``vectorized`` kernel and the message-level ``engine`` kernel consume the
shared RNG stream in the same order on reliable networks and charge
messages through the same accounting conventions, so for every protocol the
two backends must produce **identical** rounds, message counts (total, per
kind, per phase, lost), and estimates for the same seed.

Float caveat: protocols that *sum* floats (convergecast-sum, gossip-ave,
push-sum mass arriving over two hops) may fold concurrent contributions in
a different order per backend, so their estimates are compared to within
float-rounding (1e-12 relative) instead of bitwise.  Order-independent
folds (max/min) and all discrete quantities are compared exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    efficient_gossip,
    flood_max,
    push_max,
    push_pull_rumor,
    push_rumor,
    push_sum,
)
from repro.core import (
    Aggregate,
    DRRGossipConfig,
    drr_gossip,
    run_broadcast,
    run_convergecast,
    run_data_spread,
    run_drr,
    run_gossip_ave,
    run_gossip_max,
)
from repro.core.drr_gossip import broadcast_root_addresses
from repro.simulator import FailureModel, MetricsCollector
from repro.simulator.network import Network
from repro.simulator.message import Message
from repro.substrate import (
    available_backends,
    deliver_batch,
    get_kernel,
    normalize_backend,
    run_on,
)
from repro.topology import grid_graph


def assert_metrics_identical(a: MetricsCollector, b: MetricsCollector) -> None:
    assert a.total_rounds == b.total_rounds
    assert a.total_messages == b.total_messages
    assert a.total_messages_lost == b.total_messages_lost
    assert a.total_words == b.total_words
    assert dict(a.messages_by_kind()) == dict(b.messages_by_kind())
    assert a.messages_by_phase() == b.messages_by_phase()
    assert a.rounds_by_phase() == b.rounds_by_phase()


# --------------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ("vectorized", "engine")

    def test_normalize_accepts_names_and_kernels(self):
        assert normalize_backend(None) == "vectorized"
        assert normalize_backend("ENGINE ".strip().upper().lower()) == "engine"
        assert normalize_backend(get_kernel("engine")) == "engine"

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception, match="unknown substrate backend"):
            normalize_backend("quantum")

    def test_run_on_dispatches(self):
        picked = run_on("engine", vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "engine"
        picked = run_on(None, vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "vectorized"

    def test_config_normalises_backend(self):
        assert DRRGossipConfig(backend="engine").backend == "engine"
        with pytest.raises(Exception):
            DRRGossipConfig(backend="nope")


# --------------------------------------------------------------------------- #
# the shared delivery primitive vs the engine's Network.deliver
# --------------------------------------------------------------------------- #
class TestDeliveryParity:
    def test_batch_and_per_message_loss_draws_are_identical(self):
        """deliver_batch consumes the RNG exactly like Network.deliver."""
        n, count, delta = 64, 40, 0.3
        fm = FailureModel(loss_probability=delta)
        targets = np.random.default_rng(0).integers(0, n, size=count)

        batch_metrics = MetricsCollector(n=n)
        batch = deliver_batch(
            batch_metrics, fm, np.random.default_rng(7), "data", targets,
            alive=np.ones(n, dtype=bool),
        )

        engine_metrics = MetricsCollector(n=n)
        network = Network(n, failure_model=fm, rng=np.random.default_rng(123), alive=np.ones(n, dtype=bool))
        messages = [Message(sender=0, recipient=int(t), kind="data") for t in targets]
        arrived = network.deliver(messages, engine_metrics, np.random.default_rng(7))

        delivered_engine = np.zeros(count, dtype=bool)
        arrived_ids = {id(m) for m in arrived}
        for index, message in enumerate(messages):
            delivered_engine[index] = id(message) in arrived_ids
        assert np.array_equal(batch, delivered_engine)
        assert batch_metrics.total_messages == engine_metrics.total_messages == count
        assert batch_metrics.total_messages_lost == engine_metrics.total_messages_lost

    def test_dead_recipients_charged_as_lost(self):
        fm = FailureModel()
        alive = np.array([True, False, True])
        metrics = MetricsCollector(n=3)
        delivered = deliver_batch(
            metrics, fm, np.random.default_rng(0), "data", np.array([0, 1, 2]), alive=alive
        )
        assert delivered.tolist() == [True, False, True]
        assert metrics.total_messages == 3
        assert metrics.total_messages_lost == 1


# --------------------------------------------------------------------------- #
# per-phase equivalence
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def forest_inputs():
    drr = run_drr(256, rng=11)
    values = np.random.default_rng(5).normal(10.0, 5.0, size=256)
    root_of = broadcast_root_addresses(
        drr, drr.forest.roots, np.random.default_rng(2), DRRGossipConfig(), MetricsCollector(n=256)
    )
    return drr, values, root_of


class TestPhaseEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_drr_identical(self, seed):
        fast = run_drr(256, rng=seed, backend="vectorized")
        engine = run_drr(256, rng=seed, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.probes, engine.probes)
        assert np.array_equal(fast.connect_delivered, engine.connect_delivered)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_drr_identical_under_crashes(self):
        fm = FailureModel(crash_fraction=0.2)
        fast = run_drr(256, rng=9, failure_model=fm, backend="vectorized")
        engine = run_drr(256, rng=9, failure_model=fm, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.forest.alive, engine.forest.alive)
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("op", ["max", "min", "sum"])
    def test_convergecast_identical(self, forest_inputs, op):
        drr, values, _ = forest_inputs
        fast = run_convergecast(drr, values, op=op, rng=1, backend="vectorized")
        engine = run_convergecast(drr, values, op=op, rng=1, backend="engine")
        assert set(fast.local_value) == set(engine.local_value)
        for root in fast.local_value:
            assert fast.local_value[root] == pytest.approx(engine.local_value[root], rel=1e-12)
        assert fast.local_weight == engine.local_weight
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_broadcast_identical(self, forest_inputs):
        drr, _, _ = forest_inputs
        payload = {int(r): float(r) * 3.0 for r in drr.forest.roots}
        fast = run_broadcast(drr, payload, rng=4, backend="vectorized")
        engine = run_broadcast(drr, payload, rng=4, backend="engine")
        assert np.array_equal(fast.received, engine.received)
        assert np.allclose(fast.payload, engine.payload, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_gossip_max_identical(self, forest_inputs):
        drr, values, root_of = forest_inputs
        cov = run_convergecast(drr, values, op="max", rng=1)
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_gossip_max(
                    drr.forest.roots, cov.value_vector(drr.forest.roots), root_of, 256,
                    rng=7, metrics=metrics, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert fast.estimates == engine.estimates
        assert fast.after_gossip_fraction == engine.after_gossip_fraction
        assert_metrics_identical(*collectors)

    def test_gossip_ave_identical(self, forest_inputs):
        drr, values, root_of = forest_inputs
        cov = run_convergecast(drr, values, op="sum", rng=1)
        largest = drr.forest.largest_root()
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_gossip_ave(
                    drr.forest.roots,
                    cov.value_vector(drr.forest.roots),
                    cov.weight_vector(drr.forest.roots),
                    root_of, 256, rng=9, metrics=metrics, trace_root=largest, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert set(fast.estimates) == set(engine.estimates)
        for root in fast.estimates:
            assert fast.estimates[root] == pytest.approx(engine.estimates[root], rel=1e-12)
        assert len(fast.history) == len(engine.history)
        assert np.allclose(fast.history, engine.history, rtol=1e-9, equal_nan=True)
        assert_metrics_identical(*collectors)

    def test_data_spread_identical(self, forest_inputs):
        drr, _, root_of = forest_inputs
        spreader = int(drr.forest.largest_root())
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_data_spread(
                    drr.forest.roots, spreader, 42.5, root_of, 256,
                    rng=13, metrics=metrics, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert fast.estimates == engine.estimates
        assert_metrics_identical(*collectors)


# --------------------------------------------------------------------------- #
# full DRR-gossip pipelines
# --------------------------------------------------------------------------- #
class TestPipelineEquivalence:
    #: MAX / MIN / COUNT fold order-independently -> bitwise equality;
    #: AVERAGE / SUM / RANK accumulate floats -> float-rounding equality.
    EXACT = {Aggregate.MAX, Aggregate.MIN, Aggregate.COUNT}

    @pytest.mark.parametrize(
        "aggregate",
        [Aggregate.MAX, Aggregate.MIN, Aggregate.AVERAGE, Aggregate.SUM, Aggregate.COUNT, Aggregate.RANK],
    )
    def test_every_aggregate_identical_across_backends(self, aggregate, small_values):
        runs = {
            backend: drr_gossip(
                small_values,
                aggregate,
                rng=19,
                config=DRRGossipConfig(backend=backend),
                query=float(np.median(small_values)),
            )
            for backend in available_backends()
        }
        fast, engine = runs["vectorized"], runs["engine"]
        assert fast.rounds == engine.rounds
        assert fast.messages == engine.messages
        assert fast.rounds_by_phase() == engine.rounds_by_phase()
        assert fast.messages_by_phase() == engine.messages_by_phase()
        assert np.array_equal(fast.learned, engine.learned)
        assert fast.exact == engine.exact
        if aggregate in self.EXACT:
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        else:
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-9, equal_nan=True)
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_pipeline_identical_under_crashes(self, small_values):
        fm = FailureModel(crash_fraction=0.15)
        runs = [
            drr_gossip(
                small_values, Aggregate.MAX, rng=23,
                config=DRRGossipConfig(failure_model=fm, backend=backend),
            )
            for backend in available_backends()
        ]
        fast, engine = runs
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.messages == engine.messages
        assert_metrics_identical(fast.metrics, engine.metrics)


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
class TestBaselineEquivalence:
    def test_push_sum_identical(self):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        fast = push_sum(values, rng=4, backend="vectorized")
        engine = push_sum(values, rng=4, backend="engine")
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_push_max_identical_including_oracle_stop(self):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        for stop in (False, True):
            fast = push_max(values, rng=6, stop_when_converged=stop, backend="vectorized")
            engine = push_max(values, rng=6, stop_when_converged=stop, backend="engine")
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_rumor_protocols_identical(self):
        for fn in (push_rumor, push_pull_rumor):
            fast = fn(512, rng=7, backend="vectorized")
            engine = fn(512, rng=7, backend="engine")
            assert np.array_equal(fast.informed, engine.informed)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("delta", [0.0, 0.2])
    def test_flooding_identical_even_under_loss(self, delta):
        """Flooding's loss draws align per edge, so parity survives loss."""
        topology = grid_graph(144)
        values = np.random.default_rng(9).uniform(0, 100, size=144)
        fm = FailureModel(loss_probability=delta)
        fast = flood_max(topology, values, rng=10, failure_model=fm, backend="vectorized")
        engine = flood_max(topology, values, rng=10, failure_model=fm, backend="engine")
        assert np.array_equal(fast.estimates, engine.estimates)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("aggregate", [Aggregate.AVERAGE, Aggregate.MAX, Aggregate.MIN])
    def test_efficient_gossip_identical(self, aggregate):
        values = np.random.default_rng(3).uniform(0, 10, size=400)
        fast = efficient_gossip(values, aggregate, rng=12, backend="vectorized")
        engine = efficient_gossip(values, aggregate, rng=12, backend="engine")
        assert fast.group_count == engine.group_count
        assert fast.max_group_size == engine.max_group_size
        assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)


# --------------------------------------------------------------------------- #
# lossy networks: backends stay individually deterministic and statistically
# interchangeable even where exact parity is not guaranteed
# --------------------------------------------------------------------------- #
class TestLossyBehaviour:
    def test_each_backend_deterministic_under_loss(self):
        fm = FailureModel(loss_probability=0.1)
        for backend in available_backends():
            a = run_drr(128, rng=5, failure_model=fm, backend=backend)
            b = run_drr(128, rng=5, failure_model=fm, backend=backend)
            assert np.array_equal(a.forest.parent, b.forest.parent)
            assert a.metrics.total_messages == b.metrics.total_messages

    def test_backends_statistically_close_under_loss(self):
        fm = FailureModel(loss_probability=0.1)
        per_backend = []
        for backend in available_backends():
            messages = [
                run_drr(256, rng=seed, failure_model=fm, backend=backend).metrics.total_messages
                for seed in range(5)
            ]
            per_backend.append(np.mean(messages))
        ratio = per_backend[0] / per_backend[1]
        assert 0.8 < ratio < 1.25
