"""Backend-equivalence guarantees of the execution substrate.

The substrate's contract (see ``repro/substrate/kernel.py``): the columnar
``vectorized`` kernel, the multiprocessing ``sharded`` kernel, and the
message-level ``engine`` kernel consume the shared RNG stream in the same
order, decide per-transmission loss through the identity-keyed loss oracle,
and charge messages through the same accounting conventions.  For every
protocol the backends must therefore produce **identical** rounds, message
counts (total, per kind, per phase, lost), and estimates for the same seed —
on reliable *and* lossy networks (``FailureModel`` with loss probability
> 0), with and without initial crashes.

The ``sharded`` backend runs these tests with ``min_batch=0`` and two
workers (the :func:`sharded_workers` fixture), so every delivery, probe
exchange, and reliable relay actually crosses the shared-memory worker
pool rather than falling back to the inline path.

Float caveat: protocols that *sum* floats (convergecast-sum, gossip-ave,
push-sum mass arriving over two hops) may fold concurrent contributions in
a different order per backend, so their estimates are compared to within
float-rounding (1e-12 relative) instead of bitwise.  Order-independent
folds (max/min) and all discrete quantities are compared exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    efficient_gossip,
    flood_max,
    push_max,
    push_pull_rumor,
    push_rumor,
    push_sum,
)
from repro.core import (
    Aggregate,
    DRRGossipConfig,
    drr_gossip,
    run_broadcast,
    run_convergecast,
    run_data_spread,
    run_drr,
    run_gossip_ave,
    run_gossip_max,
    run_local_drr,
)
from repro.core.drr_gossip import broadcast_root_addresses
from repro.simulator import FailureModel, MetricsCollector
from repro.simulator.failures import LossOracle
from repro.simulator.network import Network
from repro.simulator.message import Message
from repro.substrate import (
    BACKENDS,
    available_backends,
    deliver_batch,
    get_kernel,
    normalize_backend,
    occurrence_index,
    probe_exchange,
    run_chord_lookups,
    run_on,
)
from repro.substrate.sharded import ShardedKernel, shutdown_pools
from repro.topology import ChordNetwork, grid_graph, make_graph

#: The failure models every equivalence assertion runs under: reliable,
#: lossy links, and lossy links plus initial crashes.
FAILURE_MODELS = [
    FailureModel(),
    FailureModel(loss_probability=0.15),
    FailureModel(loss_probability=0.1, crash_fraction=0.15),
]
FM_IDS = ["reliable", "lossy", "lossy+crashes"]

#: The four-way fault axis for churn-capable protocols: the three static
#: models above plus mid-run churn (rate crashes, rate joins, and explicit
#: schedule events).  Used by :class:`TestChurnEquivalence`.
CHURN_AXIS_MODELS = FAILURE_MODELS + [
    FailureModel(
        loss_probability=0.05,
        crash_fraction=0.05,
        churn_rate=0.01,
        join_rate=0.005,
        churn_schedule=((3, (2, 7), "crash"), (8, (2,), "join")),
    ),
]
CHURN_AXIS_IDS = FM_IDS + ["churn"]

#: Crash-only churn for the DRR-gossip pipeline (trees cannot re-admit
#: joiners; the API rejects join events for it).
CRASH_ONLY_CHURN = FailureModel(
    loss_probability=0.05,
    crash_fraction=0.02,
    churn_rate=0.004,
    churn_schedule=((5, (3, 9), "crash"),),
)

#: The backends measured against the ``engine`` fidelity reference.  With
#: numba installed, ``compiled`` registers itself and the matrix is
#: four-way; without it the backend appears in the *parametrized* tests as
#: an explicitly skipped param, so the gap is visible in the test report
#: rather than silent.  (In-test loops iterate FAST_BACKENDS, which only
#: ever holds registered names.)
FAST_BACKENDS = [name for name in available_backends() if name != "engine"]
FAST_BACKEND_PARAMS: list = list(FAST_BACKENDS)
if "compiled" not in FAST_BACKENDS:
    from repro.substrate.compiled import NUMBA_REQUIREMENT

    FAST_BACKEND_PARAMS.append(
        pytest.param("compiled", marks=pytest.mark.skip(reason=NUMBA_REQUIREMENT))
    )


@pytest.fixture(scope="module")
def sharded_workers():
    """Force every sharded batch through a real two-worker pool."""
    kernel = BACKENDS["sharded"]
    with kernel.options(shards=2, min_batch=0):
        yield kernel
    shutdown_pools()


def assert_metrics_identical(a: MetricsCollector, b: MetricsCollector) -> None:
    assert a.total_rounds == b.total_rounds
    assert a.total_messages == b.total_messages
    assert a.total_messages_lost == b.total_messages_lost
    assert a.total_messages_to_dead == b.total_messages_to_dead
    assert a.total_words == b.total_words
    assert dict(a.messages_by_kind()) == dict(b.messages_by_kind())
    assert a.messages_by_phase() == b.messages_by_phase()
    assert a.rounds_by_phase() == b.rounds_by_phase()


# --------------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_available_backends(self):
        from repro.substrate import NUMBA_AVAILABLE

        expected = ("vectorized", "engine", "sharded")
        if NUMBA_AVAILABLE:
            expected = ("vectorized", "compiled", "engine", "sharded")
        assert available_backends() == expected

    def test_normalize_accepts_names_and_kernels(self):
        assert normalize_backend(None) == "vectorized"
        assert normalize_backend("ENGINE ".strip().upper().lower()) == "engine"
        assert normalize_backend(get_kernel("engine")) == "engine"
        assert normalize_backend("sharded") == "sharded"
        assert isinstance(get_kernel("sharded"), ShardedKernel)

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception, match="unknown substrate backend"):
            normalize_backend("quantum")

    def test_unknown_backend_error_lists_registered_backends(self):
        """The error enumerates BACKENDS dynamically, so it never goes stale."""
        with pytest.raises(Exception) as excinfo:
            normalize_backend("quantum")
        for name in BACKENDS:
            assert name in str(excinfo.value)

    def test_run_on_dispatches(self):
        picked = run_on("engine", vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "engine"
        picked = run_on(None, vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "vectorized"
        # sharded is a VectorizedKernel subclass: it takes the columnar path
        picked = run_on("sharded", vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "sharded"

    def test_config_normalises_backend(self):
        assert DRRGossipConfig(backend="engine").backend == "engine"
        assert DRRGossipConfig(backend="sharded").backend == "sharded"
        with pytest.raises(Exception):
            DRRGossipConfig(backend="nope")


# --------------------------------------------------------------------------- #
# the shared delivery primitive vs the engine's Network.deliver
# --------------------------------------------------------------------------- #
class TestDeliveryParity:
    def test_batch_and_per_message_fates_are_identical(self):
        """deliver_batch and Network.deliver agree message-for-message.

        Fates are identity-keyed, so the engine delivering the same
        transmissions in reversed order still agrees with the batch.
        """
        n, count, delta = 64, 40, 0.3
        fm = FailureModel(loss_probability=delta)
        oracle = LossOracle(delta, key=12345)
        draw = np.random.default_rng(0)
        senders = draw.integers(0, n, size=count)
        targets = draw.integers(0, n, size=count)

        batch_metrics = MetricsCollector(n=n)
        batch = deliver_batch(
            batch_metrics, oracle, "data", targets,
            senders=senders, round_index=3, alive=np.ones(n, dtype=bool),
        )
        assert batch.any() and not batch.all()  # delta=0.3 over 40 messages

        engine_metrics = MetricsCollector(n=n)
        network = Network(
            n, failure_model=fm, rng=np.random.default_rng(123),
            alive=np.ones(n, dtype=bool), loss_oracle=oracle,
        )
        messages = [
            Message(sender=int(s), recipient=int(t), kind="data").stamped(3)
            for s, t in zip(senders, targets)
        ]
        arrived = network.deliver(list(reversed(messages)), engine_metrics)

        arrived_ids = {id(m) for m in arrived}
        delivered_engine = np.array([id(m) in arrived_ids for m in messages])
        assert np.array_equal(batch, delivered_engine)
        assert batch_metrics.total_messages == engine_metrics.total_messages == count
        assert batch_metrics.total_messages_lost == engine_metrics.total_messages_lost

    def test_fate_depends_on_identity_not_position(self):
        oracle = LossOracle(0.4, key=99)
        targets = np.arange(30)
        lost_a = oracle.sample(5, "data", 7, targets)
        lost_b = oracle.sample(5, "data", 7, targets[::-1])[::-1]
        assert np.array_equal(lost_a, lost_b)
        # different round / kind / sender / nonce -> independent fates
        assert not np.array_equal(lost_a, oracle.sample(6, "data", 7, targets))
        assert not np.array_equal(lost_a, oracle.sample(5, "push", 7, targets))
        assert not np.array_equal(lost_a, oracle.sample(5, "data", 8, targets))
        assert not np.array_equal(
            lost_a, oracle.sample(5, "data", 7, targets, nonces=np.ones(30, dtype=np.int64))
        )

    def test_sample_salted_matches_per_kind_sampling(self):
        """The engine's chunked mixed-kind path equals per-kind sampling."""
        from repro.simulator.failures import kind_salt

        oracle = LossOracle(0.35, key=4242)
        rng = np.random.default_rng(8)
        kinds = np.array(["probe", "rank", "gossip"])[rng.integers(0, 3, size=200)]
        senders = rng.integers(0, 50, size=200)
        recipients = rng.integers(0, 50, size=200)
        rounds = rng.integers(0, 10, size=200)
        nonces = rng.integers(0, 3, size=200)
        salts = np.fromiter((kind_salt(k) for k in kinds), dtype=np.uint64, count=200)
        chunked = oracle.sample_salted(rounds, salts, senders, recipients, nonces)
        for i in range(200):
            assert chunked[i] == oracle.lost(
                int(rounds[i]), kinds[i], int(senders[i]), int(recipients[i]), int(nonces[i])
            )

    def test_reliable_oracle_draws_nothing(self):
        fm = FailureModel()
        rng = np.random.default_rng(1)
        before = rng.bit_generator.state
        oracle = LossOracle.for_run(fm, rng)
        assert rng.bit_generator.state == before  # no key draw when delta == 0
        assert oracle.reliable
        assert not oracle.sample(0, "data", 0, np.arange(10)).any()

    def test_dead_recipients_charged_as_lost(self):
        oracle = LossOracle(0.0)
        alive = np.array([True, False, True])
        metrics = MetricsCollector(n=3)
        delivered = deliver_batch(
            metrics, oracle, "data", np.array([0, 1, 2]),
            senders=np.array([2, 0, 1]), round_index=0, alive=alive,
        )
        assert delivered.tolist() == [True, False, True]
        assert metrics.total_messages == 3
        assert metrics.total_messages_lost == 1

    def test_reliable_fast_path_charges_identically(self):
        """alive=None + reliable oracle: same counts, all delivered."""
        oracle = LossOracle(0.0)
        metrics = MetricsCollector(n=8)
        delivered = deliver_batch(
            metrics, oracle, "data", np.arange(8), senders=0, round_index=0,
            payload_words=3,
        )
        assert delivered.all()
        assert metrics.total_messages == 8
        assert metrics.total_words == 24
        assert metrics.total_messages_lost == 0

    def test_zero_size_batch_consumes_no_rng(self):
        """The empty-frontier edge case: zero messages, zero draws, zero charge."""
        fm = FailureModel(loss_probability=0.5)
        rng = np.random.default_rng(2)
        state = rng.bit_generator.state
        assert fm.sample_losses(0, rng).shape == (0,)
        assert rng.bit_generator.state == state
        metrics = MetricsCollector(n=4)
        delivered = deliver_batch(
            metrics, LossOracle(0.5, key=1), "data", np.zeros(0, dtype=np.int64),
            senders=np.zeros(0, dtype=np.int64), round_index=0,
        )
        assert delivered.shape == (0,)
        assert metrics.total_messages == 0

    def test_occurrence_index(self):
        assert occurrence_index(np.array([5, 3, 5, 5, 3])).tolist() == [0, 0, 1, 2, 1]
        assert occurrence_index(np.zeros(0, dtype=np.int64)).tolist() == []


# --------------------------------------------------------------------------- #
# the sharded worker pool vs the inline primitives
# --------------------------------------------------------------------------- #
class TestShardedPrimitives:
    """The pooled ops must reproduce the inline primitives bit-for-bit."""

    @pytest.mark.parametrize("delta", [0.0, 0.3], ids=["reliable", "lossy"])
    def test_pooled_deliver_matches_inline(self, sharded_workers, delta):
        oracle = LossOracle(delta, key=777)
        rng = np.random.default_rng(3)
        n = 300
        targets = rng.integers(0, n, size=n)
        senders = rng.integers(0, n, size=n)
        alive = rng.random(n) > 0.2
        inline_metrics = MetricsCollector(n=n)
        inline = deliver_batch(
            inline_metrics, oracle, "data", targets,
            senders=senders, round_index=5, alive=alive,
        )
        pooled_metrics = MetricsCollector(n=n)
        pooled = sharded_workers.deliver(
            pooled_metrics, oracle, "data", targets,
            senders=senders, round_index=5, alive=alive,
        )
        assert np.array_equal(inline, pooled)
        assert_metrics_identical(inline_metrics, pooled_metrics)

    @pytest.mark.parametrize("delta", [0.0, 0.3], ids=["reliable", "lossy"])
    def test_pooled_probe_exchange_matches_inline(self, sharded_workers, delta):
        oracle = LossOracle(delta, key=55)
        rng = np.random.default_rng(4)
        n = 400
        senders = np.arange(n, dtype=np.int64)
        targets = rng.integers(0, n, size=n)
        ranks = rng.random(n)
        alive = rng.random(n) > 0.1
        inline_metrics = MetricsCollector(n=n)
        inline = probe_exchange(
            inline_metrics, oracle, targets,
            senders=senders, ranks=ranks, round_index=2, alive=alive,
        )
        pooled_metrics = MetricsCollector(n=n)
        pooled = sharded_workers.probe_exchange(
            pooled_metrics, oracle, targets,
            senders=senders, ranks=ranks, round_index=2, alive=alive,
        )
        assert np.array_equal(inline, pooled)
        assert_metrics_identical(inline_metrics, pooled_metrics)

    @pytest.mark.parametrize("crashes", [False, True], ids=["all-alive", "crashes"])
    def test_pooled_relay_matches_inline(self, sharded_workers, crashes):
        from repro.substrate.delivery import relay_to_roots

        oracle = LossOracle(0.0)
        rng = np.random.default_rng(5)
        n, m = 500, 40
        roots = np.sort(rng.choice(n, size=m, replace=False)).astype(np.int64)
        position = np.full(n, -1, dtype=np.int64)
        position[roots] = np.arange(m)
        root_of = roots[rng.integers(0, m, size=n)]
        root_of[rng.random(n) < 0.1] = -1
        alive = (rng.random(n) > 0.15) if crashes else None
        targets = rng.integers(0, n, size=m)
        inline_metrics = MetricsCollector(n=n)
        inline = relay_to_roots(
            inline_metrics, oracle, targets, senders=roots, round_index=1,
            kind="gossip", position=position, root_of=root_of, alive=alive,
        )
        pooled_metrics = MetricsCollector(n=n)
        pooled = sharded_workers.relay_to_roots(
            pooled_metrics, oracle, targets, senders=roots, round_index=1,
            kind="gossip", position=position, root_of=root_of, alive=alive,
        )
        assert np.array_equal(inline, pooled)
        assert_metrics_identical(inline_metrics, pooled_metrics)


# --------------------------------------------------------------------------- #
# per-phase equivalence
# --------------------------------------------------------------------------- #
def make_forest_inputs(fm: FailureModel):
    drr = run_drr(256, rng=11, failure_model=fm)
    values = np.random.default_rng(5).normal(10.0, 5.0, size=256)
    root_of = broadcast_root_addresses(
        drr,
        np.array([r for r in drr.forest.roots], dtype=np.int64),
        np.random.default_rng(2),
        DRRGossipConfig(failure_model=fm),
        MetricsCollector(n=256),
    )
    return drr, values, root_of


@pytest.fixture(scope="module", params=FAILURE_MODELS, ids=FM_IDS)
def forest_inputs(request):
    return (request.param, *make_forest_inputs(request.param))


class TestPhaseEquivalence:
    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_drr_identical(self, seed, fm, backend, sharded_workers):
        fast = run_drr(256, rng=seed, failure_model=fm, backend=backend)
        engine = run_drr(256, rng=seed, failure_model=fm, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.forest.alive, engine.forest.alive)
        assert np.array_equal(fast.probes, engine.probes)
        assert np.array_equal(fast.connect_delivered, engine.connect_delivered)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("op", ["max", "min", "sum"])
    def test_convergecast_identical(self, forest_inputs, op, backend, sharded_workers):
        fm, drr, values, _ = forest_inputs
        fast = run_convergecast(drr, values, op=op, failure_model=fm, rng=1, backend=backend)
        engine = run_convergecast(drr, values, op=op, failure_model=fm, rng=1, backend="engine")
        assert set(fast.local_value) == set(engine.local_value)
        for root in fast.local_value:
            assert fast.local_value[root] == pytest.approx(engine.local_value[root], rel=1e-12)
        assert fast.local_weight == engine.local_weight
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    def test_broadcast_identical(self, forest_inputs, backend, sharded_workers):
        fm, drr, _, _ = forest_inputs
        alive = drr.forest.alive
        payload = {int(r): float(r) * 3.0 for r in drr.forest.roots if alive[r]}
        fast = run_broadcast(drr, payload, failure_model=fm, rng=4, backend=backend)
        engine = run_broadcast(drr, payload, failure_model=fm, rng=4, backend="engine")
        assert np.array_equal(fast.received, engine.received)
        assert np.allclose(fast.payload, engine.payload, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_gossip_max_identical(self, forest_inputs, sharded_workers):
        fm, drr, values, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        cov = run_convergecast(drr, values, op="max", failure_model=fm, rng=1)
        results, collectors = {}, {}
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results[backend] = run_gossip_max(
                roots, cov.value_vector(roots), root_of, 256,
                failure_model=fm, rng=7, metrics=metrics, alive=alive, backend=backend,
            )
            collectors[backend] = metrics
        for backend in FAST_BACKENDS:
            assert results[backend].estimates == results["engine"].estimates
            assert (
                results[backend].after_gossip_fraction
                == results["engine"].after_gossip_fraction
            )
            assert_metrics_identical(collectors[backend], collectors["engine"])

    def test_gossip_ave_identical(self, forest_inputs, sharded_workers):
        fm, drr, values, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        cov = run_convergecast(drr, values, op="sum", failure_model=fm, rng=1)
        largest = drr.forest.largest_root()
        results, collectors = {}, {}
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results[backend] = run_gossip_ave(
                roots,
                cov.value_vector(roots),
                cov.weight_vector(roots),
                root_of, 256, failure_model=fm, rng=9, metrics=metrics,
                alive=alive, trace_root=largest, backend=backend,
            )
            collectors[backend] = metrics
        engine = results["engine"]
        for backend in FAST_BACKENDS:
            fast = results[backend]
            assert set(fast.estimates) == set(engine.estimates)
            for root in fast.estimates:
                assert fast.estimates[root] == pytest.approx(
                    engine.estimates[root], rel=1e-12, nan_ok=True
                )
            assert len(fast.history) == len(engine.history)
            assert np.allclose(fast.history, engine.history, rtol=1e-9, equal_nan=True)
            assert_metrics_identical(collectors[backend], collectors["engine"])

    def test_data_spread_identical(self, forest_inputs, sharded_workers):
        fm, drr, _, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        spreader = int(drr.forest.largest_root())
        results, collectors = {}, {}
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results[backend] = run_data_spread(
                roots, spreader, 42.5, root_of, 256,
                failure_model=fm, rng=13, metrics=metrics, alive=alive, backend=backend,
            )
            collectors[backend] = metrics
        for backend in FAST_BACKENDS:
            assert results[backend].estimates == results["engine"].estimates
            assert_metrics_identical(collectors[backend], collectors["engine"])


# --------------------------------------------------------------------------- #
# the topology kernel: Local-DRR and Chord lookups
# --------------------------------------------------------------------------- #
class TestTopologyKernelEquivalence:
    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
    @pytest.mark.parametrize("family", ["grid", "regular4"])
    def test_local_drr_identical(self, family, fm, backend, sharded_workers):
        topo = make_graph(family, 144, np.random.default_rng(1))
        fast = run_local_drr(topo, rng=7, failure_model=fm, backend=backend)
        engine = run_local_drr(topo, rng=7, failure_model=fm, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.forest.alive, engine.forest.alive)
        assert np.array_equal(fast.connect_delivered, engine.connect_delivered)
        assert fast.rounds == engine.rounds == 2
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_local_drr_tie_breaking_identical(self):
        """Integer ranks force ties; both backends pick the same parent."""
        topo = grid_graph(64)
        ranks = np.random.default_rng(3).integers(0, 4, size=64).astype(float)
        fast = run_local_drr(topo, rng=5, ranks=ranks, backend="vectorized")
        engine = run_local_drr(topo, rng=5, ranks=ranks, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("delta", [0.0, 0.25], ids=["reliable", "lossy"])
    def test_chord_lookups_identical(self, delta, backend, sharded_workers):
        fm = FailureModel(loss_probability=delta)
        rng = np.random.default_rng(3)
        chord = ChordNetwork(128, rng)
        sources = rng.integers(0, 128, size=300)
        targets = rng.integers(0, chord.ring_size, size=300)
        fast = run_chord_lookups(
            chord, sources, targets, failure_model=fm, rng=11, backend=backend
        )
        engine = run_chord_lookups(
            chord, sources, targets, failure_model=fm, rng=11, backend="engine"
        )
        assert np.array_equal(fast.owners, engine.owners)
        assert np.array_equal(fast.hops, engine.hops)
        assert np.array_equal(fast.delivered, engine.delivered)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)
        if delta == 0.0:
            assert fast.delivered.all()
        else:
            assert 0 < fast.delivered.sum() < 300

    def test_chord_batch_matches_scalar_lookup(self):
        """On a reliable network the batch replays greedy routing exactly."""
        rng = np.random.default_rng(9)
        chord = ChordNetwork(64, rng)
        sources = rng.integers(0, 64, size=50)
        targets = rng.integers(0, chord.ring_size, size=50)
        batch = run_chord_lookups(chord, sources, targets, rng=1)
        for i in range(50):
            reference = chord.lookup(int(sources[i]), int(targets[i]))
            assert batch.owners[i] == reference.owner
            assert batch.hops[i] == reference.hops
        assert batch.rounds == int(batch.hops.max())
        assert batch.messages == int(batch.hops.sum())

    @pytest.mark.parametrize("delta", [0.0, 0.25], ids=["reliable", "lossy"])
    def test_chord_reply_batching_identical(self, delta):
        """count_reply charges the reply leg identically on every backend."""
        fm = FailureModel(loss_probability=delta)
        rng = np.random.default_rng(6)
        chord = ChordNetwork(128, rng)
        sources = rng.integers(0, 128, size=200)
        targets = rng.integers(0, chord.ring_size, size=200)
        runs = {
            backend: run_chord_lookups(
                chord, sources, targets, failure_model=fm, rng=11,
                backend=backend, count_reply=True,
            )
            for backend in available_backends()
        }
        engine = runs["engine"]
        for backend in FAST_BACKENDS:
            fast = runs[backend]
            assert np.array_equal(fast.owners, engine.owners)
            assert np.array_equal(fast.hops, engine.hops)
            assert np.array_equal(fast.delivered, engine.delivered)
            assert np.array_equal(fast.replied, engine.replied)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_chord_reply_accounting_matches_scalar_cost_model(self):
        """Reliable network: messages == hops + one reply per route
        (the ``count_reply`` cost model of ``ChordNetwork.lookup``)."""
        rng = np.random.default_rng(9)
        chord = ChordNetwork(64, rng)
        sources = rng.integers(0, 64, size=50)
        targets = rng.integers(0, chord.ring_size, size=50)
        plain = run_chord_lookups(chord, sources, targets, rng=1)
        replied = run_chord_lookups(chord, sources, targets, rng=1, count_reply=True)
        assert np.array_equal(plain.owners, replied.owners)
        assert replied.replied.all()
        assert replied.messages == plain.messages + 50
        assert replied.metrics.total_messages == plain.metrics.total_messages + 50
        # the reply leg takes one extra round after the last arrival
        assert replied.rounds == plain.rounds + 1


# --------------------------------------------------------------------------- #
# full DRR-gossip pipelines
# --------------------------------------------------------------------------- #
class TestPipelineEquivalence:
    #: MAX / MIN / COUNT fold order-independently -> bitwise equality;
    #: AVERAGE / SUM / RANK accumulate floats -> float-rounding equality.
    EXACT = {Aggregate.MAX, Aggregate.MIN, Aggregate.COUNT}

    def assert_pipeline_matches(self, fast, engine, aggregate):
        assert fast.rounds == engine.rounds
        assert fast.messages == engine.messages
        assert fast.rounds_by_phase() == engine.rounds_by_phase()
        assert fast.messages_by_phase() == engine.messages_by_phase()
        assert np.array_equal(fast.learned, engine.learned)
        assert fast.exact == engine.exact
        if aggregate in self.EXACT:
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        else:
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-9, equal_nan=True)
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize(
        "aggregate",
        [Aggregate.MAX, Aggregate.MIN, Aggregate.AVERAGE, Aggregate.SUM, Aggregate.COUNT, Aggregate.RANK],
    )
    def test_every_aggregate_identical_across_backends(
        self, aggregate, small_values, sharded_workers
    ):
        runs = {
            backend: drr_gossip(
                small_values,
                aggregate,
                rng=19,
                config=DRRGossipConfig(backend=backend),
                query=float(np.median(small_values)),
            )
            for backend in available_backends()
        }
        for backend in FAST_BACKENDS:
            self.assert_pipeline_matches(runs[backend], runs["engine"], aggregate)

    @pytest.mark.parametrize("fm", FAILURE_MODELS[1:], ids=FM_IDS[1:])
    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.AVERAGE])
    def test_pipeline_identical_under_failures(
        self, aggregate, fm, small_values, sharded_workers
    ):
        runs = {
            backend: drr_gossip(
                small_values, aggregate, rng=23,
                config=DRRGossipConfig(failure_model=fm, backend=backend),
            )
            for backend in available_backends()
        }
        for backend in FAST_BACKENDS:
            self.assert_pipeline_matches(runs[backend], runs["engine"], aggregate)

    def test_pipeline_identical_under_crashes(self, small_values, sharded_workers):
        fm = FailureModel(crash_fraction=0.15)
        runs = {
            backend: drr_gossip(
                small_values, Aggregate.MAX, rng=23,
                config=DRRGossipConfig(failure_model=fm, backend=backend),
            )
            for backend in available_backends()
        }
        for backend in FAST_BACKENDS:
            self.assert_pipeline_matches(runs[backend], runs["engine"], Aggregate.MAX)


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
@pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
class TestBaselineEquivalence:
    def test_push_sum_identical(self, fm, backend, sharded_workers):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        fast = push_sum(values, rng=4, failure_model=fm, backend=backend)
        engine = push_sum(values, rng=4, failure_model=fm, backend="engine")
        assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_push_max_identical_including_oracle_stop(self, fm, backend, sharded_workers):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        for stop in (False, True):
            fast = push_max(values, rng=6, failure_model=fm, stop_when_converged=stop, backend=backend)
            engine = push_max(values, rng=6, failure_model=fm, stop_when_converged=stop, backend="engine")
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_rumor_protocols_identical(self, fm, backend, sharded_workers):
        if fm.crash_fraction:
            pytest.skip("rumor protocols ignore initial crashes by design")
        for fn in (push_rumor, push_pull_rumor):
            fast = fn(512, rng=7, failure_model=fm, backend=backend)
            engine = fn(512, rng=7, failure_model=fm, backend="engine")
            assert np.array_equal(fast.informed, engine.informed)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_flooding_identical(self, fm, backend, sharded_workers):
        if fm.crash_fraction:
            pytest.skip("flooding ignores initial crashes by design")
        topology = grid_graph(144)
        values = np.random.default_rng(9).uniform(0, 100, size=144)
        fast = flood_max(topology, values, rng=10, failure_model=fm, backend=backend)
        engine = flood_max(topology, values, rng=10, failure_model=fm, backend="engine")
        assert np.array_equal(fast.estimates, engine.estimates)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_efficient_gossip_identical(self, fm, backend, sharded_workers):
        for aggregate in (Aggregate.AVERAGE, Aggregate.MAX):
            values = np.random.default_rng(3).uniform(0, 10, size=400)
            fast = efficient_gossip(values, aggregate, rng=12, failure_model=fm, backend=backend)
            engine = efficient_gossip(values, aggregate, rng=12, failure_model=fm, backend="engine")
            assert fast.group_count == engine.group_count
            assert fast.max_group_size == engine.max_group_size
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)


# --------------------------------------------------------------------------- #
# mid-run churn: the four-way fault axis
# --------------------------------------------------------------------------- #
class TestChurnEquivalence:
    """Every backend must agree under mid-run churn, not just static faults.

    The axis is reliable / lossy / lossy+crashes / churn; churn adds rate
    crashes, rate joins, and explicit schedule events on top of loss and
    initial crashes.  Fates come from the identity-keyed
    :class:`~repro.simulator.failures.ChurnOracle`, so the evolving alive
    mask — and everything downstream of it — is the same on every backend.
    """

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", CHURN_AXIS_MODELS, ids=CHURN_AXIS_IDS)
    def test_push_sum_four_way(self, fm, backend, sharded_workers):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        fast = push_sum(values, rng=4, failure_model=fm, backend=backend)
        engine = push_sum(values, rng=4, failure_model=fm, backend="engine")
        assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
        assert fast.exact == engine.exact
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)
        if fm.has_churn:
            assert fast.metrics.total_messages_to_dead > 0
        else:
            assert fast.metrics.total_messages_to_dead == 0

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", CHURN_AXIS_MODELS, ids=CHURN_AXIS_IDS)
    def test_push_max_four_way(self, fm, backend, sharded_workers):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        fast = push_max(values, rng=6, failure_model=fm, backend=backend)
        engine = push_max(values, rng=6, failure_model=fm, backend="engine")
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.exact == engine.exact
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", CHURN_AXIS_MODELS, ids=CHURN_AXIS_IDS)
    def test_epoch_gossip_four_way(self, fm, backend, sharded_workers):
        from repro.baselines import epoch_gossip_ave

        values = np.random.default_rng(5).normal(8.0, 3.0, size=300)
        fast = epoch_gossip_ave(
            values, rng=2, epochs=3, epoch_rounds=8, failure_model=fm, backend=backend
        )
        engine = epoch_gossip_ave(
            values, rng=2, epochs=3, epoch_rounds=8, failure_model=fm, backend="engine"
        )
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.exact == engine.exact
        assert fast.rounds == engine.rounds
        assert fast.epoch_errors == engine.epoch_errors
        assert fast.epoch_survivors == engine.epoch_survivors
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("backend", FAST_BACKEND_PARAMS)
    @pytest.mark.parametrize("fm", CHURN_AXIS_MODELS, ids=CHURN_AXIS_IDS)
    def test_epoch_gossip_graph_four_way(self, fm, backend, sharded_workers):
        from repro.baselines import epoch_gossip_ave

        topology = grid_graph(144)
        values = np.random.default_rng(6).normal(0.0, 5.0, size=144)
        fast = epoch_gossip_ave(
            values, rng=3, epochs=2, epoch_rounds=10, failure_model=fm,
            topology=topology, backend=backend,
        )
        engine = epoch_gossip_ave(
            values, rng=3, epochs=2, epoch_rounds=10, failure_model=fm,
            topology=topology, backend="engine",
        )
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.epoch_errors == engine.epoch_errors
        assert fast.epoch_survivors == engine.epoch_survivors
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.AVERAGE, Aggregate.COUNT])
    def test_drr_gossip_pipeline_under_churn(self, aggregate, small_values, sharded_workers):
        """The full pipeline (crash-only churn) agrees across all backends."""
        runs = {
            backend: drr_gossip(
                small_values, aggregate, rng=29,
                config=DRRGossipConfig(failure_model=CRASH_ONLY_CHURN, backend=backend),
            )
            for backend in available_backends()
        }
        engine = runs["engine"]
        exact_cls = TestPipelineEquivalence()
        for backend in FAST_BACKENDS:
            exact_cls.assert_pipeline_matches(runs[backend], engine, aggregate)
            assert runs[backend].metrics.total_messages_to_dead == engine.metrics.total_messages_to_dead

    def test_drr_gossip_rejects_joins(self, small_values):
        fm = FailureModel(churn_rate=0.01, join_rate=0.01)
        with pytest.raises(ValueError, match="crash-only"):
            drr_gossip(small_values, Aggregate.AVERAGE, rng=1, config=DRRGossipConfig(failure_model=fm))

    def test_churn_off_runs_are_bit_identical_to_pre_churn(self):
        """A churn-free model must not perturb the RNG stream or fates:
        the whole churn subsystem is omitted-when-zero."""
        values = np.random.default_rng(3).uniform(0, 10, size=256)
        for fm in FAILURE_MODELS:
            assert not fm.has_churn
            for backend in ("vectorized", "engine"):
                a = push_sum(values, rng=9, failure_model=fm, backend=backend)
                b = push_sum(values, rng=9, failure_model=fm, backend=backend)
                assert np.array_equal(a.estimates, b.estimates, equal_nan=True)
                assert a.metrics.total_messages_to_dead == 0


# --------------------------------------------------------------------------- #
# lossy networks: determinism and cross-delta common random numbers
# --------------------------------------------------------------------------- #
class TestLossyBehaviour:
    def test_each_backend_deterministic_under_loss(self):
        fm = FailureModel(loss_probability=0.1)
        for backend in available_backends():
            a = run_drr(128, rng=5, failure_model=fm, backend=backend)
            b = run_drr(128, rng=5, failure_model=fm, backend=backend)
            assert np.array_equal(a.forest.parent, b.forest.parent)
            assert a.metrics.total_messages == b.metrics.total_messages

    def test_loss_draws_nothing_from_the_shared_stream(self):
        """Identity-keyed fates never consume the protocol's RNG stream:
        a lossy run draws the same ranks as the reliable run with the same
        seed (common random numbers across the delta axis of a sweep).
        Later draws may still diverge — loss changes *who keeps probing* —
        but never because a loss variate shifted the stream."""
        for fm in (FailureModel(loss_probability=0.05), FailureModel(loss_probability=0.3)):
            reliable = run_drr(128, rng=5)
            lossy = run_drr(128, rng=5, failure_model=fm)
            assert np.array_equal(reliable.forest.rank, lossy.forest.rank)
            rel_local = run_local_drr(grid_graph(64), rng=5)
            lossy_local = run_local_drr(grid_graph(64), rng=5, failure_model=fm)
            assert np.array_equal(rel_local.forest.rank, lossy_local.forest.rank)
