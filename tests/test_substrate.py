"""Backend-equivalence guarantees of the execution substrate.

The substrate's contract (see ``repro/substrate/kernel.py``): the columnar
``vectorized`` kernel and the message-level ``engine`` kernel consume the
shared RNG stream in the same order, decide per-transmission loss through
the identity-keyed loss oracle, and charge messages through the same
accounting conventions.  For every protocol the two backends must therefore
produce **identical** rounds, message counts (total, per kind, per phase,
lost), and estimates for the same seed — on reliable *and* lossy networks
(``FailureModel`` with loss probability > 0), with and without initial
crashes.

Float caveat: protocols that *sum* floats (convergecast-sum, gossip-ave,
push-sum mass arriving over two hops) may fold concurrent contributions in
a different order per backend, so their estimates are compared to within
float-rounding (1e-12 relative) instead of bitwise.  Order-independent
folds (max/min) and all discrete quantities are compared exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    efficient_gossip,
    flood_max,
    push_max,
    push_pull_rumor,
    push_rumor,
    push_sum,
)
from repro.core import (
    Aggregate,
    DRRGossipConfig,
    drr_gossip,
    run_broadcast,
    run_convergecast,
    run_data_spread,
    run_drr,
    run_gossip_ave,
    run_gossip_max,
    run_local_drr,
)
from repro.core.drr_gossip import broadcast_root_addresses
from repro.simulator import FailureModel, MetricsCollector
from repro.simulator.failures import LossOracle
from repro.simulator.network import Network
from repro.simulator.message import Message
from repro.substrate import (
    available_backends,
    deliver_batch,
    get_kernel,
    normalize_backend,
    occurrence_index,
    run_chord_lookups,
    run_on,
)
from repro.topology import ChordNetwork, grid_graph, make_graph

#: The failure models every equivalence assertion runs under: reliable,
#: lossy links, and lossy links plus initial crashes.
FAILURE_MODELS = [
    FailureModel(),
    FailureModel(loss_probability=0.15),
    FailureModel(loss_probability=0.1, crash_fraction=0.15),
]
FM_IDS = ["reliable", "lossy", "lossy+crashes"]


def assert_metrics_identical(a: MetricsCollector, b: MetricsCollector) -> None:
    assert a.total_rounds == b.total_rounds
    assert a.total_messages == b.total_messages
    assert a.total_messages_lost == b.total_messages_lost
    assert a.total_words == b.total_words
    assert dict(a.messages_by_kind()) == dict(b.messages_by_kind())
    assert a.messages_by_phase() == b.messages_by_phase()
    assert a.rounds_by_phase() == b.rounds_by_phase()


# --------------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ("vectorized", "engine")

    def test_normalize_accepts_names_and_kernels(self):
        assert normalize_backend(None) == "vectorized"
        assert normalize_backend("ENGINE ".strip().upper().lower()) == "engine"
        assert normalize_backend(get_kernel("engine")) == "engine"

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception, match="unknown substrate backend"):
            normalize_backend("quantum")

    def test_run_on_dispatches(self):
        picked = run_on("engine", vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "engine"
        picked = run_on(None, vectorized=lambda k: k.name, engine=lambda k: k.name)
        assert picked == "vectorized"

    def test_config_normalises_backend(self):
        assert DRRGossipConfig(backend="engine").backend == "engine"
        with pytest.raises(Exception):
            DRRGossipConfig(backend="nope")


# --------------------------------------------------------------------------- #
# the shared delivery primitive vs the engine's Network.deliver
# --------------------------------------------------------------------------- #
class TestDeliveryParity:
    def test_batch_and_per_message_fates_are_identical(self):
        """deliver_batch and Network.deliver agree message-for-message.

        Fates are identity-keyed, so the engine delivering the same
        transmissions in reversed order still agrees with the batch.
        """
        n, count, delta = 64, 40, 0.3
        fm = FailureModel(loss_probability=delta)
        oracle = LossOracle(delta, key=12345)
        draw = np.random.default_rng(0)
        senders = draw.integers(0, n, size=count)
        targets = draw.integers(0, n, size=count)

        batch_metrics = MetricsCollector(n=n)
        batch = deliver_batch(
            batch_metrics, oracle, "data", targets,
            senders=senders, round_index=3, alive=np.ones(n, dtype=bool),
        )
        assert batch.any() and not batch.all()  # delta=0.3 over 40 messages

        engine_metrics = MetricsCollector(n=n)
        network = Network(
            n, failure_model=fm, rng=np.random.default_rng(123),
            alive=np.ones(n, dtype=bool), loss_oracle=oracle,
        )
        messages = [
            Message(sender=int(s), recipient=int(t), kind="data").stamped(3)
            for s, t in zip(senders, targets)
        ]
        arrived = network.deliver(list(reversed(messages)), engine_metrics)

        arrived_ids = {id(m) for m in arrived}
        delivered_engine = np.array([id(m) in arrived_ids for m in messages])
        assert np.array_equal(batch, delivered_engine)
        assert batch_metrics.total_messages == engine_metrics.total_messages == count
        assert batch_metrics.total_messages_lost == engine_metrics.total_messages_lost

    def test_fate_depends_on_identity_not_position(self):
        oracle = LossOracle(0.4, key=99)
        targets = np.arange(30)
        lost_a = oracle.sample(5, "data", 7, targets)
        lost_b = oracle.sample(5, "data", 7, targets[::-1])[::-1]
        assert np.array_equal(lost_a, lost_b)
        # different round / kind / sender / nonce -> independent fates
        assert not np.array_equal(lost_a, oracle.sample(6, "data", 7, targets))
        assert not np.array_equal(lost_a, oracle.sample(5, "push", 7, targets))
        assert not np.array_equal(lost_a, oracle.sample(5, "data", 8, targets))
        assert not np.array_equal(
            lost_a, oracle.sample(5, "data", 7, targets, nonces=np.ones(30, dtype=np.int64))
        )

    def test_reliable_oracle_draws_nothing(self):
        fm = FailureModel()
        rng = np.random.default_rng(1)
        before = rng.bit_generator.state
        oracle = LossOracle.for_run(fm, rng)
        assert rng.bit_generator.state == before  # no key draw when delta == 0
        assert oracle.reliable
        assert not oracle.sample(0, "data", 0, np.arange(10)).any()

    def test_dead_recipients_charged_as_lost(self):
        oracle = LossOracle(0.0)
        alive = np.array([True, False, True])
        metrics = MetricsCollector(n=3)
        delivered = deliver_batch(
            metrics, oracle, "data", np.array([0, 1, 2]),
            senders=np.array([2, 0, 1]), round_index=0, alive=alive,
        )
        assert delivered.tolist() == [True, False, True]
        assert metrics.total_messages == 3
        assert metrics.total_messages_lost == 1

    def test_zero_size_batch_consumes_no_rng(self):
        """The empty-frontier edge case: zero messages, zero draws, zero charge."""
        fm = FailureModel(loss_probability=0.5)
        rng = np.random.default_rng(2)
        state = rng.bit_generator.state
        assert fm.sample_losses(0, rng).shape == (0,)
        assert rng.bit_generator.state == state
        metrics = MetricsCollector(n=4)
        delivered = deliver_batch(
            metrics, LossOracle(0.5, key=1), "data", np.zeros(0, dtype=np.int64),
            senders=np.zeros(0, dtype=np.int64), round_index=0,
        )
        assert delivered.shape == (0,)
        assert metrics.total_messages == 0

    def test_occurrence_index(self):
        assert occurrence_index(np.array([5, 3, 5, 5, 3])).tolist() == [0, 0, 1, 2, 1]
        assert occurrence_index(np.zeros(0, dtype=np.int64)).tolist() == []


# --------------------------------------------------------------------------- #
# per-phase equivalence
# --------------------------------------------------------------------------- #
def make_forest_inputs(fm: FailureModel):
    drr = run_drr(256, rng=11, failure_model=fm)
    values = np.random.default_rng(5).normal(10.0, 5.0, size=256)
    root_of = broadcast_root_addresses(
        drr,
        np.array([r for r in drr.forest.roots], dtype=np.int64),
        np.random.default_rng(2),
        DRRGossipConfig(failure_model=fm),
        MetricsCollector(n=256),
    )
    return drr, values, root_of


@pytest.fixture(scope="module", params=FAILURE_MODELS, ids=FM_IDS)
def forest_inputs(request):
    return (request.param, *make_forest_inputs(request.param))


class TestPhaseEquivalence:
    @pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_drr_identical(self, seed, fm):
        fast = run_drr(256, rng=seed, failure_model=fm, backend="vectorized")
        engine = run_drr(256, rng=seed, failure_model=fm, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.forest.alive, engine.forest.alive)
        assert np.array_equal(fast.probes, engine.probes)
        assert np.array_equal(fast.connect_delivered, engine.connect_delivered)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("op", ["max", "min", "sum"])
    def test_convergecast_identical(self, forest_inputs, op):
        fm, drr, values, _ = forest_inputs
        fast = run_convergecast(drr, values, op=op, failure_model=fm, rng=1, backend="vectorized")
        engine = run_convergecast(drr, values, op=op, failure_model=fm, rng=1, backend="engine")
        assert set(fast.local_value) == set(engine.local_value)
        for root in fast.local_value:
            assert fast.local_value[root] == pytest.approx(engine.local_value[root], rel=1e-12)
        assert fast.local_weight == engine.local_weight
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_broadcast_identical(self, forest_inputs):
        fm, drr, _, _ = forest_inputs
        alive = drr.forest.alive
        payload = {int(r): float(r) * 3.0 for r in drr.forest.roots if alive[r]}
        fast = run_broadcast(drr, payload, failure_model=fm, rng=4, backend="vectorized")
        engine = run_broadcast(drr, payload, failure_model=fm, rng=4, backend="engine")
        assert np.array_equal(fast.received, engine.received)
        assert np.allclose(fast.payload, engine.payload, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_gossip_max_identical(self, forest_inputs):
        fm, drr, values, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        cov = run_convergecast(drr, values, op="max", failure_model=fm, rng=1)
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_gossip_max(
                    roots, cov.value_vector(roots), root_of, 256,
                    failure_model=fm, rng=7, metrics=metrics, alive=alive, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert fast.estimates == engine.estimates
        assert fast.after_gossip_fraction == engine.after_gossip_fraction
        assert_metrics_identical(*collectors)

    def test_gossip_ave_identical(self, forest_inputs):
        fm, drr, values, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        cov = run_convergecast(drr, values, op="sum", failure_model=fm, rng=1)
        largest = drr.forest.largest_root()
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_gossip_ave(
                    roots,
                    cov.value_vector(roots),
                    cov.weight_vector(roots),
                    root_of, 256, failure_model=fm, rng=9, metrics=metrics,
                    alive=alive, trace_root=largest, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert set(fast.estimates) == set(engine.estimates)
        for root in fast.estimates:
            assert fast.estimates[root] == pytest.approx(
                engine.estimates[root], rel=1e-12, nan_ok=True
            )
        assert len(fast.history) == len(engine.history)
        assert np.allclose(fast.history, engine.history, rtol=1e-9, equal_nan=True)
        assert_metrics_identical(*collectors)

    def test_data_spread_identical(self, forest_inputs):
        fm, drr, _, root_of = forest_inputs
        alive = drr.forest.alive
        roots = np.array([r for r in drr.forest.roots if alive[r]], dtype=np.int64)
        spreader = int(drr.forest.largest_root())
        results, collectors = [], []
        for backend in available_backends():
            metrics = MetricsCollector(n=256)
            results.append(
                run_data_spread(
                    roots, spreader, 42.5, root_of, 256,
                    failure_model=fm, rng=13, metrics=metrics, alive=alive, backend=backend,
                )
            )
            collectors.append(metrics)
        fast, engine = results
        assert fast.estimates == engine.estimates
        assert_metrics_identical(*collectors)


# --------------------------------------------------------------------------- #
# the topology kernel: Local-DRR and Chord lookups
# --------------------------------------------------------------------------- #
class TestTopologyKernelEquivalence:
    @pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
    @pytest.mark.parametrize("family", ["grid", "regular4"])
    def test_local_drr_identical(self, family, fm):
        topo = make_graph(family, 144, np.random.default_rng(1))
        fast = run_local_drr(topo, rng=7, failure_model=fm, backend="vectorized")
        engine = run_local_drr(topo, rng=7, failure_model=fm, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)
        assert np.array_equal(fast.forest.alive, engine.forest.alive)
        assert np.array_equal(fast.connect_delivered, engine.connect_delivered)
        assert fast.rounds == engine.rounds == 2
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_local_drr_tie_breaking_identical(self):
        """Integer ranks force ties; both backends pick the same parent."""
        topo = grid_graph(64)
        ranks = np.random.default_rng(3).integers(0, 4, size=64).astype(float)
        fast = run_local_drr(topo, rng=5, ranks=ranks, backend="vectorized")
        engine = run_local_drr(topo, rng=5, ranks=ranks, backend="engine")
        assert np.array_equal(fast.forest.parent, engine.forest.parent)

    @pytest.mark.parametrize("delta", [0.0, 0.25], ids=["reliable", "lossy"])
    def test_chord_lookups_identical(self, delta):
        fm = FailureModel(loss_probability=delta)
        rng = np.random.default_rng(3)
        chord = ChordNetwork(128, rng)
        sources = rng.integers(0, 128, size=300)
        targets = rng.integers(0, chord.ring_size, size=300)
        fast = run_chord_lookups(
            chord, sources, targets, failure_model=fm, rng=11, backend="vectorized"
        )
        engine = run_chord_lookups(
            chord, sources, targets, failure_model=fm, rng=11, backend="engine"
        )
        assert np.array_equal(fast.owners, engine.owners)
        assert np.array_equal(fast.hops, engine.hops)
        assert np.array_equal(fast.delivered, engine.delivered)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)
        if delta == 0.0:
            assert fast.delivered.all()
        else:
            assert 0 < fast.delivered.sum() < 300

    def test_chord_batch_matches_scalar_lookup(self):
        """On a reliable network the batch replays greedy routing exactly."""
        rng = np.random.default_rng(9)
        chord = ChordNetwork(64, rng)
        sources = rng.integers(0, 64, size=50)
        targets = rng.integers(0, chord.ring_size, size=50)
        batch = run_chord_lookups(chord, sources, targets, rng=1)
        for i in range(50):
            reference = chord.lookup(int(sources[i]), int(targets[i]))
            assert batch.owners[i] == reference.owner
            assert batch.hops[i] == reference.hops
        assert batch.rounds == int(batch.hops.max())
        assert batch.messages == int(batch.hops.sum())


# --------------------------------------------------------------------------- #
# full DRR-gossip pipelines
# --------------------------------------------------------------------------- #
class TestPipelineEquivalence:
    #: MAX / MIN / COUNT fold order-independently -> bitwise equality;
    #: AVERAGE / SUM / RANK accumulate floats -> float-rounding equality.
    EXACT = {Aggregate.MAX, Aggregate.MIN, Aggregate.COUNT}

    @pytest.mark.parametrize(
        "aggregate",
        [Aggregate.MAX, Aggregate.MIN, Aggregate.AVERAGE, Aggregate.SUM, Aggregate.COUNT, Aggregate.RANK],
    )
    def test_every_aggregate_identical_across_backends(self, aggregate, small_values):
        runs = {
            backend: drr_gossip(
                small_values,
                aggregate,
                rng=19,
                config=DRRGossipConfig(backend=backend),
                query=float(np.median(small_values)),
            )
            for backend in available_backends()
        }
        fast, engine = runs["vectorized"], runs["engine"]
        assert fast.rounds == engine.rounds
        assert fast.messages == engine.messages
        assert fast.rounds_by_phase() == engine.rounds_by_phase()
        assert fast.messages_by_phase() == engine.messages_by_phase()
        assert np.array_equal(fast.learned, engine.learned)
        assert fast.exact == engine.exact
        if aggregate in self.EXACT:
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        else:
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-9, equal_nan=True)
        assert_metrics_identical(fast.metrics, engine.metrics)

    @pytest.mark.parametrize("fm", FAILURE_MODELS[1:], ids=FM_IDS[1:])
    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.AVERAGE])
    def test_pipeline_identical_under_failures(self, aggregate, fm, small_values):
        runs = [
            drr_gossip(
                small_values, aggregate, rng=23,
                config=DRRGossipConfig(failure_model=fm, backend=backend),
            )
            for backend in available_backends()
        ]
        fast, engine = runs
        if aggregate in self.EXACT:
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        else:
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-9, equal_nan=True)
        assert np.array_equal(fast.learned, engine.learned)
        assert fast.rounds == engine.rounds
        assert fast.messages == engine.messages
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_pipeline_identical_under_crashes(self, small_values):
        fm = FailureModel(crash_fraction=0.15)
        runs = [
            drr_gossip(
                small_values, Aggregate.MAX, rng=23,
                config=DRRGossipConfig(failure_model=fm, backend=backend),
            )
            for backend in available_backends()
        ]
        fast, engine = runs
        assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
        assert fast.messages == engine.messages
        assert_metrics_identical(fast.metrics, engine.metrics)


# --------------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("fm", FAILURE_MODELS, ids=FM_IDS)
class TestBaselineEquivalence:
    def test_push_sum_identical(self, fm):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        fast = push_sum(values, rng=4, failure_model=fm, backend="vectorized")
        engine = push_sum(values, rng=4, failure_model=fm, backend="engine")
        assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_push_max_identical_including_oracle_stop(self, fm):
        values = np.random.default_rng(3).uniform(0, 10, size=300)
        for stop in (False, True):
            fast = push_max(values, rng=6, failure_model=fm, stop_when_converged=stop, backend="vectorized")
            engine = push_max(values, rng=6, failure_model=fm, stop_when_converged=stop, backend="engine")
            assert np.array_equal(fast.estimates, engine.estimates, equal_nan=True)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_rumor_protocols_identical(self, fm):
        if fm.crash_fraction:
            pytest.skip("rumor protocols ignore initial crashes by design")
        for fn in (push_rumor, push_pull_rumor):
            fast = fn(512, rng=7, failure_model=fm, backend="vectorized")
            engine = fn(512, rng=7, failure_model=fm, backend="engine")
            assert np.array_equal(fast.informed, engine.informed)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)

    def test_flooding_identical(self, fm):
        if fm.crash_fraction:
            pytest.skip("flooding ignores initial crashes by design")
        topology = grid_graph(144)
        values = np.random.default_rng(9).uniform(0, 100, size=144)
        fast = flood_max(topology, values, rng=10, failure_model=fm, backend="vectorized")
        engine = flood_max(topology, values, rng=10, failure_model=fm, backend="engine")
        assert np.array_equal(fast.estimates, engine.estimates)
        assert fast.rounds == engine.rounds
        assert_metrics_identical(fast.metrics, engine.metrics)

    def test_efficient_gossip_identical(self, fm):
        for aggregate in (Aggregate.AVERAGE, Aggregate.MAX):
            values = np.random.default_rng(3).uniform(0, 10, size=400)
            fast = efficient_gossip(values, aggregate, rng=12, failure_model=fm, backend="vectorized")
            engine = efficient_gossip(values, aggregate, rng=12, failure_model=fm, backend="engine")
            assert fast.group_count == engine.group_count
            assert fast.max_group_size == engine.max_group_size
            assert np.allclose(fast.estimates, engine.estimates, rtol=1e-12, equal_nan=True)
            assert fast.rounds == engine.rounds
            assert_metrics_identical(fast.metrics, engine.metrics)


# --------------------------------------------------------------------------- #
# lossy networks: determinism and cross-delta common random numbers
# --------------------------------------------------------------------------- #
class TestLossyBehaviour:
    def test_each_backend_deterministic_under_loss(self):
        fm = FailureModel(loss_probability=0.1)
        for backend in available_backends():
            a = run_drr(128, rng=5, failure_model=fm, backend=backend)
            b = run_drr(128, rng=5, failure_model=fm, backend=backend)
            assert np.array_equal(a.forest.parent, b.forest.parent)
            assert a.metrics.total_messages == b.metrics.total_messages

    def test_loss_draws_nothing_from_the_shared_stream(self):
        """Identity-keyed fates never consume the protocol's RNG stream:
        a lossy run draws the same ranks as the reliable run with the same
        seed (common random numbers across the delta axis of a sweep).
        Later draws may still diverge — loss changes *who keeps probing* —
        but never because a loss variate shifted the stream."""
        for fm in (FailureModel(loss_probability=0.05), FailureModel(loss_probability=0.3)):
            reliable = run_drr(128, rng=5)
            lossy = run_drr(128, rng=5, failure_model=fm)
            assert np.array_equal(reliable.forest.rank, lossy.forest.rank)
            rel_local = run_local_drr(grid_graph(64), rng=5)
            lossy_local = run_local_drr(grid_graph(64), rng=5, failure_model=fm)
            assert np.array_equal(rel_local.forest.rank, lossy_local.forest.rank)
