"""Unit tests for repro.simulator.message."""

from __future__ import annotations

import pytest

from repro.simulator.message import Message, MessageKind, Send


class TestMessageKind:
    def test_kinds_are_strings(self):
        assert MessageKind.PROBE.value == "probe"
        assert str(MessageKind.GOSSIP) == "gossip"

    def test_all_kinds_distinct(self):
        values = [k.value for k in MessageKind]
        assert len(values) == len(set(values))


class TestMessage:
    def test_payload_words_defaults_to_payload_size(self):
        msg = Message(sender=1, recipient=2, kind="probe", payload={"a": 1, "b": 2})
        assert msg.payload_words == 2

    def test_payload_words_defaults_to_one_for_empty_payload(self):
        msg = Message(sender=1, recipient=2, kind="probe")
        assert msg.payload_words == 1

    def test_explicit_payload_words_respected(self):
        msg = Message(sender=1, recipient=2, kind="probe", payload={"a": 1}, payload_words=5)
        assert msg.payload_words == 5

    def test_enum_kind_normalised_to_string(self):
        msg = Message(sender=0, recipient=1, kind=MessageKind.RANK)
        assert msg.kind == "rank"

    def test_stamped_copies_and_sets_round(self):
        msg = Message(sender=0, recipient=1, kind="probe", payload={"x": 3})
        stamped = msg.stamped(7)
        assert stamped.round_sent == 7
        assert msg.round_sent == -1
        assert stamped.payload == msg.payload

    def test_get_reads_payload_with_default(self):
        msg = Message(sender=0, recipient=1, kind="probe", payload={"x": 3})
        assert msg.get("x") == 3
        assert msg.get("missing", 42) == 42

    def test_message_is_frozen(self):
        msg = Message(sender=0, recipient=1, kind="probe")
        with pytest.raises(AttributeError):
            msg.sender = 9  # type: ignore[misc]


class TestSend:
    def test_to_message_sets_sender(self):
        send = Send(recipient=3, kind=MessageKind.CONNECT, payload={"child": 5})
        msg = send.to_message(sender=5)
        assert msg.sender == 5
        assert msg.recipient == 3
        assert msg.kind == "connect"
        assert msg.get("child") == 5

    def test_send_preserves_payload_words(self):
        send = Send(recipient=3, kind="data", payload={"v": 1.0}, payload_words=2)
        assert send.to_message(0).payload_words == 2
