"""Tests for the orchestration subsystem: registry, store, runner, config."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import EXPERIMENT_DRIVERS, run_ablation
from repro.orchestration import (
    DEFAULT_REGISTRY,
    ExperimentPlan,
    ExperimentRegistry,
    ExperimentSpec,
    ResultStore,
    SweepDefinition,
    SweepRunner,
    canonical_params,
    expand_cells,
    get_experiment,
    load_sweep,
    param_hash,
)
from repro.simulator.rng import derive_seed


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_drivers_all_registered(self):
        for name in EXPERIMENT_DRIVERS:
            spec = get_experiment(name)
            assert spec.driver is EXPERIMENT_DRIVERS[name]
            assert spec.description

    def test_unknown_experiment_lists_known_names(self):
        with pytest.raises(KeyError, match="table1"):
            get_experiment("nope")

    def test_spec_from_callable_excludes_seed(self):
        spec = get_experiment("table1")
        assert "seed" not in spec.param_names
        assert "ns" in spec.param_names

    def test_driver_without_defaults_rejected(self):
        registry = ExperimentRegistry()

        def bad_driver(n):  # pragma: no cover - never called
            return n

        with pytest.raises(TypeError, match="without default"):
            registry.register("bad", bad_driver)

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        registry.register("x", run_ablation)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda seed=1: None)
        # re-registering the same driver is idempotent, not an error
        registry.register("x", run_ablation)

    def test_grid_expansion_scalar_vs_sequence(self):
        spec = get_experiment("table1")
        cells = spec.expand_grid({"ns": [64, 128], "repetitions": [1, 2]})
        # flat list for the sequence param `ns` = ONE candidate
        assert cells == [
            {"ns": (64, 128), "repetitions": 1},
            {"ns": (64, 128), "repetitions": 2},
        ]
        # list of lists = several candidates
        cells = spec.expand_grid({"ns": [[64], [64, 128]]})
        assert cells == [{"ns": (64,)}, {"ns": (64, 128)}]

    def test_grid_rejects_unknown_parameter(self):
        with pytest.raises(KeyError, match="no parameter"):
            get_experiment("table1").expand_grid({"bogus": [1]})

    def test_empty_grid_yields_single_default_cell(self):
        assert get_experiment("forest").expand_grid({}) == [{}]

    def test_scalar_float_coercion(self):
        spec = get_experiment("forest")
        cells = spec.expand_grid({"delta": [0]})
        assert cells == [{"delta": 0.0}]
        assert isinstance(cells[0]["delta"], float)

    def test_cli_experiments_mapping_backed_by_registry(self):
        from repro.harness.cli import EXPERIMENTS

        assert set(EXPERIMENTS) == set(EXPERIMENT_DRIVERS)
        assert len(DEFAULT_REGISTRY) >= len(EXPERIMENT_DRIVERS)


# --------------------------------------------------------------------------- #
# store
# --------------------------------------------------------------------------- #
class TestParamHash:
    def test_stable_across_dict_orderings(self):
        a = {"ns": (64, 128), "delta": 0.1, "workload": "uniform"}
        b = {"workload": "uniform", "delta": 0.1, "ns": (64, 128)}
        assert param_hash(a) == param_hash(b)

    def test_tuple_and_list_hash_identically(self):
        assert param_hash({"ns": (64, 128)}) == param_hash({"ns": [64, 128]})

    def test_distinct_params_hash_differently(self):
        assert param_hash({"ns": [64]}) != param_hash({"ns": [128]})
        assert param_hash({}) != param_hash({"ns": [64]})

    def test_canonical_params_normalises_numpy(self):
        import numpy as np

        canon = canonical_params({"n": np.int64(5), "d": np.float64(0.5)})
        assert canon == {"n": 5, "d": 0.5}
        assert json.dumps(canon)  # JSON-serialisable without a default hook


class TestResultStore:
    def test_record_and_fetch_round_trip(self, tmp_path):
        result = run_ablation(n=64, repetitions=1, seed=3)
        with ResultStore(tmp_path / "r.sqlite") as store:
            store.record_result("ablation", {"n": 64, "repetitions": 1}, 3, result, 0.5)
            run = store.get("ablation", {"repetitions": 1, "n": 64}, 3)
            assert run is not None and run.ok
            rebuilt = run.to_result()
            assert rebuilt.rows == result.rows
            assert rebuilt.headers == result.headers
            assert rebuilt.seed == 3

    def test_is_completed_only_for_success(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            store.record_failure("ablation", {"n": 64}, 3, "boom")
            assert not store.is_completed("ablation", {"n": 64}, 3)
            result = run_ablation(n=64, repetitions=1, seed=3)
            store.record_result("ablation", {"n": 64}, 3, result)
            assert store.is_completed("ablation", {"n": 64}, 3)
            assert len(store) == 1  # upsert, not duplicate

    def test_failure_then_success_clears_error(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            store.record_failure("ablation", {"n": 64}, 3, "traceback here")
            run = store.get("ablation", {"n": 64}, 3)
            assert run.status == "failed" and "traceback" in run.error
            store.record_result("ablation", {"n": 64}, 3, run_ablation(n=64, repetitions=1, seed=3))
            run = store.get("ablation", {"n": 64}, 3)
            assert run.ok and run.error is None and run.rows

    def test_export_json_and_summary(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            store.record_result("ablation", {"n": 64}, 3, run_ablation(n=64, repetitions=1, seed=3), 0.1)
            store.record_failure("ablation", {"n": 128}, 4, "boom", 0.2)
            path = store.export_json(tmp_path / "dump.json")
            payload = json.loads(path.read_text())
            assert len(payload) == 2
            assert {p["status"] for p in payload} == {"ok", "failed"}
            (summary,) = store.summary()
            assert summary["completed"] == 1 and summary["failed"] == 1

    def test_persists_across_connections(self, tmp_path):
        path = tmp_path / "r.sqlite"
        with ResultStore(path) as store:
            store.record_result("ablation", {"n": 64}, 3, run_ablation(n=64, repetitions=1, seed=3))
        with ResultStore(path) as store:
            assert store.is_completed("ablation", {"n": 64}, 3)


# --------------------------------------------------------------------------- #
# sweep config + cell expansion
# --------------------------------------------------------------------------- #
QUICK_TOML = """
[sweep]
name = "t"
seed = 9
repetitions = 2

[[experiment]]
name = "table1"
[experiment.grid]
ns = [64, 128]

[[experiment]]
name = "ablation"
repetitions = 1
[experiment.grid]
n = [64, 128]
"""


def _tiny_definition(reps: int = 2, seed: int = 5) -> SweepDefinition:
    return SweepDefinition(
        name="tiny",
        seed=seed,
        repetitions=reps,
        plans=(
            ExperimentPlan(experiment="table1", grid={"ns": [64, 128], "repetitions": 1}),
            ExperimentPlan(experiment="ablation", grid={"n": 64, "repetitions": 1}),
        ),
    )


class TestSweepConfig:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(QUICK_TOML)
        definition = load_sweep(path)
        assert definition.name == "t"
        assert definition.seed == 9
        cells = expand_cells(definition)
        # table1: 1 grid point x 2 reps; ablation: 2 grid points x 1 rep
        assert len(cells) == 4
        assert sum(c.experiment == "ablation" for c in cells) == 2

    def test_load_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "sweep": {"name": "j", "seed": 2},
            "experiment": [{"name": "ablation", "grid": {"n": [64]}}],
        }))
        definition = load_sweep(path)
        assert expand_cells(definition)[0].experiment == "ablation"

    def test_unknown_block_key_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SweepDefinition.from_dict({"experiment": [{"name": "ablation", "grdi": {}}]})

    def test_unknown_sweep_meta_key_rejected(self):
        with pytest.raises(ValueError, match=r"\[sweep\] has unknown keys"):
            SweepDefinition.from_dict({
                "sweep": {"repetitons": 5},
                "experiment": [{"name": "ablation"}],
            })
        with pytest.raises(ValueError, match="top-level"):
            SweepDefinition.from_dict({
                "experimnet": [],
                "experiment": [{"name": "ablation"}],
            })

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="no experiments"):
            SweepDefinition(name="empty", plans=())

    def test_cell_seeds_deterministic_and_distinct(self):
        cells_a = expand_cells(_tiny_definition())
        cells_b = expand_cells(_tiny_definition())
        assert [c.seed for c in cells_a] == [c.seed for c in cells_b]
        assert len({c.key for c in cells_a}) == len(cells_a)
        # the seed derivation is the documented RngStream/derive_seed chain
        first = cells_a[0]
        assert first.seed == derive_seed(5, first.experiment, first.param_hash, 0)

    def test_adding_experiment_keeps_existing_seeds(self):
        base = _tiny_definition()
        extended = SweepDefinition(
            name=base.name,
            seed=base.seed,
            repetitions=base.repetitions,
            plans=base.plans + (ExperimentPlan(experiment="forest", grid={"ns": [64], "repetitions": 1}),),
        )
        base_seeds = {c.key for c in expand_cells(base)}
        extended_seeds = {c.key for c in expand_cells(extended)}
        assert base_seeds <= extended_seeds


# --------------------------------------------------------------------------- #
# sweep runner
# --------------------------------------------------------------------------- #
class TestSweepRunner:
    def test_skip_completed_resume_executes_zero_cells(self, tmp_path):
        definition = _tiny_definition()
        with ResultStore(tmp_path / "r.sqlite") as store:
            first = SweepRunner(store, jobs=1).run(definition)
            assert first.executed == first.total > 0
            assert first.failed == 0
            second = SweepRunner(store, jobs=1).run(definition)
            assert second.executed == 0
            assert second.failed == 0
            assert second.skipped == first.total
            assert len(store) == first.total

    def test_no_skip_reexecutes(self, tmp_path):
        definition = _tiny_definition(reps=1)
        with ResultStore(tmp_path / "r.sqlite") as store:
            SweepRunner(store, jobs=1).run(definition)
            again = SweepRunner(store, jobs=1, skip_completed=False).run(definition)
            assert again.executed == again.total
            assert len(store) == again.total  # upserts, no duplicate rows

    def test_crashed_cell_records_failure_row_and_sweep_survives(self, tmp_path):
        # workload="nope" makes run_table1 raise inside the cell
        definition = SweepDefinition(
            name="crashy",
            seed=3,
            repetitions=1,
            plans=(
                ExperimentPlan(
                    experiment="table1",
                    grid={"ns": [64], "repetitions": 1, "workload": ["uniform", "nope"]},
                ),
            ),
        )
        with ResultStore(tmp_path / "r.sqlite") as store:
            report = SweepRunner(store, jobs=2).run(definition)
            assert report.executed == 1
            assert report.failed == 1
            (failure,) = store.query(status="failed")
            assert failure.params["workload"] == "nope"
            assert "ValueError" in failure.error
            # the crashed cell is retried (not skipped) on the next invocation
            retry = SweepRunner(store, jobs=1).run(definition)
            assert retry.skipped == 1 and retry.failed == 1

    def test_parallel_and_serial_sweeps_bit_identical(self, tmp_path):
        definition = _tiny_definition()
        with ResultStore(tmp_path / "serial.sqlite") as serial_store:
            SweepRunner(serial_store, jobs=1).run(definition)
            serial = {(run.experiment, run.param_hash, run.seed): run for run in serial_store.query()}
        with ResultStore(tmp_path / "parallel.sqlite") as parallel_store:
            report = SweepRunner(parallel_store, jobs=4).run(definition)
            assert report.failed == 0
            parallel = {(run.experiment, run.param_hash, run.seed): run for run in parallel_store.query()}
        assert serial.keys() == parallel.keys()
        for key, run in serial.items():
            other = parallel[key]
            assert run.rows == other.rows, f"rows differ for {key}"
            assert run.headers == other.headers
            assert run.notes == other.notes
            assert run.params == other.params

    def test_progress_callback_sees_every_cell(self, tmp_path):
        seen = []
        definition = _tiny_definition(reps=1)
        with ResultStore(tmp_path / "r.sqlite") as store:
            SweepRunner(store, jobs=1, progress=lambda o, i, t: seen.append((o.status, i, t))).run(definition)
        assert len(seen) == 2
        assert sorted(i for _, i, _ in seen) == [1, 2]
        assert all(t == 2 for _, _, t in seen)

    def test_invalid_jobs_rejected(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ValueError):
                SweepRunner(store, jobs=0)


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestSweepCLI:
    def test_sweep_and_results_commands(self, tmp_path, capsys):
        from repro.harness.cli import main

        store = str(tmp_path / "results.sqlite")
        argv = [
            "sweep", "--experiments", "ablation", "--ns", "64",
            "--reps", "2", "--seed", "11", "--jobs", "1", "--store", store,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out
        # immediate re-run skips everything
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 skipped" in out
        # results summary + markdown export
        md = tmp_path / "report.md"
        assert main(["results", "--store", store, "--markdown", str(md)]) == 0
        out = capsys.readouterr().out
        assert "ablation" in out
        report_text = md.read_text()
        assert "## ablation" in report_text
        assert "probe budget" in report_text

    def test_sweep_config_file(self, tmp_path, capsys):
        from repro.harness.cli import main

        config = tmp_path / "s.toml"
        config.write_text(QUICK_TOML.replace("ns = [64, 128]", "ns = [64]").replace("n = [64, 128]", "n = [64]"))
        store = str(tmp_path / "results.sqlite")
        assert main(["sweep", "--config", str(config), "--store", store, "--jobs", "2", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep 't'" in out
        # --reps overrides per-experiment repetitions from the file too: the
        # ablation block says repetitions=1 and table1 inherits the sweep
        # default of 2, but --reps 1 forces one seed per grid point each.
        assert "2 cells" in out

    def test_sweep_cli_rejects_bad_config_cleanly(self, tmp_path, capsys):
        from repro.harness.cli import main

        config = tmp_path / "bad.toml"
        config.write_text('[sweep]\nname = "x"\n[[experiment]]\nname = "tabel1"\n')
        code = main(["sweep", "--config", str(config), "--store", str(tmp_path / "s.sqlite")])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown experiment 'tabel1'" in captured.err
        assert not (tmp_path / "s.sqlite").exists()

    def test_sweep_cli_rejects_conflicting_and_invalid_flags(self, tmp_path, capsys):
        from repro.harness.cli import main

        config = tmp_path / "s.toml"
        config.write_text('[sweep]\nname = "x"\n[[experiment]]\nname = "ablation"\n')
        store = str(tmp_path / "s.sqlite")
        assert main(["sweep", "--config", str(config), "--ns", "64", "--store", store]) == 2
        assert "--config cannot be combined" in capsys.readouterr().err
        assert main(["sweep", "--experiments", "ablation", "--jobs", "0", "--store", store]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err
        assert not (tmp_path / "s.sqlite").exists()  # no store created on bad flags

    def test_results_without_store_errors(self, tmp_path, capsys):
        from repro.harness.cli import main

        assert main(["results", "--store", str(tmp_path / "missing.sqlite")]) == 1

    def test_python_dash_m_entry_point(self):
        import subprocess
        import sys as _sys

        proc = subprocess.run(
            [_sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[1]),
        )
        assert proc.returncode == 0
        assert "sweep" in proc.stdout
