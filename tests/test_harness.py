"""Tests for the harness: workloads, tables, experiments, reports, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.harness import (
    ExperimentResult,
    format_float,
    format_markdown_table,
    format_table,
    make_values,
    run_ablation,
    run_forest_statistics,
    run_lower_bound_experiment,
    run_phase_breakdown,
    run_table1,
    workload_names,
    write_csv,
    write_json,
    write_markdown_report,
)
from repro.harness import load_json
from repro.harness.cli import EXPERIMENTS, build_parser, main


class TestWorkloads:
    def test_all_workloads_produce_right_shape(self, rng):
        for name in workload_names():
            values = make_values(name, 100, rng)
            assert values.shape == (100,)
            assert np.isfinite(values).all()

    def test_zero_mean_workload_has_zero_mean(self, rng):
        values = make_values("zero-mean", 101, rng)
        assert abs(values.mean()) < 1e-9

    def test_single_spike_has_unique_max(self, rng):
        values = make_values("single-spike", 64, rng)
        assert np.sum(values == values.max()) == 1

    def test_constant_workload(self, rng):
        assert np.unique(make_values("constant", 10, rng)).size == 1

    def test_unknown_workload_rejected(self, rng):
        with pytest.raises(ValueError):
            make_values("nope", 10, rng)
        with pytest.raises(ValueError):
            make_values("uniform", 0, rng)


class TestTables:
    def test_format_float(self):
        assert format_float(3.0) == "3"
        assert format_float(3.14159) == "3.142"
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"
        assert format_float("text") == "text"

    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [10, 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])

    def test_markdown_table_shape(self):
        md = format_markdown_table(["x", "y"], [[1, 2]])
        assert md.splitlines()[0] == "| x | y |"
        assert md.splitlines()[1] == "|---|---|"


class TestExperimentDrivers:
    def test_table1_small_run(self):
        result = run_table1(ns=(64, 128), repetitions=1, seed=3)
        assert isinstance(result, ExperimentResult)
        algos = set(result.column("algorithm"))
        assert algos == {"drr-gossip", "uniform-gossip", "efficient-gossip"}
        assert len(result.rows) == 6
        assert result.notes  # shape fits recorded
        assert "drr-gossip" in result.table()

    def test_table1_uniform_gossip_uses_more_messages_at_scale(self):
        from repro.core import Aggregate

        result = run_table1(ns=(2048,), repetitions=1, seed=4, aggregate=Aggregate.MAX)
        by_algo = {row["algorithm"]: row for row in result.rows}
        assert by_algo["uniform-gossip"]["messages"] > by_algo["drr-gossip"]["messages"]

    def test_forest_statistics_ratios_bounded(self):
        result = run_forest_statistics(ns=(256, 512), repetitions=2, seed=5)
        for row in result.rows:
            assert 0.2 < row["trees_over_n_div_logn"] < 3.0
            assert row["max_tree_size_over_logn"] < 20
            assert row["rounds_over_logn"] <= 1.5

    def test_lower_bound_experiment_gap(self):
        result = run_lower_bound_experiment(ns=(64, 256), repetitions=1, seed=6)
        for row in result.rows:
            # the oblivious protocol pays more per node than rumor spreading
            assert row["oblivious_messages_per_node"] > 0.5 * row["rumor_messages_per_node"]
        assert len(result.notes) == 2

    def test_phase_breakdown_shares_sum_to_one(self):
        result = run_phase_breakdown(ns=(128,), repetitions=1, seed=7)
        row = result.rows[0]
        share = sum(v for k, v in row.items() if k.endswith("_share"))
        assert share == pytest.approx(1.0, abs=1e-6)

    def test_ablation_rows(self):
        result = run_ablation(n=256, repetitions=1, seed=8)
        variants = result.column("variant")
        assert any("probe budget" in v for v in variants)
        assert any("rank domain" in v for v in variants)
        by_variant = {row["variant"]: row for row in result.rows}
        single = by_variant["probe budget (single probe)"]
        paper = by_variant["probe budget (paper: log2(n)-1)"]
        # fewer probes => more trees and fewer messages
        assert single["trees"] > paper["trees"]
        assert single["messages_per_node"] < paper["messages_per_node"]

    def test_experiment_result_helpers(self):
        result = run_ablation(n=128, repetitions=1, seed=9)
        d = result.as_dict()
        assert d["experiment"] == "E12-ablation"
        assert result.markdown().startswith("|")
        assert len(result.column("trees")) == len(result.rows)


class TestReports:
    def test_json_csv_markdown_round_trip(self, tmp_path):
        result = run_ablation(n=128, repetitions=1, seed=10)
        jpath = write_json(result, tmp_path / "out.json")
        cpath = write_csv(result, tmp_path / "out.csv")
        mpath = write_markdown_report([result], tmp_path / "report.md")
        loaded = load_json(jpath)
        assert loaded["experiment"] == "E12-ablation"
        assert cpath.read_text().splitlines()[0].startswith("variant")
        assert "E12-ablation" in mpath.read_text()

    def test_json_is_valid(self, tmp_path):
        result = run_forest_statistics(ns=(128,), repetitions=1, seed=11)
        path = write_json(result, tmp_path / "forest.json")
        json.loads(path.read_text())


class TestCLI:
    def test_parser_lists_all_experiments(self):
        parser = build_parser()
        assert parser is not None
        assert set(EXPERIMENTS) >= {"table1", "forest", "chord", "lower-bound", "ablation"}

    def test_run_command(self, capsys):
        code = main(["run", "--n", "128", "--aggregate", "max", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max rel. error" in out
        assert "messages" in out

    def test_run_command_rank(self, capsys):
        code = main(["run", "--n", "64", "--aggregate", "rank", "--query", "50", "--seed", "3"])
        assert code == 0

    def test_experiment_command_with_json(self, tmp_path, capsys):
        code = main(["forest", "--ns", "64", "128", "--reps", "1", "--json", str(tmp_path / "f.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "f.json").exists()
        assert "trees_mean" in out

    def test_ablation_command(self, capsys):
        code = main(["ablation", "--ns", "128", "--reps", "1"])
        assert code == 0
        assert "probe budget" in capsys.readouterr().out


class TestPlotting:
    """Result-store-driven plots: data shaping is matplotlib-free."""

    ROWS = [
        {"algorithm": "drr-gossip", "n": 256, "rep": 0, "rounds": 30, "messages_per_node": 8.0},
        {"algorithm": "drr-gossip", "n": 256, "rep": 1, "rounds": 34, "messages_per_node": 10.0},
        {"algorithm": "drr-gossip", "n": 512, "rep": 0, "rounds": 40, "messages_per_node": 9.0},
        {"algorithm": "uniform-gossip", "n": 256, "rep": 0, "rounds": 28, "messages_per_node": 22.0},
        {"algorithm": "uniform-gossip", "n": 512, "rep": 0, "rounds": 31, "messages_per_node": 25.0},
    ]

    def test_collect_series_groups_sorts_and_averages(self):
        from repro.harness.plotting import collect_series

        series = collect_series(self.ROWS, "n", "rounds", group_by="algorithm")
        assert set(series) == {"drr-gossip", "uniform-gossip"}
        xs, ys = series["drr-gossip"]
        assert xs == [256.0, 512.0]
        assert ys == [32.0, 40.0]  # repetitions averaged

    def test_collect_series_skips_incomplete_rows(self):
        from repro.harness.plotting import collect_series

        rows = [{"n": 10, "y": 1.0}, {"n": 20}, {"y": 3.0}, {"n": 30, "y": "not-a-number"}]
        series = collect_series(rows, "n", "y")
        assert series == {"all": ([10.0], [1.0])}

    def test_plan_figures_one_per_metric(self):
        from repro.harness.plotting import plan_figures

        plans = plan_figures("E1-table1", self.ROWS)
        metrics = {plan["metric"] for plan in plans}
        assert metrics == {"rounds", "messages_per_node"}
        for plan in plans:
            assert set(plan["series"]) == {"drr-gossip", "uniform-gossip"}

    def test_plan_figures_without_n_uses_categorical_axis(self):
        from repro.harness.plotting import plan_figures

        rows = [{"variant": "a", "trees": 3.0}, {"variant": "b", "trees": 5.0}]
        plans = plan_figures("E12-ablation", rows)
        assert plans and plans[0]["xlabel"] == "variant"
        assert plans[0]["bars"] == (["a", "b"], [3.0, 5.0])

    def test_plot_cli_reports_missing_store(self, tmp_path, capsys):
        code = main(["plot", "--store", str(tmp_path / "missing.sqlite")])
        assert code == 1
        assert "no result store" in capsys.readouterr().err

    def test_plot_cli_renders_or_explains_missing_matplotlib(self, tmp_path, capsys):
        """End to end against a real store; tolerates matplotlib's absence
        (the satellite requirement: optional import, clear error)."""
        from repro.orchestration import ResultStore
        from repro.harness.experiments import run_forest_statistics

        store_path = tmp_path / "store.sqlite"
        with ResultStore(store_path) as store:
            result = run_forest_statistics(ns=(64, 128), repetitions=1, seed=5)
            store.record_result("forest", {"ns": [64, 128], "backend": "vectorized"}, 5, result)
        code = main(["plot", "--store", str(store_path), "--output", str(tmp_path / "figs")])
        captured = capsys.readouterr()
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            assert code == 1
            assert "matplotlib is required" in captured.err
            assert "pip install matplotlib" in captured.err
        else:
            assert code == 0
            written = list((tmp_path / "figs").iterdir())
            assert written and all(path.suffix == ".png" for path in written)
