"""Failure-injection tests: lossy links and initial crashes (Section 2 model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DRRGossipConfig, drr_gossip_average, drr_gossip_max
from repro.baselines import push_sum
from repro.simulator import FailureModel, paper_delta_range


class TestLossyLinks:
    @pytest.mark.parametrize("delta", [0.02, 0.05, 0.1])
    def test_max_pipeline_accuracy_under_loss(self, delta):
        values = np.random.default_rng(1).uniform(0, 100, size=1024)
        config = DRRGossipConfig(failure_model=FailureModel(loss_probability=delta))
        result = drr_gossip_max(values, rng=1, config=config)
        # Nodes that learned an answer overwhelmingly learned the right one;
        # lost broadcast messages only reduce coverage.
        learned = result.estimates[result.learned]
        assert np.mean(learned == result.exact) > 0.95
        # Coverage degrades with delta (lost broadcast edges cut off whole
        # subtrees) but the large majority of nodes still learns the answer.
        assert result.coverage > 0.55

    def test_paper_delta_range_is_tolerated(self):
        n = 1024
        low, high = paper_delta_range(n)
        values = np.random.default_rng(3).uniform(0, 100, size=n)
        config = DRRGossipConfig(failure_model=FailureModel(loss_probability=(low + high) / 2))
        result = drr_gossip_max(values, rng=4, config=config)
        assert result.coverage > 0.6
        learned = result.estimates[result.learned]
        assert np.mean(learned == result.exact) > 0.9

    def test_average_pipeline_bias_bounded_under_loss(self):
        values = np.random.default_rng(5).uniform(10, 20, size=1024)
        config = DRRGossipConfig(failure_model=FailureModel(loss_probability=0.05))
        result = drr_gossip_average(values, rng=6, config=config)
        learned = result.estimates[result.learned]
        truth = values.mean()
        # Loss removes mass, so estimates can drift, but they stay within a
        # few percent at delta = 5%.
        assert np.all(np.abs(learned - truth) / truth < 0.1)

    def test_message_count_does_not_explode_under_loss(self):
        values = np.random.default_rng(7).uniform(0, 1, size=1024)
        reliable = drr_gossip_max(values, rng=8).messages
        lossy = drr_gossip_max(
            values, rng=8, config=DRRGossipConfig(failure_model=FailureModel(loss_probability=0.1))
        ).messages
        assert lossy < 1.5 * reliable


class TestInitialCrashes:
    def test_crashed_nodes_never_learn_and_never_send(self):
        values = np.random.default_rng(9).uniform(0, 100, size=512)
        config = DRRGossipConfig(failure_model=FailureModel(crash_fraction=0.2))
        result = drr_gossip_max(values, rng=10, config=config)
        alive = result.drr.forest.alive
        assert (~result.learned[~alive]).all()
        assert np.isnan(result.estimates[~alive]).all()

    def test_exact_value_computed_over_survivors_only(self):
        values = np.random.default_rng(11).uniform(0, 100, size=512)
        # place the global maximum on a node and crash enough nodes that it
        # sometimes dies; the protocol should then agree on the surviving max
        config = DRRGossipConfig(failure_model=FailureModel(crash_fraction=0.3))
        result = drr_gossip_max(values, rng=12, config=config)
        alive = result.drr.forest.alive
        assert result.exact == values[alive].max()
        learned = result.estimates[result.learned]
        assert np.mean(learned == result.exact) > 0.95

    def test_average_over_survivors(self):
        values = np.random.default_rng(13).uniform(10, 20, size=512)
        config = DRRGossipConfig(failure_model=FailureModel(crash_fraction=0.25))
        result = drr_gossip_average(values, rng=14, config=config)
        alive = result.drr.forest.alive
        truth = values[alive].mean()
        learned = result.estimates[result.learned]
        assert np.all(np.abs(learned - truth) / truth < 0.05)

    def test_combined_crash_and_loss(self):
        values = np.random.default_rng(15).uniform(0, 100, size=512)
        config = DRRGossipConfig(
            failure_model=FailureModel(loss_probability=0.05, crash_fraction=0.1)
        )
        result = drr_gossip_max(values, rng=1, config=config)
        assert result.coverage > 0.6
        learned = result.estimates[result.learned]
        assert np.mean(learned == result.exact) > 0.9


class TestBaselineFailures:
    def test_push_sum_tolerates_loss(self):
        values = np.random.default_rng(17).uniform(10, 20, size=1024)
        result = push_sum(values, rng=18, failure_model=FailureModel(loss_probability=0.05))
        finite = np.isfinite(result.estimates)
        assert np.mean(np.abs(result.estimates[finite] - result.exact) / result.exact < 0.1) > 0.95

    def test_push_sum_with_crashes_averages_survivors(self):
        values = np.random.default_rng(19).uniform(10, 20, size=1024)
        result = push_sum(values, rng=20, failure_model=FailureModel(crash_fraction=0.2))
        finite = np.isfinite(result.estimates)
        assert finite.sum() == 1024 - 204 or finite.sum() == 1024 - 205 or finite.sum() > 700
        assert abs(np.nanmean(result.estimates[finite]) - result.exact) / result.exact < 0.05
