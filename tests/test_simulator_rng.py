"""Unit tests for repro.simulator.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.rng import RngStream, derive_seed, make_rng, spawn


class TestMakeRng:
    def test_seed_reproducible(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_none_uses_default_seed(self):
        assert make_rng(None).integers(0, 10**9) == make_rng(None).integers(0, 10**9)


class TestSpawn:
    def test_spawn_count(self, rng):
        children = spawn(rng, 5)
        assert len(children) == 5

    def test_spawned_streams_differ(self, rng):
        a, b = spawn(rng, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            spawn(rng, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_result_in_int63(self):
        s = derive_seed(123456789, "x", 42)
        assert 0 <= s < 2**63 - 1


class TestRngStream:
    def test_same_label_same_generator(self):
        stream = RngStream(9)
        assert stream.get("x", 1) is stream.get("x", 1)

    def test_different_labels_independent(self):
        stream = RngStream(9)
        a = stream.get("x").integers(0, 2**31)
        b = stream.get("y").integers(0, 2**31)
        assert a != b

    def test_reproducible_across_instances(self):
        a = RngStream(11).get("exp", 256).integers(0, 2**31)
        b = RngStream(11).get("exp", 256).integers(0, 2**31)
        assert a == b

    def test_seeds_list(self):
        stream = RngStream(5)
        seeds = stream.seeds(4, "rep")
        assert len(seeds) == 4
        assert len(set(seeds)) == 4

    def test_not_iterable(self):
        with pytest.raises(TypeError):
            iter(RngStream(1))
