"""Unit and property tests for the Forest data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forest import Forest, ForestInvariantError


def make_forest(parent, rank=None):
    parent = np.asarray(parent, dtype=np.int64)
    if rank is None:
        # assign ranks consistent with the parent pointers: rank = -depth noise
        rank = np.zeros(parent.size)
        # simple increasing rank along ancestry: use depth via repeated walk
        for i in range(parent.size):
            depth = 0
            j = i
            while parent[j] != -1:
                j = parent[j]
                depth += 1
                if depth > parent.size:
                    break
            rank[i] = 1.0 - depth * (1.0 / (parent.size + 1)) - i * 1e-6
    return Forest(parent=parent, rank=np.asarray(rank, dtype=float))


class TestBasicStructure:
    def test_single_root(self):
        f = make_forest([-1, 0, 0, 1])
        assert f.root_count == 1
        assert f.roots.tolist() == [0]
        assert f.children[0] == (1, 2)
        assert f.is_leaf(3)
        assert not f.is_leaf(1)

    def test_tree_id_assignment(self):
        f = make_forest([-1, 0, -1, 2, 3])
        assert f.tree_id[1] == 0
        assert f.tree_id[4] == 2
        assert f.tree_sizes == {0: 2, 2: 3}

    def test_depth_and_height(self):
        f = make_forest([-1, 0, 1, 2])
        assert f.depth.tolist() == [0, 1, 2, 3]
        assert f.max_tree_height == 3
        assert f.tree_heights == {0: 3}

    def test_depth_matches_bfs_reference(self):
        # `depth` is computed by pointer doubling; `depth_by_bfs` is the
        # independent level-sweep reference the doubling is checked against.
        rng = np.random.default_rng(7)
        for _ in range(5):
            n = 500
            ranks = rng.random(n)
            parent = np.full(n, -1, dtype=np.int64)
            for i in range(n):
                candidate = int(rng.integers(0, n))
                if ranks[candidate] > ranks[i]:
                    parent[i] = candidate
            f = Forest(parent=parent, rank=ranks)
            assert np.array_equal(f.depth, f.depth_by_bfs())

    def test_bfs_reference_rejects_cycle(self):
        f = Forest(parent=np.array([1, 2, 0]), rank=np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ForestInvariantError):
            f.depth_by_bfs()

    def test_largest_root_breaks_ties_by_id(self):
        f = make_forest([-1, 0, -1, 2])
        assert f.largest_root() == 0  # both size 2, smaller id wins

    def test_tree_members(self):
        f = make_forest([-1, 0, -1, 2, 2])
        assert f.tree_members(2).tolist() == [2, 3, 4]
        with pytest.raises(ValueError):
            f.tree_members(1)

    def test_leaves_iteration(self):
        f = make_forest([-1, 0, 0, 1])
        assert sorted(f.leaves()) == [2, 3]

    def test_summary_fields(self):
        f = make_forest([-1, 0, 0])
        s = f.summary()
        assert s["n"] == 3
        assert s["roots"] == 1
        assert s["max_tree_size"] == 3


class TestValidation:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ForestInvariantError):
            Forest(parent=np.array([-1, 0]), rank=np.array([0.5]))

    def test_rejects_self_parent(self):
        f = Forest(parent=np.array([0]), rank=np.array([0.5]))
        with pytest.raises(ForestInvariantError):
            f.validate()

    def test_rejects_out_of_range_parent(self):
        f = Forest(parent=np.array([5, -1]), rank=np.array([0.5, 0.6]))
        with pytest.raises(ForestInvariantError):
            f.validate()

    def test_rejects_cycle(self):
        f = Forest(parent=np.array([1, 2, 0]), rank=np.array([0.1, 0.2, 0.3]))
        with pytest.raises(ForestInvariantError):
            f.validate(require_rank_increase=False)

    def test_rejects_rank_inversion(self):
        f = Forest(parent=np.array([-1, 0]), rank=np.array([0.2, 0.9]))
        with pytest.raises(ForestInvariantError):
            f.validate()

    def test_accepts_valid_forest(self):
        f = Forest(parent=np.array([-1, 0, 0]), rank=np.array([0.9, 0.5, 0.2]))
        f.validate()

    def test_alive_mask_shape_checked(self):
        with pytest.raises(ForestInvariantError):
            Forest(parent=np.array([-1, 0]), rank=np.array([0.9, 0.1]), alive=np.array([True]))


@st.composite
def random_forest(draw):
    """Generate a random valid forest by attaching each node to a higher-ranked one."""
    n = draw(st.integers(min_value=1, max_value=60))
    ranks = draw(
        st.lists(
            st.floats(min_value=0, max_value=1, exclude_min=True, allow_nan=False),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    ranks = np.array(ranks)
    order = np.argsort(ranks)
    parent = np.full(n, -1, dtype=np.int64)
    for position, node in enumerate(order[:-1]):  # all but the highest-ranked
        # choose a parent among strictly higher-ranked nodes, or stay a root
        higher = order[position + 1 :]
        choice = draw(st.integers(min_value=-1, max_value=len(higher) - 1))
        if choice >= 0:
            parent[node] = higher[choice]
    return Forest(parent=parent, rank=ranks)


class TestForestProperties:
    @given(random_forest())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_for_generated_forests(self, forest):
        forest.validate()
        # tree ids partition the node set and every tree id is a root
        assert set(np.unique(forest.tree_id)) == set(forest.roots.tolist())
        # sizes sum to n
        assert sum(forest.tree_sizes.values()) == forest.n
        # depth of a root is zero, depth of a child is parent depth + 1
        for node in range(forest.n):
            p = forest.parent[node]
            if p == -1:
                assert forest.depth[node] == 0
            else:
                assert forest.depth[node] == forest.depth[p] + 1

    @given(random_forest())
    @settings(max_examples=60, deadline=None)
    def test_height_bounded_by_size(self, forest):
        for root, height in forest.tree_heights.items():
            assert height <= forest.tree_sizes[root] - 1 if forest.tree_sizes[root] > 0 else height == 0

    @given(random_forest())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_parents_first(self, forest):
        order = forest.topological_order()
        seen = set()
        for node in order:
            p = forest.parent[node]
            if p != -1:
                assert int(p) in seen
            seen.add(int(node))
