"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_values(rng) -> np.ndarray:
    """A small value vector with a unique maximum and minimum."""
    values = rng.normal(50.0, 10.0, size=256)
    values[17] = 500.0  # unique max
    values[101] = -500.0  # unique min
    return values


@pytest.fixture
def tiny_values(rng) -> np.ndarray:
    return rng.uniform(0.0, 1.0, size=64)
