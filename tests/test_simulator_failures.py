"""Unit tests for repro.simulator.failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.errors import ConfigurationError
from repro.simulator.failures import FailureModel, paper_delta_range


class TestValidation:
    @pytest.mark.parametrize("delta", [-0.1, 1.0, 1.5])
    def test_invalid_loss_probability(self, delta):
        with pytest.raises(ConfigurationError):
            FailureModel(loss_probability=delta)

    @pytest.mark.parametrize("crash", [-0.01, 1.0])
    def test_invalid_crash_fraction(self, crash):
        with pytest.raises(ConfigurationError):
            FailureModel(crash_fraction=crash)

    def test_reliable_flag(self):
        assert FailureModel().reliable
        assert not FailureModel(loss_probability=0.1).reliable
        assert not FailureModel(crash_fraction=0.1).reliable


class TestSampling:
    def test_no_loss_when_delta_zero(self, rng):
        fm = FailureModel()
        assert not fm.message_lost(rng)
        assert not fm.sample_losses(1000, rng).any()

    def test_loss_rate_close_to_delta(self, rng):
        fm = FailureModel(loss_probability=0.25)
        losses = fm.sample_losses(20000, rng)
        assert abs(losses.mean() - 0.25) < 0.02

    def test_crash_count_matches_fraction(self, rng):
        fm = FailureModel(crash_fraction=0.2)
        crashed = fm.sample_crashes(1000, rng)
        assert crashed.sum() == 200

    def test_at_least_one_survivor(self, rng):
        fm = FailureModel(crash_fraction=0.99)
        crashed = fm.sample_crashes(3, rng)
        assert crashed.sum() <= 2

    def test_sample_losses_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_losses(-1, rng)

    def test_sample_crashes_requires_positive_n(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_crashes(0, rng)


class TestDerivedQuantities:
    def test_two_hop_loss_probability(self):
        fm = FailureModel(loss_probability=0.1)
        assert fm.two_hop_loss_probability() == pytest.approx(1 - 0.9**2)

    def test_two_hop_loss_is_zero_for_reliable(self):
        assert FailureModel().two_hop_loss_probability() == 0.0

    def test_paper_delta_range(self):
        low, high = paper_delta_range(1024)
        assert low == pytest.approx(1.0 / 10.0)
        assert high == pytest.approx(1.0 / 8.0)
        assert low < high

    def test_paper_delta_range_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_delta_range(2)

    def test_describe_mentions_delta(self):
        assert "0.05" in FailureModel(loss_probability=0.05).describe()
        assert "reliable" in FailureModel().describe()
