"""Unit tests for repro.simulator.failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.errors import ConfigurationError
from repro.simulator.failures import (
    ChurnOracle,
    FailureModel,
    LossOracle,
    kind_salt,
    paper_delta_range,
)


class TestValidation:
    @pytest.mark.parametrize("delta", [-0.1, 1.0, 1.5])
    def test_invalid_loss_probability(self, delta):
        with pytest.raises(ConfigurationError):
            FailureModel(loss_probability=delta)

    @pytest.mark.parametrize("crash", [-0.01, 1.0])
    def test_invalid_crash_fraction(self, crash):
        with pytest.raises(ConfigurationError):
            FailureModel(crash_fraction=crash)

    def test_reliable_flag(self):
        assert FailureModel().reliable
        assert not FailureModel(loss_probability=0.1).reliable
        assert not FailureModel(crash_fraction=0.1).reliable


class TestSampling:
    def test_no_loss_when_delta_zero(self, rng):
        fm = FailureModel()
        assert not fm.sample_losses(1000, rng).any()

    def test_loss_rate_close_to_delta(self, rng):
        fm = FailureModel(loss_probability=0.25)
        losses = fm.sample_losses(20000, rng)
        assert abs(losses.mean() - 0.25) < 0.02

    def test_crash_count_matches_fraction(self, rng):
        fm = FailureModel(crash_fraction=0.2)
        crashed = fm.sample_crashes(1000, rng)
        assert crashed.sum() == 200

    def test_at_least_one_survivor(self, rng):
        fm = FailureModel(crash_fraction=0.99)
        crashed = fm.sample_crashes(3, rng)
        assert crashed.sum() <= 2

    def test_sample_losses_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_losses(-1, rng)

    @pytest.mark.parametrize("delta", [0.0, 0.5])
    def test_sample_losses_zero_count_consumes_no_draws(self, delta):
        """The empty-frontier edge case: both backends must consume exactly
        zero RNG draws when a round has nothing to transmit."""
        fm = FailureModel(loss_probability=delta)
        rng = np.random.default_rng(42)
        state = rng.bit_generator.state
        losses = fm.sample_losses(0, rng)
        assert losses.shape == (0,)
        assert losses.dtype == bool
        assert rng.bit_generator.state == state

    def test_sample_crashes_requires_positive_n(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_crashes(0, rng)


class TestLossOracle:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            LossOracle(1.0)

    def test_scalar_and_batch_paths_agree(self):
        oracle = LossOracle(0.35, key=777)
        senders = np.arange(50)
        recipients = (senders * 7 + 3) % 50
        batch = oracle.sample(4, "gossip", senders, recipients)
        scalar = np.array(
            [oracle.lost(4, "gossip", int(s), int(r)) for s, r in zip(senders, recipients)]
        )
        assert np.array_equal(batch, scalar)

    def test_loss_rate_close_to_delta(self):
        oracle = LossOracle(0.25, key=31337)
        senders = np.repeat(np.arange(200), 100)
        recipients = np.tile(np.arange(100), 200)
        lost = oracle.sample(0, "data", senders, recipients)
        assert abs(float(lost.mean()) - 0.25) < 0.02

    def test_round_array_broadcasting(self):
        oracle = LossOracle(0.5, key=5)
        rounds = np.array([0, 1, 2, 3])
        recipients = np.array([9, 9, 9, 9])
        per_round = oracle.sample(rounds, "data", 1, recipients)
        scalar = np.array([oracle.lost(int(r), "data", 1, 9) for r in rounds])
        assert np.array_equal(per_round, scalar)

    def test_keys_decorrelate_runs(self):
        recipients = np.arange(64)
        a = LossOracle(0.5, key=1).sample(0, "data", 0, recipients)
        b = LossOracle(0.5, key=2).sample(0, "data", 0, recipients)
        assert not np.array_equal(a, b)

    def test_for_run_key_depends_on_generator_state(self):
        fm = FailureModel(loss_probability=0.1)
        rng = np.random.default_rng(3)
        first = LossOracle.for_run(fm, rng)
        rng.random()  # advance the stream -> different preamble state
        second = LossOracle.for_run(fm, rng)
        assert first.key != second.key

    def test_kind_salt_stable_for_enum_and_string(self):
        from repro.simulator.message import MessageKind

        assert kind_salt(MessageKind.GOSSIP) == kind_salt("gossip")
        assert kind_salt("gossip") != kind_salt("push")


class TestChurnOracle:
    """Churn fates are identity-keyed: a pure function of (key, round, node)."""

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnOracle(1.0)
        with pytest.raises(ConfigurationError):
            ChurnOracle(0.1, join_rate=-0.1)

    def test_for_run_none_when_churn_off_and_consumes_no_draws(self):
        rng = np.random.default_rng(7)
        state = rng.bit_generator.state
        assert ChurnOracle.for_run(FailureModel(loss_probability=0.3), rng) is None
        oracle = ChurnOracle.for_run(FailureModel(churn_rate=0.1), rng)
        assert oracle is not None
        # key derivation hashes the generator state, drawing nothing
        assert rng.bit_generator.state == state

    def test_churn_key_disjoint_from_loss_key(self):
        """Same generator state, different domain tags -> decorrelated fates."""
        fm = FailureModel(loss_probability=0.5, churn_rate=0.5)
        rng = np.random.default_rng(11)
        loss = LossOracle.for_run(fm, rng)
        churn = ChurnOracle.for_run(fm, rng)
        assert churn.key != loss.key
        # and the per-node fates genuinely decorrelate: dying in round r is
        # independent of losing a self-addressed message in round r
        ids = np.arange(4096)
        alive = np.ones(ids.size, dtype=bool)
        died, _ = churn.step(0, alive)
        lost = loss.sample(0, "push", ids, ids)
        died_mask = np.zeros(ids.size, dtype=bool)
        died_mask[died] = True
        assert not np.array_equal(died_mask, lost)

    def test_fates_independent_of_batch_order_and_sharding(self):
        """The mask a round produces is the same however ids are chunked."""
        oracle = ChurnOracle(0.3, join_rate=0.0, key=99)
        ids = np.arange(10_000, dtype=np.int64)
        whole = oracle._fates(5, ids, oracle._crash_salt, oracle._crash_threshold)
        # sharded: any contiguous split concatenates to the same fates
        for shards in (2, 3, 7):
            parts = [
                oracle._fates(5, chunk, oracle._crash_salt, oracle._crash_threshold)
                for chunk in np.array_split(ids, shards)
            ]
            assert np.array_equal(np.concatenate(parts), whole)
        # batch order: a permuted batch gets the permuted fates
        perm = np.random.default_rng(3).permutation(ids.size)
        shuffled = oracle._fates(
            5, ids[perm], oracle._crash_salt, oracle._crash_threshold
        )
        assert np.array_equal(shuffled, whole[perm])

    def test_step_fates_stable_across_repeated_replay(self):
        """Replaying the same rounds from the same key reproduces every fate."""
        fm = FailureModel(churn_rate=0.05, join_rate=0.02)
        rng = np.random.default_rng(23)
        oracle = ChurnOracle.for_run(fm, rng)
        replay = ChurnOracle(
            fm.churn_rate, fm.join_rate, fm.churn_schedule, key=oracle.key
        )
        alive_a = np.ones(512, dtype=bool)
        alive_b = np.ones(512, dtype=bool)
        for round_index in range(20):
            died_a, joined_a = oracle.step(round_index, alive_a)
            died_b, joined_b = replay.step(round_index, alive_b)
            assert np.array_equal(died_a, died_b)
            assert np.array_equal(joined_a, joined_b)
        assert np.array_equal(alive_a, alive_b)

    def test_schedule_overrides_rate_fates_and_normalises(self):
        # schedules listed in different orders are the same model
        a = FailureModel(churn_schedule=((8, (4, 2, 4), "join"), (3, 5, "crash")))
        b = FailureModel(churn_schedule=((3, (5,), "crash"), (8, (2, 4), "join")))
        assert a.churn_schedule == b.churn_schedule == (
            (3, (5,), "crash"),
            (8, (2, 4), "join"),
        )
        oracle = ChurnOracle(0.0, schedule=a.churn_schedule, key=1)
        alive = np.ones(10, dtype=bool)
        alive[2] = alive[4] = False
        died, joined = oracle.step(3, alive)
        assert died.tolist() == [5]
        assert joined.tolist() == []
        died, joined = oracle.step(8, alive)
        assert joined.tolist() == [2, 4]
        assert alive[2] and alive[4] and not alive[5]

    def test_schedule_validation(self):
        with pytest.raises(ConfigurationError, match="crash.*join|'crash' or 'join'"):
            FailureModel(churn_schedule=((1, (0,), "explode"),))
        with pytest.raises(ConfigurationError, match="non-negative"):
            FailureModel(churn_schedule=((-1, (0,), "crash"),))
        with pytest.raises(ConfigurationError, match="round, node_ids, event"):
            FailureModel(churn_schedule=((1, 2),))
        with pytest.raises(ConfigurationError, match="must be an integer"):
            FailureModel(churn_schedule=("bad",))

    def test_last_survivor_guard(self):
        oracle = ChurnOracle(0.0, schedule=((0, (0, 1, 2), "crash"),), key=4)
        alive = np.ones(3, dtype=bool)
        died, joined = oracle.step(0, alive)
        # the lowest-id victim is spared so the network never empties
        assert died.tolist() == [1, 2]
        assert alive.tolist() == [True, False, False]

    def test_has_joins(self):
        assert not ChurnOracle(0.1).has_joins
        assert ChurnOracle(0.1, join_rate=0.1).has_joins
        assert ChurnOracle(0.0, schedule=((2, (1,), "join"),)).has_joins
        assert not FailureModel(churn_rate=0.2).has_joins
        assert FailureModel(join_rate=0.2).has_joins

    def test_spec_round_trip_and_unknown_keys(self):
        fm = FailureModel(
            loss_probability=0.1,
            churn_rate=0.02,
            join_rate=0.01,
            churn_schedule=((4, (1, 3), "crash"),),
        )
        assert FailureModel.from_spec(fm.to_spec()) == fm
        # churn-free specs serialise exactly as they always did
        assert FailureModel(loss_probability=0.1).to_spec() == {
            "loss_probability": 0.1,
            "crash_fraction": 0.0,
        }
        with pytest.raises(ConfigurationError, match="unknown keys"):
            FailureModel.from_spec({"churn": 0.1})


class TestChurnBackendIndependence:
    """Run-level property: fates survive backend and shard-count changes."""

    def test_push_sum_identical_across_shard_counts(self):
        from repro.api import RunSpec, run

        doc = dict(
            protocol="push-sum",
            params={"n": 256, "workload": "uniform"},
            seed=77,
            failures={
                "loss_probability": 0.05,
                "churn_rate": 0.01,
                "join_rate": 0.004,
            },
        )
        baseline = run(RunSpec(**doc, backend="vectorized"))
        for shards in (1, 2, 5):
            sharded = run(
                RunSpec(**doc, backend="sharded", backend_options={"shards": shards})
            )
            assert sharded.same_outcome(baseline), f"shards={shards} diverged"
            assert sharded.degradation == baseline.degradation


class TestDerivedQuantities:
    def test_two_hop_loss_probability(self):
        fm = FailureModel(loss_probability=0.1)
        assert fm.two_hop_loss_probability() == pytest.approx(1 - 0.9**2)

    def test_two_hop_loss_is_zero_for_reliable(self):
        assert FailureModel().two_hop_loss_probability() == 0.0

    def test_paper_delta_range(self):
        low, high = paper_delta_range(1024)
        assert low == pytest.approx(1.0 / 10.0)
        assert high == pytest.approx(1.0 / 8.0)
        assert low < high

    def test_paper_delta_range_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_delta_range(2)

    def test_describe_mentions_delta(self):
        assert "0.05" in FailureModel(loss_probability=0.05).describe()
        assert "reliable" in FailureModel().describe()
