"""Unit tests for repro.simulator.failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.errors import ConfigurationError
from repro.simulator.failures import FailureModel, LossOracle, kind_salt, paper_delta_range


class TestValidation:
    @pytest.mark.parametrize("delta", [-0.1, 1.0, 1.5])
    def test_invalid_loss_probability(self, delta):
        with pytest.raises(ConfigurationError):
            FailureModel(loss_probability=delta)

    @pytest.mark.parametrize("crash", [-0.01, 1.0])
    def test_invalid_crash_fraction(self, crash):
        with pytest.raises(ConfigurationError):
            FailureModel(crash_fraction=crash)

    def test_reliable_flag(self):
        assert FailureModel().reliable
        assert not FailureModel(loss_probability=0.1).reliable
        assert not FailureModel(crash_fraction=0.1).reliable


class TestSampling:
    def test_no_loss_when_delta_zero(self, rng):
        fm = FailureModel()
        assert not fm.sample_losses(1000, rng).any()

    def test_loss_rate_close_to_delta(self, rng):
        fm = FailureModel(loss_probability=0.25)
        losses = fm.sample_losses(20000, rng)
        assert abs(losses.mean() - 0.25) < 0.02

    def test_crash_count_matches_fraction(self, rng):
        fm = FailureModel(crash_fraction=0.2)
        crashed = fm.sample_crashes(1000, rng)
        assert crashed.sum() == 200

    def test_at_least_one_survivor(self, rng):
        fm = FailureModel(crash_fraction=0.99)
        crashed = fm.sample_crashes(3, rng)
        assert crashed.sum() <= 2

    def test_sample_losses_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_losses(-1, rng)

    @pytest.mark.parametrize("delta", [0.0, 0.5])
    def test_sample_losses_zero_count_consumes_no_draws(self, delta):
        """The empty-frontier edge case: both backends must consume exactly
        zero RNG draws when a round has nothing to transmit."""
        fm = FailureModel(loss_probability=delta)
        rng = np.random.default_rng(42)
        state = rng.bit_generator.state
        losses = fm.sample_losses(0, rng)
        assert losses.shape == (0,)
        assert losses.dtype == bool
        assert rng.bit_generator.state == state

    def test_sample_crashes_requires_positive_n(self, rng):
        with pytest.raises(ConfigurationError):
            FailureModel().sample_crashes(0, rng)


class TestLossOracle:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            LossOracle(1.0)

    def test_scalar_and_batch_paths_agree(self):
        oracle = LossOracle(0.35, key=777)
        senders = np.arange(50)
        recipients = (senders * 7 + 3) % 50
        batch = oracle.sample(4, "gossip", senders, recipients)
        scalar = np.array(
            [oracle.lost(4, "gossip", int(s), int(r)) for s, r in zip(senders, recipients)]
        )
        assert np.array_equal(batch, scalar)

    def test_loss_rate_close_to_delta(self):
        oracle = LossOracle(0.25, key=31337)
        senders = np.repeat(np.arange(200), 100)
        recipients = np.tile(np.arange(100), 200)
        lost = oracle.sample(0, "data", senders, recipients)
        assert abs(float(lost.mean()) - 0.25) < 0.02

    def test_round_array_broadcasting(self):
        oracle = LossOracle(0.5, key=5)
        rounds = np.array([0, 1, 2, 3])
        recipients = np.array([9, 9, 9, 9])
        per_round = oracle.sample(rounds, "data", 1, recipients)
        scalar = np.array([oracle.lost(int(r), "data", 1, 9) for r in rounds])
        assert np.array_equal(per_round, scalar)

    def test_keys_decorrelate_runs(self):
        recipients = np.arange(64)
        a = LossOracle(0.5, key=1).sample(0, "data", 0, recipients)
        b = LossOracle(0.5, key=2).sample(0, "data", 0, recipients)
        assert not np.array_equal(a, b)

    def test_for_run_key_depends_on_generator_state(self):
        fm = FailureModel(loss_probability=0.1)
        rng = np.random.default_rng(3)
        first = LossOracle.for_run(fm, rng)
        rng.random()  # advance the stream -> different preamble state
        second = LossOracle.for_run(fm, rng)
        assert first.key != second.key

    def test_kind_salt_stable_for_enum_and_string(self):
        from repro.simulator.message import MessageKind

        assert kind_salt(MessageKind.GOSSIP) == kind_salt("gossip")
        assert kind_salt("gossip") != kind_salt("push")


class TestDerivedQuantities:
    def test_two_hop_loss_probability(self):
        fm = FailureModel(loss_probability=0.1)
        assert fm.two_hop_loss_probability() == pytest.approx(1 - 0.9**2)

    def test_two_hop_loss_is_zero_for_reliable(self):
        assert FailureModel().two_hop_loss_probability() == 0.0

    def test_paper_delta_range(self):
        low, high = paper_delta_range(1024)
        assert low == pytest.approx(1.0 / 10.0)
        assert high == pytest.approx(1.0 / 8.0)
        assert low < high

    def test_paper_delta_range_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_delta_range(2)

    def test_describe_mentions_delta(self):
        assert "0.05" in FailureModel(loss_probability=0.05).describe()
        assert "reliable" in FailureModel().describe()
