"""The ``compiled`` backend: registration, fallbacks, and primitive contracts.

The jitted loops themselves are exercised by the four-way equivalence
matrix in ``tests/test_substrate.py`` wherever numba is installed (the
``bench-compiled`` CI job); this file covers everything that must hold on
*every* machine:

* dynamic registration — ``BACKENDS`` grows/shrinks with numba's
  availability, ``normalize_backend`` explains how to install the extra,
  and specs referencing ``backend="compiled"`` round-trip whenever the
  backend is registered;
* the python-fallback mode (``REPRO_COMPILED_PYTHON`` /
  :func:`python_fallback`), which must be bit-identical to vectorized;
* the lossless dtype-narrowing pass (ids only, never accumulators);
* the single-pass ``occurrence_index`` rewrite against a naive reference;
* the ``compact_frontier`` / ``fold_pushes`` kernel primitives;
* the ``LossOracle`` batch-hasher seam the compiled module installs.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import RunSpec
from repro.core import DRRGossipConfig, drr_gossip_average, run_drr
from repro.simulator.errors import ConfigurationError
from repro.simulator.failures import FailureModel, LossOracle, kind_salt
from repro.simulator.message import MessageKind
from repro.substrate import (
    BACKENDS,
    NUMBA_AVAILABLE,
    UNAVAILABLE_BACKENDS,
    VectorizedKernel,
    available_backends,
    compact_frontier,
    fold_pushes,
    get_kernel,
    normalize_backend,
    occurrence_index,
)
from repro.substrate import compiled as compiled_mod
from repro.substrate.compiled import (
    NUMBA_REQUIREMENT,
    CompiledKernel,
    python_fallback,
)
from repro.substrate.tuning import get_tuning, tuned


def naive_occurrence_index(keys) -> np.ndarray:
    """Reference: rank of each element among equal keys, in array order."""
    seen: dict = {}
    out = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        k = key.item() if hasattr(key, "item") else key
        out[i] = seen.get(k, 0)
        seen[k] = out[i] + 1
    return out


# --------------------------------------------------------------------------- #
# registration / deregistration
# --------------------------------------------------------------------------- #
class TestRegistration:
    def test_registry_matches_numba_availability(self):
        if NUMBA_AVAILABLE:
            assert "compiled" in BACKENDS
            assert "compiled" not in UNAVAILABLE_BACKENDS
        else:
            assert "compiled" not in BACKENDS
            assert UNAVAILABLE_BACKENDS["compiled"] == NUMBA_REQUIREMENT

    def test_unavailable_error_names_the_extra_and_the_alternatives(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed; the unavailable error cannot fire")
        with pytest.raises(ConfigurationError) as exc:
            normalize_backend("compiled")
        message = str(exc.value)
        assert "numba" in message
        assert "pip install .[compiled]" in message
        # the dynamic registry contents, so users see what they CAN pick
        assert ", ".join(available_backends()) in message

    def test_import_failure_deregisters(self, monkeypatch):
        """Reloading the module with numba unimportable must deregister."""
        import builtins

        real_import = builtins.__import__

        def blocked(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba blocked by test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", blocked)
        monkeypatch.delenv("REPRO_COMPILED_PYTHON", raising=False)
        try:
            reloaded = importlib.reload(compiled_mod)
            assert reloaded.NUMBA_AVAILABLE is False
            assert "compiled" not in BACKENDS
            assert UNAVAILABLE_BACKENDS["compiled"] == reloaded.NUMBA_REQUIREMENT
        finally:
            monkeypatch.undo()
            importlib.reload(compiled_mod)
        # back to the environment's true state
        assert ("compiled" in BACKENDS) == compiled_mod.NUMBA_AVAILABLE

    def test_python_fallback_registers_and_restores(self):
        before = "compiled" in BACKENDS
        with python_fallback() as kernel:
            assert "compiled" in BACKENDS
            assert "compiled" not in UNAVAILABLE_BACKENDS
            assert normalize_backend("compiled") == "compiled"
            assert kernel.name == "compiled"
            assert kernel.shards == 1  # inline jitted loops by default
            assert type(kernel).__name__ == "CompiledKernel"
        assert ("compiled" in BACKENDS) == before
        if not before:
            assert UNAVAILABLE_BACKENDS["compiled"] == NUMBA_REQUIREMENT

    def test_env_variable_forces_registration(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_PYTHON", "1")
        was_registered = "compiled" in BACKENDS
        try:
            assert compiled_mod.register() is True
            assert "compiled" in BACKENDS
        finally:
            if not was_registered and not NUMBA_AVAILABLE:
                compiled_mod.deregister()

    def test_get_kernel_roundtrip_when_registered(self):
        with python_fallback():
            kernel = get_kernel("compiled")
            assert normalize_backend(kernel) == "compiled"


# --------------------------------------------------------------------------- #
# spec round-trips
# --------------------------------------------------------------------------- #
class TestSpecRoundTrip:
    def test_runspec_roundtrips_with_backend_options(self):
        with python_fallback():
            spec = RunSpec(
                protocol="drr", params={"n": 64}, seed=3,
                backend="compiled", backend_options={"shards": 2, "min_batch": 0},
            )
            doc = spec.to_dict()
            assert doc["backend"] == "compiled"
            assert doc["backend_options"] == {"shards": 2, "min_batch": 0}
            assert RunSpec.from_dict(doc) == spec
            assert RunSpec.from_json(spec.to_json()) == spec

    def test_runspec_rejects_unknown_compiled_options(self):
        from repro.api.spec import SpecValidationError

        with python_fallback():
            with pytest.raises(SpecValidationError):
                RunSpec(
                    protocol="drr", params={"n": 64},
                    backend="compiled", backend_options={"threads": 8},
                )

    def test_runspec_rejects_compiled_when_unregistered(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed; compiled is always registered")
        with pytest.raises(Exception, match="not available"):
            RunSpec(protocol="drr", params={"n": 64}, backend="compiled")

    def test_dispatch_runs_compiled_spec(self):
        with python_fallback():
            spec = RunSpec(protocol="drr", params={"n": 128}, seed=5, backend="compiled")
            reference = repro.run(spec.replace(backend="vectorized", backend_options={}))
            result = repro.run(spec)
            assert result.rounds == reference.rounds
            assert result.messages == reference.messages


# --------------------------------------------------------------------------- #
# python-fallback equivalence + dtype narrowing
# --------------------------------------------------------------------------- #
class TestFallbackEquivalence:
    @pytest.mark.parametrize("fm", [FailureModel(), FailureModel(0.1, 0.1)],
                             ids=["reliable", "lossy+crash"])
    def test_pipeline_bit_identical_to_vectorized(self, fm):
        values = np.random.default_rng(3).normal(10.0, 2.0, size=2000)
        with python_fallback():
            compiled = drr_gossip_average(
                values, rng=2, config=DRRGossipConfig(failure_model=fm, backend="compiled")
            )
        reference = drr_gossip_average(
            values, rng=2, config=DRRGossipConfig(failure_model=fm, backend="vectorized")
        )
        assert compiled.rounds == reference.rounds
        assert compiled.messages == reference.messages
        assert compiled.metrics.messages_by_phase() == reference.metrics.messages_by_phase()
        assert np.array_equal(compiled.estimates, reference.estimates, equal_nan=True)

    def test_narrowing_is_value_identical(self):
        """Narrowed id draws must be the same numbers the wide path draws."""
        with python_fallback() as kernel:
            assert kernel.auto_narrow_ids is True
            rng = np.random.default_rng(7)
            narrowed = kernel.sample_uniform(rng, 10_000, 4096, exclude=None)
            wide = VectorizedKernel.sample_uniform(
                np.random.default_rng(7), 10_000, 4096, exclude=None
            )
            assert narrowed.dtype == np.int32  # n < 2^31: provably lossless
            assert np.array_equal(narrowed.astype(np.int64), np.asarray(wide, dtype=np.int64))

    def test_narrowing_respects_explicit_tuning(self):
        """An explicit wide tuning is not overridden behind the user's back."""
        with python_fallback() as kernel:
            with tuned(narrow_ids=True):
                assert get_tuning().narrow_ids
                out = kernel.sample_uniform(np.random.default_rng(1), 1000, 64)
            assert out.dtype == np.int32

    def test_narrowed_run_matches_wide_run(self, monkeypatch):
        """End-to-end: auto-narrowing must not change a single bit."""
        values = np.random.default_rng(5).uniform(0.0, 9.0, size=1500)
        fm = FailureModel(loss_probability=0.05)
        with python_fallback():
            narrowed = drr_gossip_average(
                values, rng=4, config=DRRGossipConfig(failure_model=fm, backend="compiled")
            )
            monkeypatch.setattr(CompiledKernel, "auto_narrow_ids", False)
            wide = drr_gossip_average(
                values, rng=4, config=DRRGossipConfig(failure_model=fm, backend="compiled")
            )
        assert narrowed.rounds == wide.rounds
        assert narrowed.messages == wide.messages
        assert np.array_equal(narrowed.estimates, wide.estimates, equal_nan=True)

    def test_drr_identical_to_vectorized(self):
        with python_fallback():
            compiled = run_drr(512, rng=9, backend="compiled")
        reference = run_drr(512, rng=9, backend="vectorized")
        assert np.array_equal(compiled.forest.parent, reference.forest.parent)
        assert compiled.rounds == reference.rounds
        assert compiled.metrics.total_messages == reference.metrics.total_messages


# --------------------------------------------------------------------------- #
# occurrence_index: single-pass rewrite vs naive reference
# --------------------------------------------------------------------------- #
class TestOccurrenceIndex:
    @given(
        keys=st.lists(st.integers(min_value=-50, max_value=50), max_size=400),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_dense_keys(self, keys):
        arr = np.array(keys, dtype=np.int64)
        assert np.array_equal(occurrence_index(arr), naive_occurrence_index(arr))

    @given(
        keys=st.lists(
            st.integers(min_value=-(2**40), max_value=2**40), max_size=200
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_sparse_keys_hit_the_sorted_fallback(self, keys):
        arr = np.array(keys, dtype=np.int64)
        assert np.array_equal(occurrence_index(arr), naive_occurrence_index(arr))

    def test_all_equal_keys(self):
        # Adversarial depth: every element is a duplicate of one key (the
        # peeling path would need `size` levels; must fall back, not crawl).
        arr = np.full(5000, 7, dtype=np.int64)
        assert np.array_equal(occurrence_index(arr), np.arange(5000))

    def test_all_distinct_fast_path(self):
        arr = np.random.default_rng(0).permutation(10_000)
        assert np.array_equal(occurrence_index(arr), np.zeros(10_000, dtype=np.int64))

    def test_empty_and_float_keys(self):
        assert occurrence_index(np.array([], dtype=np.int64)).size == 0
        floats = np.array([1.5, 1.5, 2.0, 1.5])
        assert np.array_equal(occurrence_index(floats), [0, 1, 0, 2])

    def test_relay_shaped_batch(self):
        # balls-in-bins duplicates, the Phase III forwarder distribution
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 4000, size=20_000)
        assert np.array_equal(occurrence_index(arr), naive_occurrence_index(arr))

    def test_compiled_kernel_method_agrees(self):
        with python_fallback() as kernel:
            rng = np.random.default_rng(2)
            arr = rng.integers(0, 500, size=3000)
            assert np.array_equal(kernel.occurrence_index(arr), naive_occurrence_index(arr))


# --------------------------------------------------------------------------- #
# kernel primitives: compact_frontier / fold_pushes
# --------------------------------------------------------------------------- #
class TestNewPrimitives:
    def test_compact_frontier_matches_mask_gather(self):
        rng = np.random.default_rng(3)
        active = rng.permutation(5000)[:3000]
        drop = rng.random(3000) < 0.4
        expected = active[~drop]
        assert np.array_equal(compact_frontier(active, drop), expected)
        with python_fallback() as kernel:
            assert np.array_equal(kernel.compact_frontier(active, drop), expected)

    def test_fold_pushes_matches_bincount_fold(self):
        rng = np.random.default_rng(4)
        m, batch = 257, 4096
        receiver = rng.integers(-1, m, size=batch)
        send_s = rng.random(batch)
        send_g = rng.random(batch)
        s_ref, g_ref = rng.random(m), rng.random(m)
        s_new, g_new = s_ref.copy(), g_ref.copy()
        delivered = receiver >= 0
        s_ref += np.bincount(receiver[delivered], weights=send_s[delivered], minlength=m)
        g_ref += np.bincount(receiver[delivered], weights=send_g[delivered], minlength=m)
        fold_pushes(receiver, send_s, send_g, s_new, g_new)
        assert np.array_equal(s_new, s_ref)
        assert np.array_equal(g_new, g_ref)

    def test_fold_pushes_all_dropped_is_a_noop(self):
        receiver = np.full(100, -1, dtype=np.int64)
        s = np.random.default_rng(5).random(16)
        g = s.copy()
        before_s, before_g = s.copy(), g.copy()
        fold_pushes(receiver, np.ones(100), np.ones(100), s, g)
        assert np.array_equal(s, before_s) and np.array_equal(g, before_g)

    def test_compiled_fold_falls_back_for_narrow_estimates(self):
        # float32 accumulators must take the NumPy fold (bit-identity with
        # the bincount-then-cast rounding), never a jitted float32 loop.
        with python_fallback() as kernel:
            receiver = np.array([0, 1, -1, 1], dtype=np.int64)
            s = np.zeros(2, dtype=np.float32)
            g = np.zeros(2, dtype=np.float32)
            send = np.array([1.0, 2.0, 3.0, 4.0])
            kernel.fold_pushes(receiver, send, send, s, g)
            expected = np.bincount(
                receiver[receiver >= 0], weights=send[receiver >= 0], minlength=2
            ).astype(np.float32)
            assert np.array_equal(s, expected)


# --------------------------------------------------------------------------- #
# the LossOracle batch-hasher seam
# --------------------------------------------------------------------------- #
class TestBatchHasherSeam:
    def test_hook_is_used_for_large_batches_only(self):
        from repro.simulator import failures

        calls = []
        oracle = LossOracle(0.25, key=99)

        def fake_hasher(key, kind_value, round_index, senders, recipients, nonces):
            calls.append(len(recipients))
            # echo what the pure-NumPy chain would produce, so fates match
            with np.errstate(over="ignore"):
                return failures._splitmix64(
                    failures._splitmix64(
                        failures._splitmix64(
                            failures._splitmix64(
                                failures._splitmix64(np.uint64(key) ^ kind_value)
                                ^ failures._as_u64(round_index)
                            )
                            ^ failures._as_u64(senders)
                        )
                        ^ failures._as_u64(recipients)
                    )
                    ^ failures._as_u64(nonces if nonces is not None else 0)
                )

        failures.set_batch_hasher(fake_hasher)
        try:
            small = np.arange(100)
            oracle.sample(1, MessageKind.GOSSIP, 7, small)
            assert calls == []  # below the 4096 threshold: NumPy path
            big = np.arange(10_000)
            hooked = oracle.sample(1, MessageKind.GOSSIP, 7, big)
        finally:
            failures.set_batch_hasher(None)
        native = oracle.sample(1, MessageKind.GOSSIP, 7, big)
        assert calls == [10_000]
        assert np.array_equal(hooked, native)

    def test_kind_salt_is_stable_for_str_and_enum(self):
        assert kind_salt(MessageKind.FORWARD) == kind_salt(str(MessageKind.FORWARD))


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestCli:
    def test_run_accepts_compiled_backend_and_knobs(self, capsys):
        from repro.harness.cli import main

        with python_fallback():
            code = main([
                "run", "--n", "256", "--backend", "compiled",
                "--shards", "1", "--min-batch", "65536", "--seed", "3",
            ])
        assert code == 0
        assert "aggregate" in capsys.readouterr().out

    def test_run_rejects_knobs_for_unconfigurable_backends(self, capsys):
        from repro.harness.cli import main

        code = main(["run", "--n", "64", "--backend", "vectorized", "--shards", "2"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err
