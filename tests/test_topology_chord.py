"""Unit tests for the Chord DHT substrate and peer sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.topology import ChordNetwork, ChordSampler, RandomWalkSampler, ring_graph, uniformity_l1_error


class TestChordConstruction:
    def test_requires_two_nodes(self, rng):
        with pytest.raises(ValueError):
            ChordNetwork(1, rng)

    def test_identifier_space_large_enough(self, rng):
        with pytest.raises(ValueError):
            ChordNetwork(64, rng, m=5)

    def test_identifiers_sorted_and_unique(self, rng):
        chord = ChordNetwork(64, rng)
        ids = chord.identifiers
        assert np.all(np.diff(ids) > 0)

    def test_degree_is_logarithmic(self, rng):
        chord = ChordNetwork(256, rng)
        avg = chord.average_degree()
        assert avg <= 4 * math.log2(256)
        assert avg >= 0.5 * math.log2(256)

    def test_topology_is_connected(self, rng):
        topo = ChordNetwork(128, rng).to_topology()
        assert topo.is_connected()
        assert topo.n == 128


class TestChordRouting:
    def test_lookup_owner_is_successor_of_target(self, rng):
        chord = ChordNetwork(64, rng)
        target = int(rng.integers(0, chord.ring_size))
        result = chord.lookup(0, target)
        expected_owner = chord._successor_index_of_identifier(target)
        assert result.owner == expected_owner

    def test_lookup_hops_logarithmic(self, rng):
        chord = ChordNetwork(512, rng)
        hops = [chord.lookup(int(rng.integers(0, 512)), int(rng.integers(0, chord.ring_size))).hops for _ in range(200)]
        assert max(hops) <= 3 * math.log2(512)

    def test_lookup_from_every_source_terminates(self, rng):
        chord = ChordNetwork(32, rng)
        for source in range(32):
            result = chord.lookup(source, 12345)
            assert 0 <= result.owner < 32

    def test_lookup_path_starts_at_source(self, rng):
        chord = ChordNetwork(32, rng)
        result = chord.lookup(5, 999)
        assert result.path[0] == 5

    def test_invalid_source_rejected(self, rng):
        chord = ChordNetwork(32, rng)
        with pytest.raises(ValueError):
            chord.lookup(99, 0)

    def test_count_reply_adds_one_message(self, rng):
        chord = ChordNetwork(32, rng)
        target = 777
        without = chord.lookup(3, target, count_reply=False)
        with_reply = chord.lookup(3, target, count_reply=True)
        assert with_reply.messages == without.messages + 1


class TestSamplers:
    def test_chord_sampler_costs_are_bounded(self, rng):
        chord = ChordNetwork(128, rng)
        sampler = ChordSampler(chord)
        costs = [sampler.sample(0, rng) for _ in range(50)]
        assert all(c.messages <= 3 * math.log2(128) for c in costs)
        assert all(0 <= c.peer < 128 for c in costs)

    def test_chord_uniform_peer_close_to_uniform(self, rng):
        chord = ChordNetwork(32, rng)
        peers = np.array([chord.sample_uniform_peer(0, rng)[0] for _ in range(1500)])
        assert uniformity_l1_error(peers, 32) < 0.5

    def test_random_walk_sampler_on_ring(self, rng):
        topo = ring_graph(32)
        sampler = RandomWalkSampler(topo, walk_length=200)
        cost = sampler.sample(0, rng)
        assert cost.rounds == 200
        assert cost.messages == 200
        assert 0 <= cost.peer < 32

    def test_random_walk_requires_connected_graph(self, rng):
        from repro.topology import Topology

        disconnected = Topology.from_edges("x", 4, [(0, 1)])
        with pytest.raises(ValueError):
            RandomWalkSampler(disconnected)

    def test_uniformity_error_metric(self):
        perfect = np.repeat(np.arange(8), 100)
        assert uniformity_l1_error(perfect, 8) == pytest.approx(0.0)
        skewed = np.zeros(800, dtype=int)
        assert uniformity_l1_error(skewed, 8) > 1.0
