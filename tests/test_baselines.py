"""Tests for the baseline protocols (Kempe, Kashyap, Karp, flooding)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    default_push_rounds,
    efficient_gossip,
    flood_max,
    push_max,
    push_pull_rumor,
    push_rumor,
    push_sum,
)
from repro.core import Aggregate
from repro.topology import grid_graph, ring_graph


class TestPushSum:
    def test_converges_to_average(self, rng):
        values = rng.uniform(0, 100, size=1024)
        result = push_sum(values, rng=1)
        assert result.max_relative_error < 1e-3
        assert result.exact == pytest.approx(values.mean())

    def test_message_complexity_n_log_n_shape(self):
        values = np.random.default_rng(0).uniform(size=2048)
        result = push_sum(values, rng=2)
        # n nodes push every round for Theta(log n) rounds
        assert result.messages == 2048 * result.rounds
        assert result.rounds >= math.log2(2048)

    def test_convergence_history_monotone_trend(self, rng):
        values = rng.uniform(0, 10, size=512)
        result = push_sum(values, rng=3)
        # the error after the last round is far below the error after round 1
        assert result.convergence[-1] < result.convergence[0] * 1e-2

    def test_default_rounds_grows_with_n(self):
        assert default_push_rounds(2**16) > default_push_rounds(2**8)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            push_sum(np.array([]))

    def test_engine_backend_is_identical_on_reliable_network(self, rng):
        values = rng.uniform(0, 10, size=128)
        fast = push_sum(values, rng=4)
        engine = push_sum(values, rng=4, backend="engine")
        assert fast.exact == pytest.approx(engine.exact)
        assert engine.max_relative_error < 0.05
        # same seed, same substrate RNG order: identical runs
        assert engine.messages == fast.messages
        assert np.array_equal(engine.estimates, fast.estimates, equal_nan=True)


class TestPushMax:
    def test_everyone_learns_max(self, rng):
        values = rng.uniform(0, 100, size=1024)
        result = push_max(values, rng=5)
        assert result.all_correct

    def test_oracle_stopping_counts_fewer_messages(self, rng):
        values = rng.uniform(0, 100, size=1024)
        full = push_max(values, rng=6)
        oracle = push_max(values, rng=6, stop_when_converged=True)
        assert oracle.messages <= full.messages

    def test_convergence_curve_reaches_one(self, rng):
        values = rng.uniform(0, 100, size=512)
        result = push_max(values, rng=7)
        assert result.convergence[-1] == pytest.approx(1.0)


class TestEfficientGossip:
    def test_average_accuracy(self, rng):
        values = rng.uniform(0, 100, size=2048)
        result = efficient_gossip(values, Aggregate.AVERAGE, rng=8)
        assert result.max_relative_error < 0.01

    def test_max_and_min_exact_for_learned_nodes(self, rng):
        values = rng.uniform(0, 100, size=1024)
        for aggregate in (Aggregate.MAX, Aggregate.MIN):
            result = efficient_gossip(values, aggregate, rng=9)
            assert result.all_correct

    def test_group_sizes_logarithmic(self, rng):
        values = rng.uniform(0, 100, size=4096)
        result = efficient_gossip(values, Aggregate.AVERAGE, rng=10)
        assert result.group_count > 0
        assert result.max_group_size <= 30 * math.log2(4096)

    def test_time_complexity_has_loglog_factor(self, rng):
        # rounds should exceed the DRR-gossip style c*log n budget because of
        # the log log n grouping stages
        values = rng.uniform(0, 100, size=4096)
        result = efficient_gossip(values, Aggregate.AVERAGE, rng=11)
        assert result.rounds > 2 * math.log2(4096)

    def test_message_complexity_below_n_log_n(self, rng):
        n = 4096
        values = rng.uniform(0, 100, size=n)
        result = efficient_gossip(values, Aggregate.AVERAGE, rng=12)
        assert result.messages < 0.8 * n * math.log2(n)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            efficient_gossip(np.array([]))


class TestRumorSpreading:
    def test_push_rumor_informs_everyone(self):
        result = push_rumor(2048, rng=13)
        assert result.everyone_informed

    def test_push_pull_informs_everyone_with_fewer_messages(self):
        n = 4096
        push_only = push_rumor(n, rng=14)
        push_pull = push_pull_rumor(n, rng=14)
        assert push_pull.everyone_informed
        assert push_pull.messages < push_only.messages

    def test_push_pull_messages_per_node_grow_slowly(self):
        small = push_pull_rumor(256, rng=15).messages / 256
        large = push_pull_rumor(8192, rng=15).messages / 8192
        # Theta(log log n): going from 2^8 to 2^13 should cost well under 2x
        assert large < 2.0 * small

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            push_rumor(0)
        with pytest.raises(ValueError):
            push_pull_rumor(0)


class TestFlooding:
    def test_flood_max_exact_on_grid(self, rng):
        topo = grid_graph(256)
        values = rng.uniform(0, 100, size=256)
        result = flood_max(topo, values, rng=16)
        assert result.all_correct

    def test_flood_rounds_close_to_diameter_on_ring(self, rng):
        topo = ring_graph(64)
        values = rng.uniform(0, 100, size=64)
        result = flood_max(topo, values, rng=17)
        assert result.all_correct
        assert result.rounds <= 34  # diameter of C_64 is 32

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            flood_max(ring_graph(8), np.zeros(5))


class TestBaselineProperties:
    @given(st.integers(min_value=8, max_value=300), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_push_sum_mass_conservation_reliable(self, n, seed):
        values = np.random.default_rng(seed).uniform(0, 10, size=n)
        result = push_sum(values, rng=seed)
        # With no failures the final estimates are all close to the average;
        # at very small n the O(log n + log 1/eps) budget leaves more
        # variance, so the tolerance is wider there.
        assert result.max_relative_error < (0.05 if n >= 32 else 0.2)

    @given(st.integers(min_value=8, max_value=300), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_push_max_never_invents_values(self, n, seed):
        values = np.random.default_rng(seed).normal(size=n)
        result = push_max(values, rng=seed)
        assert np.all(np.isin(result.estimates, values))
