"""Unit tests for repro.simulator.metrics."""

from __future__ import annotations

import pytest

from repro.simulator.metrics import MetricsCollector


class TestPhases:
    def test_default_phase_exists(self):
        m = MetricsCollector(n=16)
        assert m.current_phase == "default"

    def test_begin_phase_switches_and_creates(self):
        m = MetricsCollector(n=16)
        m.begin_phase("drr")
        assert m.current_phase == "drr"
        m.record_message("probe")
        assert m.phase("drr").messages == 1
        assert m.phase("default").messages == 0

    def test_unknown_phase_lookup_raises(self):
        m = MetricsCollector()
        with pytest.raises(KeyError):
            m.phase("nope")

    def test_phase_order_preserved(self):
        m = MetricsCollector()
        for name in ("a", "b", "c"):
            m.begin_phase(name)
        assert [p.name for p in m.phases()] == ["default", "a", "b", "c"]


class TestRecording:
    def test_record_message_counts_and_words(self):
        m = MetricsCollector(n=1024, value_bits=32)
        m.record_message("push", payload_words=2)
        m.record_message("push", payload_words=1, lost=True)
        assert m.total_messages == 2
        assert m.total_messages_lost == 1
        assert m.total_words == 3
        assert m.messages_by_kind()["push"] == 2

    def test_bulk_record(self):
        m = MetricsCollector(n=64)
        m.record_messages("gossip", 100, payload_words=2)
        assert m.total_messages == 100
        assert m.total_words == 200

    def test_negative_counts_rejected(self):
        m = MetricsCollector()
        with pytest.raises(ValueError):
            m.record_messages("x", -1)
        with pytest.raises(ValueError):
            m.record_round(-2)

    def test_rounds_accumulate_per_phase(self):
        m = MetricsCollector()
        m.record_round(3)
        m.begin_phase("p2")
        m.record_round(4)
        assert m.total_rounds == 7
        assert m.rounds_by_phase() == {"default": 3, "p2": 4}

    def test_total_bits_uses_word_model(self):
        m = MetricsCollector(n=1024, value_bits=32)
        m.record_message("x", payload_words=1)
        # ceil(log2(1024)) + 32 = 42 bits per word
        assert m.total_bits == 42

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(n=0)


class TestMerge:
    def test_merge_folds_phases(self):
        a = MetricsCollector(n=16)
        a.begin_phase("drr")
        a.record_message("probe")
        a.record_round(2)
        b = MetricsCollector(n=16)
        b.begin_phase("drr")
        b.record_message("probe")
        b.begin_phase("gossip")
        b.record_messages("push", 5)
        a.merge(b)
        assert a.phase("drr").messages == 2
        assert a.phase("gossip").messages == 5
        assert a.total_rounds == 2

    def test_as_dict_round_trips_fields(self):
        m = MetricsCollector(n=8)
        m.record_message("x")
        d = m.as_dict()
        assert d["total_messages"] == 1
        assert d["n"] == 8
        assert isinstance(d["phases"], list)
