"""Shared-memory lifecycle guarantees of the sharded backend.

The sharded kernel owns raw OS resources (worker processes and
``/dev/shm`` segments), so correctness is not only "same numbers": a run
must release every segment on success, on a parent-side error, and on a
worker crash — and a clean interpreter exit must produce **zero**
``resource_tracker`` complaints (no "leaked shared_memory" warnings, no
KeyError tracebacks from double-unregistration).
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import run_drr
from repro.simulator.failures import LossOracle
from repro.substrate import BACKENDS, shutdown_pools
from repro.substrate.sharded import (
    _SEGMENT_PREFIX,
    ShardPool,
    ShardWorkerError,
    default_shards,
)

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="needs a POSIX shared-memory filesystem"
)


def our_segments() -> list[str]:
    return [p.name for p in SHM_DIR.iterdir() if p.name.startswith(_SEGMENT_PREFIX)]


@pytest.fixture(autouse=True)
def no_leftover_pools():
    shutdown_pools()
    yield
    shutdown_pools()
    assert our_segments() == []


def run_sharded_drr(n: int = 512):
    kernel = BACKENDS["sharded"]
    with kernel.options(shards=2, min_batch=0):
        return run_drr(n, rng=3, backend="sharded")


class TestCleanup:
    def test_success_path_releases_every_segment(self):
        result = run_sharded_drr()
        assert result.forest.n == 512
        shutdown_pools()
        assert our_segments() == []

    def test_pool_reuse_then_shutdown(self):
        a = run_sharded_drr()
        b = run_sharded_drr()
        assert np.array_equal(a.forest.parent, b.forest.parent)
        shutdown_pools()
        assert our_segments() == []

    def test_worker_exception_tears_down_and_releases(self):
        pool = ShardPool(2)
        try:
            pool.run({"op": "ping", "count": 0})  # healthy barrier first
            with pytest.raises(ShardWorkerError, match="shard worker failed"):
                pool.run({"op": "no-such-op", "count": 0})
            assert not pool.alive()
        finally:
            pool.close()
        assert our_segments() == []

    def test_worker_crash_raises_and_releases(self):
        pool = ShardPool(2)
        try:
            # stage something so the pool owns segments, then kill a worker
            pool.stage({"x": np.arange(1024, dtype=np.int64)})
            pool._workers[0].kill()
            pool._workers[0].join(timeout=10)
            with pytest.raises(ShardWorkerError, match="died mid-round"):
                pool.run({"op": "ping", "count": 0})
        finally:
            pool.close()
        assert our_segments() == []

    def test_closed_pool_refuses_work(self):
        pool = ShardPool(1)
        pool.close()
        with pytest.raises(ShardWorkerError, match="closed"):
            pool.run({"op": "ping", "count": 0})
        pool.close()  # idempotent

    def test_mirror_released_when_source_array_dies(self):
        pool = ShardPool(1)
        try:
            array = np.arange(4096, dtype=np.float64)
            name, dtype, count = pool.mirror(array)
            assert name in our_segments()
            # cached: same object -> same segment, no second copy
            assert pool.mirror(array)[0] == name
            del array
            gc.collect()
            assert name not in our_segments()
        finally:
            pool.close()
        assert our_segments() == []

    def test_non_contiguous_state_arrays_mirror_safely(self):
        """A non-contiguous caller array forces a staging copy; the copy's
        death must not unlink the segment before workers attach (regression:
        the mirror's lifetime guard must track the caller's object)."""
        from repro.simulator import FailureModel

        big = np.random.default_rng(0).random(1024)
        ranks = big[::2]
        assert not ranks.flags["C_CONTIGUOUS"]
        fm = FailureModel(loss_probability=0.2)
        kernel = BACKENDS["sharded"]
        with kernel.options(shards=2, min_batch=0):
            sharded = run_drr(512, rng=3, ranks=ranks, failure_model=fm, backend="sharded")
        reference = run_drr(512, rng=3, ranks=ranks, failure_model=fm, backend="vectorized")
        assert np.array_equal(sharded.forest.parent, reference.forest.parent)
        assert sharded.metrics.total_messages == reference.metrics.total_messages

    def test_pooled_deliver_after_mirror_invalidation(self):
        """New arrays after a GC'd mirror must get fresh mirrors (no stale reads)."""
        pool = ShardPool(1)
        oracle = LossOracle(0.0)
        try:
            for fill in (True, False):
                alive = np.full(64, fill)
                task_alive = pool.mirror(alive)
                targets = np.arange(64, dtype=np.int64)
                arena, specs = pool.stage(
                    {"targets": targets, "__out__": np.zeros(64, dtype=bool)}
                )
                counts = pool.run(
                    {
                        "op": "fates",
                        "count": 64,
                        "arena": arena,
                        "targets": specs["targets"],
                        "senders": 0,
                        "round_index": 0,
                        "nonces": None,
                        "kind": "data",
                        "loss_probability": oracle.loss_probability,
                        "key": oracle.key,
                        "alive": task_alive,
                        "out": specs["__out__"],
                    }
                )
                assert sum(counts) == (64 if fill else 0)
                del alive
                gc.collect()
        finally:
            pool.close()


class TestResourceTracker:
    """A whole interpreter run must end with a silent resource tracker."""

    SCRIPT = """
import numpy as np
from repro.core import run_drr
from repro.substrate import BACKENDS{maybe_shutdown_import}
kernel = BACKENDS["sharded"]
with kernel.options(shards=2, min_batch=0):
    result = run_drr(512, rng=3, backend="sharded")
reference = run_drr(512, rng=3, backend="vectorized")
assert np.array_equal(result.forest.parent, reference.forest.parent)
{maybe_shutdown_call}print("RAN-OK")
"""

    FORKED_WORKER_SCRIPT = """
from concurrent.futures import ProcessPoolExecutor
import numpy as np
import repro
from repro.api import RunSpec

def work(seed):
    spec = RunSpec(protocol="drr", params={"n": 512}, backend="sharded",
                   backend_options={"shards": 2, "min_batch": 0}, seed=seed)
    return repro.run(spec).rounds

if __name__ == "__main__":
    with ProcessPoolExecutor(max_workers=2) as ex:
        print(list(ex.map(work, [5, 6])))
    print("RAN-OK")
"""

    def test_no_tracker_warnings_from_forked_sweep_workers(self, tmp_path):
        """multiprocessing children skip atexit (they leave via os._exit),
        so pool cleanup must also ride multiprocessing's Finalize path —
        this is the regression test for the forked SweepRunner worker."""
        script_path = tmp_path / "forked_worker.py"
        script_path.write_text(self.FORKED_WORKER_SCRIPT)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script_path)],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RAN-OK" in proc.stdout
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert our_segments() == []

    @pytest.mark.parametrize("explicit_shutdown", [True, False], ids=["shutdown", "atexit"])
    def test_no_tracker_warnings_on_exit(self, explicit_shutdown):
        script = self.SCRIPT.format(
            maybe_shutdown_import=", shutdown_pools" if explicit_shutdown else "",
            maybe_shutdown_call="shutdown_pools()\n" if explicit_shutdown else "",
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=180,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RAN-OK" in proc.stdout
        # resource_tracker noise would land on stderr at interpreter exit
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "Traceback" not in proc.stderr
        assert our_segments() == []


class TestConfiguration:
    def test_default_shards_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert default_shards() == 3
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(ValueError):
            default_shards()
        monkeypatch.delenv("REPRO_SHARDS")
        assert default_shards() >= 1

    def test_kernel_options_restore_previous_configuration(self):
        kernel = BACKENDS["sharded"]
        before = (kernel.shards, kernel.min_batch)
        with kernel.options(shards=7, min_batch=123):
            assert kernel.shards == 7
            assert kernel.min_batch == 123
        assert (kernel.shards, kernel.min_batch) == before

    def test_invalid_configuration_rejected(self):
        kernel = BACKENDS["sharded"]
        with pytest.raises(ValueError):
            kernel.configure(shards=0)
        with pytest.raises(ValueError):
            kernel.configure(min_batch=-1)
