"""Result-store-driven figures: render plots purely from stored SQLite rows.

The ROADMAP item this implements: ``drr-gossip results`` renders markdown
tables from the store; this module adds the plotting path (rounds /
messages vs n per algorithm, convergence curves) generated **purely from
stored rows**, so figures never require recomputation — re-rendering after
a crash, on another machine, or with a different format touches only the
SQLite file.

Matplotlib is an optional dependency: everything except :func:`render_plots`
is pure data shaping (and unit-testable without it); the render step imports
matplotlib lazily and raises a :class:`PlottingUnavailableError` with an
actionable message when it is missing.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "PlottingUnavailableError",
    "collect_series",
    "numeric_columns",
    "plan_bench_figures",
    "plan_figures",
    "render_bench_plots",
    "render_plots",
]

#: Categorical columns used to split an experiment's rows into one line per
#: group, in priority order (first match wins).
GROUP_COLUMNS: tuple[str, ...] = ("algorithm", "family", "workload", "aggregate", "variant", "delta")

#: Columns that are identifiers / bookkeeping rather than measurements.
NON_METRIC_COLUMNS: frozenset = frozenset({"n", "rep", "seed"}) | frozenset(GROUP_COLUMNS)


class PlottingUnavailableError(RuntimeError):
    """Raised when the optional matplotlib dependency is missing."""


def _import_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")  # render headless; the CLI writes files
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise PlottingUnavailableError(
            "matplotlib is required for `drr-gossip plot`; install it with "
            "`pip install matplotlib` (the result store itself needs no "
            "recomputation — re-run the command once matplotlib is available)"
        ) from exc
    return plt


def numeric_columns(rows: Sequence[dict]) -> list[str]:
    """Metric columns of a row set: numeric in every row they appear in."""
    columns: list[str] = []
    rejected: set[str] = set()
    for row in rows:
        for key, value in row.items():
            if key in NON_METRIC_COLUMNS or key in rejected:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if key not in columns:
                    columns.append(key)
            else:
                rejected.add(key)
    return [column for column in columns if column not in rejected]


def collect_series(
    rows: Iterable[dict],
    x: str,
    y: str,
    group_by: str | None = None,
) -> dict[str, tuple[list[float], list[float]]]:
    """Shape rows into per-group ``(xs, ys)`` line series.

    Rows sharing a ``(group, x)`` cell — repetitions, multiple stored seeds
    — are averaged; xs come back sorted.  Rows missing ``x`` or ``y`` (or
    holding non-numeric values) are skipped.
    """
    buckets: dict[tuple[str, float], list[float]] = defaultdict(list)
    for row in rows:
        if x not in row or y not in row:
            continue
        try:
            x_value = float(row[x])
            y_value = float(row[y])
        except (TypeError, ValueError):
            continue
        label = str(row.get(group_by, "all")) if group_by else "all"
        buckets[(label, x_value)].append(y_value)
    series: dict[str, tuple[list[float], list[float]]] = {}
    for (label, x_value) in sorted(buckets, key=lambda key: (key[0], key[1])):
        xs, ys = series.setdefault(label, ([], []))
        xs.append(x_value)
        ys.append(float(np.mean(buckets[(label, x_value)])))
    return series


def plan_figures(experiment: str, rows: Sequence[dict]) -> list[dict]:
    """Figure plan for one experiment's stored rows (pure; no matplotlib).

    One figure per metric column, drawn against ``n`` (when present) with
    one line per value of the experiment's categorical column.  Experiments
    without an ``n`` column (ablations) fall back to the categorical column
    on the x axis.
    """
    if not rows:
        return []
    keys = set().union(*(row.keys() for row in rows))
    group_by = next((c for c in GROUP_COLUMNS if c in keys), None)
    plans: list[dict] = []
    if "n" in keys:
        for metric in numeric_columns(rows):
            series = collect_series(rows, "n", metric, group_by)
            if any(len(xs) for xs, _ in series.values()):
                plans.append(
                    {
                        "experiment": experiment,
                        "metric": metric,
                        "xlabel": "n",
                        "series": series,
                        "logx": True,
                    }
                )
    elif group_by is not None:
        for metric in numeric_columns(rows):
            # Labels and values must come from the same rows; repetitions of
            # a label average, like the line-chart path.
            buckets: dict[str, list[float]] = defaultdict(list)
            for row in rows:
                if group_by not in row or metric not in row:
                    continue
                try:
                    buckets[str(row[group_by])].append(float(row[metric]))
                except (TypeError, ValueError):
                    continue
            if buckets:
                labels = list(buckets)
                values = [float(np.mean(buckets[label])) for label in labels]
                plans.append(
                    {
                        "experiment": experiment,
                        "metric": metric,
                        "xlabel": group_by,
                        "bars": (labels, values),
                    }
                )
    return plans


def plan_bench_figures(rows: Sequence[dict]) -> list[dict]:
    """Figure plans for the persisted benchmark trajectory (pure; no matplotlib).

    ``rows`` is the ``BENCH_substrate.json`` list (file order = append
    order = commit order).  One figure per ``(bench, protocol)``, one line
    per backend (sharded lines are split by shard count), wall seconds
    against commit position; x ticks carry the short git SHAs.  Rows
    without a ``wall_s`` (e.g. pure gate rows) are skipped, and repeated
    measurements of the same commit average, matching
    :func:`collect_series`.
    """
    shas: list[str] = []
    positions: dict[str, int] = {}
    for row in rows:
        sha = str(row.get("git_sha") or "?")
        if sha not in positions:
            positions[sha] = len(shas)
            shas.append(sha)

    buckets: dict[tuple[str, str], dict[str, dict[int, list[float]]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(list))
    )
    for row in rows:
        try:
            wall = float(row["wall_s"])
        except (KeyError, TypeError, ValueError):
            continue
        figure = (str(row.get("bench", "bench")), str(row.get("protocol", "?")))
        label = str(row.get("backend", "?"))
        if row.get("shards"):
            label = f"{label}[{row['shards']}]"
        if row.get("n"):
            label = f"{label} n={row['n']}"
        buckets[figure][label][positions[str(row.get("git_sha") or "?")]].append(wall)

    plans: list[dict] = []
    for (bench, protocol), series_buckets in sorted(buckets.items()):
        series: dict[str, tuple[list[float], list[float]]] = {}
        for label, by_position in sorted(series_buckets.items()):
            xs = sorted(by_position)
            series[label] = (
                [float(x) for x in xs],
                [float(np.mean(by_position[x])) for x in xs],
            )
        plans.append(
            {
                "bench": bench,
                "protocol": protocol,
                "metric": "wall_s",
                "xlabel": "commit",
                "xticks": list(shas),
                "series": series,
            }
        )
    return plans


def render_bench_plots(
    rows: Sequence[dict],
    output_dir: str | Path,
    fmt: str = "png",
) -> list[Path]:
    """Render the perf trajectory figures (``drr-gossip results --bench --plot``)."""
    plt = _import_matplotlib()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for plan in plan_bench_figures(rows):
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        for label, (xs, ys) in plan["series"].items():
            ax.plot(xs, ys, marker="o", label=label)
        ticks = plan["xticks"]
        ax.set_xticks(range(len(ticks)))
        ax.set_xticklabels(ticks, rotation=45, ha="right", fontsize=7)
        ax.set_xlabel(plan["xlabel"])
        ax.set_ylabel(plan["metric"])
        ax.set_title(f"{plan['bench']}: {plan['protocol']}", fontsize=10)
        if len(plan["series"]) > 1:
            ax.legend(fontsize=8)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        path = output_dir / f"bench__{plan['bench']}__{plan['protocol']}.{fmt}"
        fig.savefig(path, dpi=150)
        plt.close(fig)
        written.append(path)
    return written


def render_plots(
    store,
    output_dir: str | Path,
    experiment: str | None = None,
    fmt: str = "png",
) -> list[Path]:
    """Render every figure the store's successful rows support.

    ``store`` is a :class:`~repro.orchestration.store.ResultStore`; only
    rows with status ``ok`` contribute.  Returns the written paths.
    """
    plt = _import_matplotlib()
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    rows_by_experiment: dict[str, list[dict]] = defaultdict(list)
    for run in store.query(experiment=experiment, status="ok"):
        rows_by_experiment[run.experiment].extend(run.rows)

    written: list[Path] = []
    for name, rows in sorted(rows_by_experiment.items()):
        for plan in plan_figures(name, rows):
            fig, ax = plt.subplots(figsize=(6.4, 4.2))
            if "series" in plan:
                for label, (xs, ys) in plan["series"].items():
                    ax.plot(xs, ys, marker="o", label=label)
                if plan.get("logx"):
                    ax.set_xscale("log", base=2)
                if len(plan["series"]) > 1:
                    ax.legend(fontsize=8)
            else:
                labels, values = plan["bars"]
                ax.bar(range(len(values)), values)
                ax.set_xticks(range(len(labels)))
                ax.set_xticklabels(labels, rotation=30, ha="right", fontsize=7)
            ax.set_xlabel(plan["xlabel"])
            ax.set_ylabel(plan["metric"])
            ax.set_title(f"{plan['experiment']}: {plan['metric']}", fontsize=10)
            ax.grid(True, alpha=0.3)
            fig.tight_layout()
            path = output_dir / f"{plan['experiment']}__{plan['metric']}.{fmt}"
            fig.savefig(path, dpi=150)
            plt.close(fig)
            written.append(path)
    return written
