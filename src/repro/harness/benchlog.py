"""Persisted benchmark trajectory: ``BENCH_substrate.json``.

The substrate benchmarks (``benchmarks/bench_substrate.py``) append one
machine-readable row per measured run — protocol, ``n``, backend, shard
count, wall time, message/round counts — stamped with the git SHA and a
UTC timestamp.  The file is an append-only JSON list, so the repository
accumulates a perf trajectory across commits (the py_experimenter-style
"keep the measurements, not just the pass/fail" discipline), and
``drr-gossip results --bench`` prints it as a table.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "DEFAULT_BENCH_FILE",
    "append_bench_rows",
    "current_git_sha",
    "filter_bench_rows",
    "format_bench_table",
    "load_bench_rows",
]

DEFAULT_BENCH_FILE = "BENCH_substrate.json"

#: columns printed by :func:`format_bench_table`, in order
_COLUMNS = ("bench", "protocol", "n", "backend", "shards", "wall_s", "messages", "git_sha", "timestamp")


def current_git_sha(cwd: str | Path | None = None) -> str | None:
    """Short SHA of the checked-out commit, or ``None`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def load_bench_rows(path: str | Path = DEFAULT_BENCH_FILE) -> list[dict[str, Any]]:
    """Read the trajectory file (an empty list when it does not exist)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise ValueError(f"{path} must hold a JSON list of bench rows")
    return [row for row in data if isinstance(row, dict)]


def append_bench_rows(
    rows: Sequence[Mapping[str, Any]],
    path: str | Path = DEFAULT_BENCH_FILE,
) -> Path:
    """Append measurement rows (stamped with git SHA + UTC time) to ``path``."""
    path = Path(path)
    stamped = []
    sha = current_git_sha(path.parent if path.parent != Path("") else None)
    now = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    for row in rows:
        entry = dict(row)
        entry.setdefault("git_sha", sha)
        entry.setdefault("timestamp", now)
        stamped.append(entry)
    existing = load_bench_rows(path)
    existing.extend(stamped)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return path


def filter_bench_rows(
    rows: Sequence[Mapping[str, Any]],
    bench_name: str | None = None,
    since_sha: str | None = None,
) -> list[dict[str, Any]]:
    """Filter the trajectory by bench name and/or starting commit.

    ``bench_name`` keeps rows whose ``bench`` field equals the name.
    ``since_sha`` keeps the suffix of the append-ordered trajectory starting
    at the first row stamped with that commit; SHAs prefix-match in both
    directions, so short and full forms are interchangeable.  A ``since_sha``
    that never appears in the trajectory raises ``ValueError`` (a typo'd SHA
    silently matching nothing would read as "no regressions since then").
    """
    filtered = [dict(row) for row in rows]
    if since_sha is not None:
        want = str(since_sha).strip()
        start = None
        for index, row in enumerate(filtered):
            sha = str(row.get("git_sha") or "")
            if sha and (sha.startswith(want) or want.startswith(sha)):
                start = index
                break
        if start is None:
            raise ValueError(f"no bench row is stamped with commit {want!r}")
        filtered = filtered[start:]
    if bench_name is not None:
        filtered = [row for row in filtered if row.get("bench") == bench_name]
    return filtered


def format_bench_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render the trajectory as a fixed-width table (newest rows last)."""
    if not rows:
        return "(no benchmark rows recorded yet)"
    table = [[_cell(row.get(col)) for col in _COLUMNS] for row in rows]
    widths = [
        max(len(_COLUMNS[i]), max(len(line[i]) for line in table))
        for i in range(len(_COLUMNS))
    ]
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(_COLUMNS))
    rule = "  ".join("-" * widths[i] for i in range(len(_COLUMNS)))
    body = "\n".join("  ".join(line[i].ljust(widths[i]) for i in range(len(_COLUMNS))) for line in table)
    return "\n".join((header, rule, body))


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
