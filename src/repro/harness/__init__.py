"""Experiment harness: workloads, drivers, tables, reports, CLI."""

from .experiments import (
    DEFAULT_NS,
    EXPERIMENT_DRIVERS,
    ExperimentResult,
    run_ablation,
    run_chord_comparison,
    run_end_to_end_accuracy,
    run_forest_statistics,
    run_gossip_ave_convergence,
    run_gossip_max_convergence,
    run_local_drr_statistics,
    run_lower_bound_experiment,
    run_phase_breakdown,
    run_table1,
)
from .report import (
    load_json,
    write_csv,
    write_json,
    write_markdown_report,
    write_markdown_report_from_store,
)
from .tables import format_float, format_markdown_table, format_table
from .workloads import WORKLOADS, make_values, workload_names

__all__ = [
    "DEFAULT_NS",
    "EXPERIMENT_DRIVERS",
    "ExperimentResult",
    "run_ablation",
    "run_chord_comparison",
    "run_end_to_end_accuracy",
    "run_forest_statistics",
    "run_gossip_ave_convergence",
    "run_gossip_max_convergence",
    "run_local_drr_statistics",
    "run_lower_bound_experiment",
    "run_phase_breakdown",
    "run_table1",
    "load_json",
    "write_csv",
    "write_json",
    "write_markdown_report",
    "write_markdown_report_from_store",
    "format_float",
    "format_markdown_table",
    "format_table",
    "WORKLOADS",
    "make_values",
    "workload_names",
]
