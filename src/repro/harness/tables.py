"""Plain-text and markdown table rendering for experiment reports.

The harness prints tables in the same spirit as the paper's Table 1: one row
per algorithm (or per network size), columns for time and message complexity,
plus measured-to-predicted ratios.  Keeping the renderer dependency-free
means benchmark output is readable directly in the pytest-benchmark logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_markdown_table", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Compact numeric formatting: integers stay integers, small floats get digits."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return str(int(round(value)))
    if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
        return f"{value:.{digits}g}"
    return f"{value:.{digits}f}"


def _stringify_rows(rows: Iterable[Sequence[object]]) -> list[list[str]]:
    out = []
    for row in rows:
        out.append([cell if isinstance(cell, str) else format_float(cell) for cell in row])
    return out


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = _stringify_rows(rows)
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have exactly one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    str_rows = _stringify_rows(rows)
    headers = [str(h) for h in headers]
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have exactly one cell per header")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
