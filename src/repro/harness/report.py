"""Serialisation of experiment results (JSON / CSV / markdown).

The benchmark harness writes one JSON file per experiment plus an aggregate
markdown report; EXPERIMENTS.md is generated from the same renderer so the
numbers in the documentation can always be regenerated with one command
(``drr-gossip report``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from .experiments import ExperimentResult

__all__ = [
    "write_json",
    "write_csv",
    "write_markdown_report",
    "write_markdown_report_from_store",
    "load_json",
]


def write_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write one experiment result to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.as_dict(), indent=2, default=float) + "\n")
    return path


def load_json(path: str | Path) -> dict:
    """Load a previously written experiment result."""
    return json.loads(Path(path).read_text())


def write_csv(result: ExperimentResult, path: str | Path) -> Path:
    """Write the experiment rows to a CSV file with the experiment's headers."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=result.headers, extrasaction="ignore")
        writer.writeheader()
        for row in result.rows:
            writer.writerow(row)
    return path


def write_markdown_report(results: Iterable[ExperimentResult], path: str | Path, title: str = "Experiment report") -> Path:
    """Write a single markdown document containing every experiment's table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sections = [f"# {title}", ""]
    for result in results:
        sections.append(f"## {result.experiment}")
        sections.append("")
        sections.append(result.description)
        sections.append("")
        sections.append(result.markdown())
        sections.append("")
        if result.notes:
            sections.append("Notes:")
            for note in result.notes:
                sections.append(f"- {note}")
            sections.append("")
        sections.append(f"Parameters: `{json.dumps(result.parameters, default=str)}` (seed {result.seed})")
        sections.append("")
    path.write_text("\n".join(sections))
    return path


def write_markdown_report_from_store(store, path: str | Path, experiment: str | None = None, title: str = "Sweep report") -> Path:
    """Render every successful run persisted in a ResultStore as one report.

    This is how ``drr-gossip results --markdown`` regenerates the paper
    tables from the sweep store without recomputing a single cell; failed
    cells are listed (with their parameter binding) but never silently
    dropped.
    """
    results = store.results(experiment)
    path = write_markdown_report(results, path, title=title)
    failed = store.query(experiment=experiment, status="failed")
    if failed:
        sections = ["", "## Failed cells", ""]
        for run in failed:
            sections.append(f"- `{run.experiment}` params=`{json.dumps(run.params, default=str)}` seed={run.seed}")
        with Path(path).open("a") as handle:
            handle.write("\n".join(sections) + "\n")
    return path
