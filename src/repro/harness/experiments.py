"""Experiment drivers: one function per table/figure of EXPERIMENTS.md.

Every driver returns an :class:`ExperimentResult` holding the raw rows (a
list of plain dicts so they serialise to JSON/CSV without ceremony), the
table headers, and enough metadata (seed, parameters) to replay the run.
The benchmark harness under ``benchmarks/`` and the CLI both call these
functions; the heavy lifting stays importable and unit-testable.

Protocol executions go through the declarative run API: a driver builds a
:class:`~repro.api.RunSpec` per (configuration, repetition) — with a seed
derived exactly the way the old direct calls derived their generators, so
results are preserved bit-for-bit — and reads the uniform
:class:`~repro.api.RunResult` envelope back.  Only the phase-composition
studies (E5/E6 convergence, E9's gossip-over-Chord accounting) still call
phase functions directly: they measure *parts* of a protocol, which is
below the granularity a RunSpec describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..analysis import best_shape, power_law_exponent, theory
from ..analysis.lower_bound import adversarial_push_max_messages
from ..api import RunSpec, TopologySpec
from ..api import run as dispatch_run
from ..core import (
    Aggregate,
    DRRGossipConfig,
    default_probe_budget,
    run_convergecast,
    run_drr,
    run_gossip_ave,
    run_gossip_max,
    run_local_drr,
)
from ..core.drr_gossip import broadcast_root_addresses  # reused forwarding-table builder
from ..orchestration import registry
from ..simulator import FailureModel, MetricsCollector
from ..simulator.rng import RngStream, derive_seed
from ..substrate import run_chord_lookups
from ..topology import ChordNetwork
from .tables import format_markdown_table, format_table
from .workloads import make_values

__all__ = [
    "ExperimentResult",
    "EXPERIMENT_DRIVERS",
    "run_table1",
    "run_forest_statistics",
    "run_gossip_max_convergence",
    "run_gossip_ave_convergence",
    "run_end_to_end_accuracy",
    "run_local_drr_statistics",
    "run_chord_comparison",
    "run_lower_bound_experiment",
    "run_phase_breakdown",
    "run_ablation",
    "run_churn_degradation",
    "DEFAULT_NS",
]

#: Default network-size sweep.  Chosen so the full suite runs on a laptop in
#: minutes while spanning enough doublings for the shape fits to be stable.
DEFAULT_NS: tuple[int, ...] = (256, 512, 1024, 2048, 4096)


@dataclass
class ExperimentResult:
    """A finished experiment: rows + headers + metadata."""

    experiment: str
    description: str
    headers: list[str]
    rows: list[dict]
    seed: int
    parameters: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def table(self) -> str:
        return format_table(self.headers, [[row.get(h, "") for h in self.headers] for row in self.rows], title=self.description)

    def markdown(self) -> str:
        return format_markdown_table(self.headers, [[row.get(h, "") for h in self.headers] for row in self.rows])

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "seed": self.seed,
            "parameters": self.parameters,
            "rows": self.rows,
            "notes": self.notes,
        }

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]


# --------------------------------------------------------------------------- #
# E1: Table 1
# --------------------------------------------------------------------------- #
def run_table1(
    ns: Sequence[int] = DEFAULT_NS,
    repetitions: int = 3,
    seed: int = 1,
    delta: float = 0.0,
    workload: str = "uniform",
    aggregate: Aggregate = Aggregate.AVERAGE,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Measure rounds and messages of the three Table 1 protocols across n.

    For each algorithm and each ``n`` the driver reports mean rounds, mean
    messages, messages per node, and the normalised ratios against the
    paper's bound shapes; the final rows add the fitted growth shape of
    messages/n so "who wins and why" is explicit.
    """
    stream = RngStream(seed)
    failure_model = FailureModel(loss_probability=delta)
    aggregate = Aggregate(aggregate)
    rows: list[dict] = []
    per_algo_msgs: dict[str, list[float]] = {"drr-gossip": [], "uniform-gossip": [], "efficient-gossip": []}
    per_algo_rounds: dict[str, list[float]] = {k: [] for k in per_algo_msgs}

    for n in ns:
        for rep in range(repetitions):
            # One explicit value vector per repetition, shared by all three
            # algorithms (the comparison is on identical inputs); each
            # algorithm runs from its own spec with its own derived seed.
            values = make_values(workload, n, stream.get("table1", n, rep)).tolist()
            drr_agg, uni_protocol = (
                ("average", "push-sum") if aggregate == Aggregate.AVERAGE else ("max", "push-max")
            )
            drr_run = dispatch_run(
                RunSpec(
                    protocol="drr-gossip",
                    params={"values": values, "aggregate": drr_agg},
                    failures=failure_model,
                    backend=backend,
                    seed=derive_seed(seed, "table1-drr", n, rep),
                )
            )
            uni = dispatch_run(
                RunSpec(
                    protocol=uni_protocol,
                    params={"values": values},
                    failures=failure_model,
                    backend=backend,
                    seed=derive_seed(seed, "table1-uni", n, rep),
                )
            )
            eff = dispatch_run(
                RunSpec(
                    protocol="efficient-gossip",
                    params={"values": values, "aggregate": aggregate.value},
                    failures=failure_model,
                    backend=backend,
                    seed=derive_seed(seed, "table1-eff", n, rep),
                )
            )

            for name, rounds, messages, error in (
                ("drr-gossip", drr_run.rounds, drr_run.messages, drr_run.summary["max_rel_error"]),
                ("uniform-gossip", uni.rounds, uni.messages, uni.summary["max_rel_error"]),
                ("efficient-gossip", eff.rounds, eff.messages, eff.summary["max_rel_error"]),
            ):
                rows.append(
                    {
                        "algorithm": name,
                        "n": n,
                        "rep": rep,
                        "rounds": rounds,
                        "messages": messages,
                        "messages_per_node": messages / n,
                        "max_rel_error": error,
                        "rounds_over_logn": rounds / float(theory.log2n(n)),
                        "messages_over_nloglogn": messages / float(theory.drr_message_bound(n)),
                        "messages_over_nlogn": messages / float(theory.uniform_gossip_message_bound(n)),
                    }
                )
            per_algo_msgs["drr-gossip"].append(drr_run.messages / n)
            per_algo_msgs["uniform-gossip"].append(uni.messages / n)
            per_algo_msgs["efficient-gossip"].append(eff.messages / n)
            per_algo_rounds["drr-gossip"].append(drr_run.rounds)
            per_algo_rounds["uniform-gossip"].append(uni.rounds)
            per_algo_rounds["efficient-gossip"].append(eff.rounds)

    notes = []
    n_expanded = [n for n in ns for _ in range(repetitions)]
    # Shape fits only make sense when the sweep spans more than one size.
    if len(set(ns)) >= 2:
        for name, samples in per_algo_msgs.items():
            fit = best_shape(n_expanded, samples, candidates=["constant", "loglog n", "log n", "log^2 n"])
            notes.append(f"messages/node growth for {name}: best shape = {fit.shape_name} (rms {fit.residual_rms:.3g})")
        for name, samples in per_algo_rounds.items():
            fit = best_shape(n_expanded, samples, candidates=["constant", "loglog n", "log n", "log n * loglog n", "log^2 n"])
            notes.append(f"rounds growth for {name}: best shape = {fit.shape_name} (rms {fit.residual_rms:.3g})")

    headers = [
        "algorithm",
        "n",
        "rep",
        "rounds",
        "messages",
        "messages_per_node",
        "max_rel_error",
        "rounds_over_logn",
        "messages_over_nloglogn",
        "messages_over_nlogn",
    ]
    return ExperimentResult(
        experiment="E1-table1",
        description="Table 1: time and message complexity of DRR-gossip vs uniform gossip vs efficient gossip",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "delta": delta, "workload": workload, "aggregate": str(aggregate), "backend": backend},
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# E2-E4: forest statistics and DRR complexity (Theorems 2-4)
# --------------------------------------------------------------------------- #
def run_forest_statistics(
    ns: Sequence[int] = DEFAULT_NS,
    repetitions: int = 5,
    seed: int = 2,
    delta: float = 0.0,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Measure #trees, max tree size, DRR messages and rounds across n."""
    failure_model = FailureModel(loss_probability=delta)
    rows: list[dict] = []
    for n in ns:
        tree_counts, max_sizes, messages, rounds = [], [], [], []
        for rep in range(repetitions):
            result = dispatch_run(
                RunSpec(
                    protocol="drr",
                    params={"n": n},
                    failures=failure_model,
                    backend=backend,
                    seed=derive_seed(seed, "forest", n, rep),
                )
            )
            tree_counts.append(result.summary["trees"])
            max_sizes.append(result.summary["max_tree_size"])
            messages.append(result.messages)
            rounds.append(result.rounds)
        rows.append(
            {
                "n": n,
                "trees_mean": float(np.mean(tree_counts)),
                "trees_over_n_div_logn": float(np.mean(tree_counts) / theory.expected_tree_count(n)),
                "max_tree_size_mean": float(np.mean(max_sizes)),
                "max_tree_size_over_logn": float(np.mean(max_sizes) / theory.expected_max_tree_size(n)),
                "messages_mean": float(np.mean(messages)),
                "messages_per_node": float(np.mean(messages) / n),
                "messages_over_nloglogn": float(np.mean(messages) / theory.drr_message_bound(n)),
                "rounds_mean": float(np.mean(rounds)),
                "rounds_over_logn": float(np.mean(rounds) / theory.drr_round_bound(n)),
            }
        )
    notes = []
    if len(set(ns)) >= 2:
        exponent = power_law_exponent([r["n"] for r in rows], [r["messages_mean"] for r in rows])
        notes.append(f"power-law exponent of total DRR messages vs n: {exponent:.3f} (theory: ~1, i.e. quasi-linear)")
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E2-E4-forest",
        description="Theorems 2-4: DRR forest statistics and complexity",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "delta": delta, "backend": backend},
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# E5: Gossip-max convergence (Theorems 5-6)
# --------------------------------------------------------------------------- #
def run_gossip_max_convergence(
    ns: Sequence[int] = (256, 1024, 4096),
    deltas: Sequence[float] = (0.0, 0.05, 0.1),
    repetitions: int = 5,
    seed: int = 3,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Fraction of roots holding Max after the gossip / sampling procedures."""
    stream = RngStream(seed)
    rows: list[dict] = []
    for n in ns:
        for delta in deltas:
            failure_model = FailureModel(loss_probability=delta)
            frac_after_gossip, frac_after_sampling, msgs = [], [], []
            for rep in range(repetitions):
                rng = stream.get("gmax", n, int(delta * 100), rep)
                values = make_values("uniform", n, rng)
                drr = run_drr(n, rng=rng, failure_model=failure_model, backend=backend)
                roots = drr.forest.roots
                cov = run_convergecast(drr, values, op="max", failure_model=failure_model, rng=rng, backend=backend)
                metrics = MetricsCollector(n=n)
                root_of = broadcast_root_addresses(
                    drr, roots, rng, DRRGossipConfig(failure_model=failure_model, backend=backend), metrics
                )
                gossip = run_gossip_max(
                    roots=roots,
                    root_values=cov.value_vector(roots),
                    root_of=root_of,
                    n=n,
                    failure_model=failure_model,
                    rng=rng,
                    metrics=metrics,
                    backend=backend,
                )
                true_max = float(cov.value_vector(roots).max())
                final = np.array(list(gossip.estimates.values()))
                frac_after_gossip.append(gossip.after_gossip_fraction)
                frac_after_sampling.append(float(np.mean(final >= true_max)))
                msgs.append(metrics.phase("gossip-max").messages)
            rows.append(
                {
                    "n": n,
                    "delta": delta,
                    "roots_with_max_after_gossip": float(np.mean(frac_after_gossip)),
                    "roots_with_max_after_sampling": float(np.mean(frac_after_sampling)),
                    "all_roots_runs_fraction": float(np.mean([f >= 1.0 for f in frac_after_sampling])),
                    "gossip_max_messages_per_node": float(np.mean(msgs) / n),
                }
            )
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E5-gossip-max",
        description="Theorems 5-6: Gossip-max spreads the maximum to all roots",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "deltas": list(deltas), "repetitions": repetitions, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E6: Gossip-ave convergence (Theorems 7 & 10)
# --------------------------------------------------------------------------- #
def run_gossip_ave_convergence(
    ns: Sequence[int] = (256, 1024, 4096),
    workloads: Sequence[str] = ("uniform", "bimodal", "signed", "zero-mean"),
    repetitions: int = 3,
    seed: int = 4,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Relative error at the largest-tree root vs rounds, per workload."""
    stream = RngStream(seed)
    rows: list[dict] = []
    for n in ns:
        for workload in workloads:
            errors_final, rounds_to_1pct = [], []
            for rep in range(repetitions):
                rng = stream.get("gave", n, workload, rep)
                values = make_values(workload, n, rng)
                drr = run_drr(n, rng=rng, backend=backend)
                roots = drr.forest.roots
                cov = run_convergecast(drr, values, op="sum", rng=rng, backend=backend)
                metrics = MetricsCollector(n=n)
                root_of = broadcast_root_addresses(drr, roots, rng, DRRGossipConfig(backend=backend), metrics)
                largest = drr.forest.largest_root()
                ave = run_gossip_ave(
                    roots=roots,
                    local_sums=cov.value_vector(roots),
                    local_weights=cov.weight_vector(roots),
                    root_of=root_of,
                    n=n,
                    rng=rng,
                    metrics=metrics,
                    trace_root=largest,
                    backend=backend,
                )
                truth = float(values.mean())
                history = np.array(ave.history)
                # The paper's criterion: relative error, switching to the
                # absolute criterion when the true average is (numerically)
                # zero; we normalise the absolute criterion by the value
                # scale so "1%" means the same thing across workloads.
                scale = float(np.abs(values).mean())
                if abs(truth) > 1e-9 * max(1.0, scale):
                    errs = np.abs(history - truth) / abs(truth)
                else:
                    errs = np.abs(history - truth) / max(scale, 1e-300)
                errors_final.append(float(errs[-1]))
                below = np.flatnonzero(errs <= 0.01)
                rounds_to_1pct.append(int(below[0]) + 1 if below.size else ave.rounds)
            rows.append(
                {
                    "n": n,
                    "workload": workload,
                    "final_rel_error_mean": float(np.mean(errors_final)),
                    "rounds_to_1pct_mean": float(np.mean(rounds_to_1pct)),
                    "rounds_to_1pct_over_logn": float(np.mean(rounds_to_1pct) / theory.log2n(n)),
                }
            )
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E6-gossip-ave",
        description="Theorems 7 & 10: Gossip-ave convergence at the largest-tree root",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "workloads": list(workloads), "repetitions": repetitions, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E7: end-to-end accuracy of every aggregate
# --------------------------------------------------------------------------- #
def run_end_to_end_accuracy(
    ns: Sequence[int] = (256, 1024),
    repetitions: int = 3,
    seed: int = 5,
    delta: float = 0.0,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Correctness/accuracy and cost of every DRR-gossip aggregate pipeline."""
    failure_model = FailureModel(loss_probability=delta)
    rows: list[dict] = []
    for n in ns:
        for aggregate in (Aggregate.MAX, Aggregate.MIN, Aggregate.AVERAGE, Aggregate.SUM, Aggregate.COUNT, Aggregate.RANK):
            errors, coverages, rounds, messages = [], [], [], []
            for rep in range(repetitions):
                result = dispatch_run(
                    RunSpec(
                        protocol="drr-gossip",
                        params={"n": n, "aggregate": aggregate.value, "workload": "normal"},
                        failures=failure_model,
                        backend=backend,
                        seed=derive_seed(seed, "e2e", n, str(aggregate), rep),
                    )
                )
                errors.append(result.summary["max_rel_error"])
                coverages.append(result.summary["coverage"])
                rounds.append(result.rounds)
                messages.append(result.messages)
            rows.append(
                {
                    "n": n,
                    "aggregate": str(aggregate),
                    "max_rel_error": float(np.max(errors)),
                    "coverage": float(np.mean(coverages)),
                    "rounds_mean": float(np.mean(rounds)),
                    "messages_per_node": float(np.mean(messages) / n),
                }
            )
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E7-end-to-end",
        description="End-to-end DRR-gossip accuracy and cost for every supported aggregate",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "delta": delta, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E8: Local-DRR on sparse graphs (Theorems 11 & 13)
# --------------------------------------------------------------------------- #
def run_local_drr_statistics(
    ns: Sequence[int] = (256, 1024, 4096),
    families: Sequence[str] = ("ring", "grid", "regular4", "hypercube", "erdos-renyi"),
    repetitions: int = 3,
    seed: int = 6,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Tree height and tree count of Local-DRR across graph families."""
    rows: list[dict] = []
    for family in families:
        for n in ns:
            heights, counts, predicted = [], [], []
            for rep in range(repetitions):
                result = dispatch_run(
                    RunSpec(
                        protocol="local-drr",
                        topology=TopologySpec(family=family, n=n),
                        backend=backend,
                        seed=derive_seed(seed, "localdrr", family, n, rep),
                    )
                )
                heights.append(result.summary["max_tree_height"])
                counts.append(result.summary["trees"])
                predicted.append(result.summary["expected_trees"])
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "max_tree_height_mean": float(np.mean(heights)),
                    "height_over_logn": float(np.mean(heights) / theory.log2n(n)),
                    "trees_mean": float(np.mean(counts)),
                    "trees_over_predicted": float(np.mean(counts) / np.mean(predicted)),
                }
            )
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E8-local-drr",
        description="Theorems 11 & 13: Local-DRR tree height and tree count on sparse graphs",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "families": list(families), "repetitions": repetitions, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E9: DRR-gossip vs uniform gossip on Chord (Theorem 14 / Section 4)
# --------------------------------------------------------------------------- #
def run_chord_comparison(
    ns: Sequence[int] = (128, 256, 512, 1024),
    repetitions: int = 3,
    seed: int = 7,
    gossip_rounds_factor: float = 2.0,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Compare message/round cost of DRR-gossip and uniform gossip on Chord.

    Both protocols obtain random peers through Chord identifier routing and
    the measured per-sample hop cost is what enters the totals, so this is a
    measurement of Theorem 14's statement rather than a restatement of it.
    Every phase runs on the execution substrate: Local-DRR and convergecast
    under ``backend``, and each gossip round's peer sampling as one batched
    lookup (all routes advancing one overlay hop per round) through
    :func:`repro.substrate.run_chord_lookups`.
    """
    stream = RngStream(seed)
    rows: list[dict] = []
    for n in ns:
        drr_msgs, uni_msgs, drr_rounds, uni_rounds = [], [], [], []
        for rep in range(repetitions):
            rng = stream.get("chord", n, rep)
            chord = ChordNetwork(n, rng)
            topo = chord.to_topology()
            all_nodes = np.arange(n, dtype=np.int64)
            gossip_rounds = int(math.ceil(gossip_rounds_factor * math.log2(n))) + 4

            # ---- DRR-gossip on Chord -------------------------------------- #
            local = run_local_drr(topo, rng=rng, backend=backend)
            forest = local.forest
            roots = forest.roots
            messages = local.metrics.total_messages
            rounds = local.rounds
            # Phase II: convergecast + root broadcast along tree edges.
            values = make_values("uniform", n, rng)
            cov = run_convergecast(local, values, op="max", rng=rng, backend=backend)
            messages += cov.metrics.phase("convergecast").messages
            rounds += cov.rounds
            depth = forest.depth
            # Phase III: every root samples a random identifier per round and
            # routes to its owner (one batched lookup; measured hops), the
            # owner forwards to its root along its tree path (depth hops).
            max_height = forest.max_tree_height
            for _ in range(gossip_rounds):
                identifiers = rng.integers(0, chord.ring_size, size=roots.size)
                batch = run_chord_lookups(chord, roots, identifiers, rng=rng, backend=backend)
                peers = batch.owners[batch.delivered]
                messages += batch.messages + int(depth[peers].sum())
                rounds += batch.rounds + max_height
            drr_msgs.append(messages)
            drr_rounds.append(rounds)

            # ---- uniform gossip on Chord ----------------------------------- #
            messages_u = 0
            rounds_u = 0
            for _ in range(gossip_rounds):
                # every node samples a random peer through routing and pushes
                identifiers = rng.integers(0, chord.ring_size, size=n)
                batch = run_chord_lookups(chord, all_nodes, identifiers, rng=rng, backend=backend)
                messages_u += batch.messages
                rounds_u += batch.rounds
            uni_msgs.append(messages_u)
            uni_rounds.append(rounds_u)
        rows.append(
            {
                "n": n,
                "drr_messages_per_node": float(np.mean(drr_msgs) / n),
                "uniform_messages_per_node": float(np.mean(uni_msgs) / n),
                "message_ratio_uniform_over_drr": float(np.mean(uni_msgs) / np.mean(drr_msgs)),
                "drr_rounds": float(np.mean(drr_rounds)),
                "uniform_rounds": float(np.mean(uni_rounds)),
                "drr_msgs_over_nlogn": float(np.mean(drr_msgs) / theory.chord_drr_gossip_messages(n)),
                "uniform_msgs_over_nlog2n": float(np.mean(uni_msgs) / theory.chord_uniform_gossip_messages(n)),
            }
        )
    notes = [
        "Theory: uniform/DRR message ratio should grow like log n "
        f"(measured ratios: {[round(r['message_ratio_uniform_over_drr'], 2) for r in rows]})"
    ]
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E9-chord",
        description="Section 4: DRR-gossip vs uniform gossip over Chord",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "backend": backend},
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# E10: address-oblivious lower bound (Theorem 15)
# --------------------------------------------------------------------------- #
def run_lower_bound_experiment(
    ns: Sequence[int] = (128, 256, 512, 1024),
    repetitions: int = 3,
    seed: int = 8,
    target_fraction: float = 0.9,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Messages address-oblivious protocols spend vs the n log n bound."""
    stream = RngStream(seed)
    rows: list[dict] = []
    for n in ns:
        oblivious_msgs, rumor_msgs, drr_msgs = [], [], []
        for rep in range(repetitions):
            rng = stream.get("lb", n, rep)
            adv = adversarial_push_max_messages(n, rng=rng, target_fraction=target_fraction)
            oblivious_msgs.append(adv.messages_to_target)
            rumor = dispatch_run(
                RunSpec(
                    protocol="push-pull-rumor",
                    params={"n": n},
                    backend=backend,
                    seed=derive_seed(seed, "lb-rumor", n, rep),
                )
            )
            rumor_msgs.append(rumor.messages)
            values = make_values("single-spike", n, stream.get("lb-vals", n, rep))
            drr = dispatch_run(
                RunSpec(
                    protocol="drr-gossip",
                    params={"values": values.tolist(), "aggregate": "max"},
                    backend=backend,
                    seed=derive_seed(seed, "lb-drr", n, rep),
                )
            )
            drr_msgs.append(drr.messages)
        rows.append(
            {
                "n": n,
                "oblivious_messages_per_node": float(np.mean(oblivious_msgs) / n),
                "oblivious_over_nlogn": float(np.mean(oblivious_msgs) / theory.address_oblivious_lower_bound(n)),
                "rumor_messages_per_node": float(np.mean(rumor_msgs) / n),
                "rumor_over_nloglogn": float(np.mean(rumor_msgs) / theory.rumor_spreading_message_bound(n)),
                "drr_gossip_messages_per_node": float(np.mean(drr_msgs) / n),
                "drr_over_nloglogn": float(np.mean(drr_msgs) / theory.drr_message_bound(n)),
            }
        )
    n_list = [r["n"] for r in rows]
    notes = [
        "address-oblivious per-node messages best shape: "
        + best_shape(n_list, [r["oblivious_messages_per_node"] for r in rows], candidates=["constant", "loglog n", "log n"]).shape_name,
        "rumor-spreading per-node messages best shape: "
        + best_shape(n_list, [r["rumor_messages_per_node"] for r in rows], candidates=["constant", "loglog n", "log n"]).shape_name,
    ]
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E10-lower-bound",
        description="Theorem 15: address-oblivious aggregation needs Omega(n log n) messages; rumor spreading does not",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "target_fraction": target_fraction, "backend": backend},
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# E11: per-phase message breakdown (Section 3.5 accounting)
# --------------------------------------------------------------------------- #
def run_phase_breakdown(
    ns: Sequence[int] = (256, 1024, 4096),
    repetitions: int = 3,
    seed: int = 9,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Which phase dominates the message budget of DRR-gossip-ave."""
    rows: list[dict] = []
    for n in ns:
        totals: dict[str, list[float]] = {}
        for rep in range(repetitions):
            result = dispatch_run(
                RunSpec(
                    protocol="drr-gossip",
                    params={"n": n, "aggregate": "average", "workload": "uniform"},
                    backend=backend,
                    seed=derive_seed(seed, "breakdown", n, rep),
                )
            )
            for phase, count in result.messages_by_phase.items():
                totals.setdefault(phase, []).append(count)
        total_messages = sum(float(np.mean(v)) for v in totals.values())
        row = {"n": n, "total_messages_per_node": total_messages / n}
        for phase, samples in sorted(totals.items()):
            row[f"{phase}_share"] = float(np.mean(samples)) / total_messages if total_messages else 0.0
        rows.append(row)
    headers = sorted({key for row in rows for key in row}, key=lambda k: (k != "n", k))
    return ExperimentResult(
        experiment="E11-phase-breakdown",
        description=(
            "Section 3.5 accounting: per-phase share of the DRR-gossip-ave message budget "
            "(the DRR share is the only one that grows with n, like log log n; all other phases are O(n))"
        ),
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"ns": list(ns), "repetitions": repetitions, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E12: ablations of the design choices
# --------------------------------------------------------------------------- #
def run_ablation(
    n: int = 2048,
    repetitions: int = 3,
    seed: int = 10,
    backend: str = "vectorized",
) -> ExperimentResult:
    """Ablate the probe budget and the rank domain of DRR."""
    stream = RngStream(seed)
    rows: list[dict] = []
    base_budget = default_probe_budget(n)
    for label, budget in (
        ("paper: log2(n)-1", base_budget),
        ("half budget", max(1, base_budget // 2)),
        ("double budget", base_budget * 2),
        ("single probe", 1),
    ):
        counts, sizes, msgs = [], [], []
        for rep in range(repetitions):
            result = dispatch_run(
                RunSpec(
                    protocol="drr",
                    params={"n": n, "probe_budget": budget},
                    backend=backend,
                    seed=derive_seed(seed, "ablate-budget", label, rep),
                )
            )
            counts.append(result.summary["trees"])
            sizes.append(result.summary["max_tree_size"])
            msgs.append(result.messages)
        rows.append(
            {
                "variant": f"probe budget ({label})",
                "trees": float(np.mean(counts)),
                "max_tree_size": float(np.mean(sizes)),
                "messages_per_node": float(np.mean(msgs) / n),
            }
        )
    # rank domain ablation: continuous [0,1] vs integer [1, n^3] (Section 3.1
    # remarks both give the same asymptotics; integers can tie).
    for label, rank_factory in (
        ("ranks in [0,1]", lambda rng: rng.random(n)),
        ("ranks in [1,n^3]", lambda rng: rng.integers(1, n**3, size=n).astype(float)),
    ):
        counts, sizes, msgs = [], [], []
        for rep in range(repetitions):
            rng = stream.get("ablate-rank", label, rep)
            result = run_drr(n, rng=rng, ranks=rank_factory(rng), backend=backend)
            counts.append(result.forest.root_count)
            sizes.append(result.forest.max_tree_size)
            msgs.append(result.metrics.total_messages)
        rows.append(
            {
                "variant": f"rank domain ({label})",
                "trees": float(np.mean(counts)),
                "max_tree_size": float(np.mean(sizes)),
                "messages_per_node": float(np.mean(msgs) / n),
            }
        )
    headers = ["variant", "trees", "max_tree_size", "messages_per_node"]
    return ExperimentResult(
        experiment="E12-ablation",
        description="Ablations: DRR probe budget and rank domain",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={"n": n, "repetitions": repetitions, "backend": backend},
    )


# --------------------------------------------------------------------------- #
# E13: degradation under mid-run churn
# --------------------------------------------------------------------------- #
def run_churn_degradation(
    n: int = 1024,
    churn_rates: Sequence[float] = (0.0, 0.002, 0.005, 0.01, 0.02),
    repetitions: int = 3,
    seed: int = 13,
    delta: float = 0.0,
    join_rate: float = 0.0,
    backend: str = "vectorized",
) -> ExperimentResult:
    """How gracefully each averaging protocol degrades under node churn.

    Sweeps the per-round crash probability and compares the tree-structured
    DRR-gossip pipeline against address-oblivious push-sum and the
    epoch-restarted push-pull protocol.  The success measure is the
    survivor-mass relative error (worst surviving node against the exact
    aggregate of the survivors) plus the fraction of messages wasted on
    dead recipients.  ``join_rate`` only applies to the protocols whose
    churn capability includes joins (DRR-gossip is crash-only: a node
    cannot rejoin a tree built before it returned).
    """
    protocols: tuple[tuple[str, dict, bool], ...] = (
        ("drr-gossip", {"n": n, "aggregate": "average", "workload": "normal"}, False),
        ("push-sum", {"n": n, "workload": "normal"}, True),
        ("epoch-gossip-ave", {"n": n, "workload": "normal"}, True),
    )
    rows: list[dict] = []
    for churn_rate in churn_rates:
        for protocol, params, supports_joins in protocols:
            failure_model = FailureModel(
                loss_probability=delta,
                churn_rate=churn_rate,
                join_rate=join_rate if supports_joins else 0.0,
            )
            errors, survivors, wasted, rounds, messages = [], [], [], [], []
            for rep in range(repetitions):
                result = dispatch_run(
                    RunSpec(
                        protocol=protocol,
                        params=params,
                        failures=failure_model,
                        backend=backend,
                        seed=derive_seed(seed, "churn", protocol, churn_rate, rep),
                    )
                )
                degradation = result.degradation or {}
                errors.append(
                    degradation.get("survivor_mass_rel_error", result.summary["max_rel_error"])
                )
                survivors.append(degradation.get("survivors", float(n)))
                wasted.append(degradation.get("messages_to_dead", 0.0))
                rounds.append(result.rounds)
                messages.append(result.messages)
            rows.append(
                {
                    "churn_rate": float(churn_rate),
                    "protocol": protocol,
                    "survivor_mass_rel_error": float(np.max(errors)),
                    "survivors_mean": float(np.mean(survivors)),
                    "messages_to_dead_frac": float(np.sum(wasted) / max(1, np.sum(messages))),
                    "rounds_mean": float(np.mean(rounds)),
                    "messages_per_node": float(np.mean(messages) / n),
                }
            )
    headers = list(rows[0].keys())
    return ExperimentResult(
        experiment="E13-churn-degradation",
        description="Degradation of DRR-gossip vs push-sum vs epoch-restarted gossip under churn",
        headers=headers,
        rows=rows,
        seed=seed,
        parameters={
            "n": n,
            "churn_rates": list(churn_rates),
            "repetitions": repetitions,
            "delta": delta,
            "join_rate": join_rate,
            "backend": backend,
        },
    )


# --------------------------------------------------------------------------- #
# registry wiring
# --------------------------------------------------------------------------- #
#: CLI/sweep name -> driver.  Importing this module registers every driver on
#: the default orchestration registry, which is what lets sweep workers (and
#: the CLI) resolve drivers by name alone.
EXPERIMENT_DRIVERS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "forest": run_forest_statistics,
    "gossip-max": run_gossip_max_convergence,
    "gossip-ave": run_gossip_ave_convergence,
    "end-to-end": run_end_to_end_accuracy,
    "local-drr": run_local_drr_statistics,
    "chord": run_chord_comparison,
    "lower-bound": run_lower_bound_experiment,
    "phase-breakdown": run_phase_breakdown,
    "ablation": run_ablation,
    "churn-degradation": run_churn_degradation,
}

for _name, _driver in EXPERIMENT_DRIVERS.items():
    if _name not in registry.DEFAULT_REGISTRY:
        registry.register_experiment(_name, _driver)
