"""Workload (node value) generators for the experiments.

The paper's protocols are value-agnostic, but convergence of the averaging
pipeline and the tie structure of Max/Min depend on the value distribution,
so the experiments sweep several distributions, including the two the paper
calls out explicitly in the Gossip-ave analysis (values of mixed sign and the
zero-average corner case).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["WORKLOADS", "make_values", "workload_names"]


def _uniform(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform values in [0, 100) -- e.g. per-node file counts in a P2P system."""
    return rng.uniform(0.0, 100.0, size=n)


def _normal(n: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian values -- e.g. sensor temperature readings around 20C."""
    return rng.normal(20.0, 5.0, size=n)


def _bimodal(n: int, rng: np.random.Generator) -> np.ndarray:
    """Two clusters -- e.g. battery levels of two hardware generations."""
    low = rng.normal(10.0, 1.0, size=n)
    high = rng.normal(90.0, 1.0, size=n)
    pick = rng.random(n) < 0.5
    return np.where(pick, low, high)


def _signed(n: int, rng: np.random.Generator) -> np.ndarray:
    """Values of mixed sign (the relaxed assumption in Theorem 7's proof)."""
    return rng.normal(0.0, 10.0, size=n) + rng.choice([-50.0, 50.0], size=n)


def _zero_mean(n: int, rng: np.random.Generator) -> np.ndarray:
    """Values whose true average is exactly zero (absolute-error regime)."""
    half = n // 2
    values = np.concatenate([rng.uniform(1.0, 10.0, size=half), -rng.uniform(1.0, 10.0, size=half)])
    if values.size < n:
        values = np.concatenate([values, [0.0]])
    balanced = values - values.mean()
    return rng.permutation(balanced)


def _heavy_tail(n: int, rng: np.random.Generator) -> np.ndarray:
    """Pareto-like values -- e.g. file sizes; stresses Max and Sum pipelines."""
    return (rng.pareto(1.5, size=n) + 1.0) * 10.0


def _constant(n: int, rng: np.random.Generator) -> np.ndarray:
    """All-equal values -- degenerate case where every aggregate is trivial."""
    return np.full(n, 42.0)


def _single_spike(n: int, rng: np.random.Generator) -> np.ndarray:
    """One outlier holds the maximum -- the adversarial placement for Max."""
    values = rng.uniform(0.0, 1.0, size=n)
    values[int(rng.integers(0, n))] = 1000.0
    return values


WORKLOADS: dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "uniform": _uniform,
    "normal": _normal,
    "bimodal": _bimodal,
    "signed": _signed,
    "zero-mean": _zero_mean,
    "heavy-tail": _heavy_tail,
    "constant": _constant,
    "single-spike": _single_spike,
}


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


def make_values(name: str, n: int, rng: np.random.Generator) -> np.ndarray:
    """Generate ``n`` node values from the named workload."""
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        raise ValueError(f"unknown workload {name!r}; known: {workload_names()}") from exc
    if n <= 0:
        raise ValueError("n must be positive")
    return factory(n, rng)
