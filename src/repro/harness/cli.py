"""Command-line interface: ``drr-gossip <command>``.

The CLI is a thin veneer over :mod:`repro.harness.experiments`; it exists so
a downstream user can regenerate any table of EXPERIMENTS.md (or run a quick
aggregate computation) without writing Python.

Examples
--------
Run a quick average computation over synthetic values::

    drr-gossip run --n 4096 --aggregate average

Regenerate the Table 1 measurement at small scale::

    drr-gossip table1 --ns 256 512 1024 --reps 2

Run every experiment and write a markdown report::

    drr-gossip report --output results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from ..core import Aggregate, DRRGossipConfig, drr_gossip
from ..simulator import FailureModel
from . import experiments
from .report import write_json, write_markdown_report
from .workloads import make_values, workload_names

__all__ = ["main", "build_parser"]

#: experiment name -> callable returning an ExperimentResult
EXPERIMENTS = {
    "table1": experiments.run_table1,
    "forest": experiments.run_forest_statistics,
    "gossip-max": experiments.run_gossip_max_convergence,
    "gossip-ave": experiments.run_gossip_ave_convergence,
    "end-to-end": experiments.run_end_to_end_accuracy,
    "local-drr": experiments.run_local_drr_statistics,
    "chord": experiments.run_chord_comparison,
    "lower-bound": experiments.run_lower_bound_experiment,
    "phase-breakdown": experiments.run_phase_breakdown,
    "ablation": experiments.run_ablation,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drr-gossip",
        description="Reproduction harness for 'Optimal Gossip-Based Aggregate Computation' (SPAA 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one DRR-gossip aggregate computation on synthetic values")
    run.add_argument("--n", type=int, default=1024, help="number of nodes")
    run.add_argument("--aggregate", choices=[a.value for a in Aggregate], default="average")
    run.add_argument("--workload", choices=workload_names(), default="uniform")
    run.add_argument("--delta", type=float, default=0.0, help="per-message loss probability")
    run.add_argument("--crash", type=float, default=0.0, help="initial crash fraction")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--query", type=float, default=None, help="query value for the rank aggregate")

    for name, fn in EXPERIMENTS.items():
        exp = sub.add_parser(name, help=fn.__doc__.splitlines()[0] if fn.__doc__ else name)
        exp.add_argument("--seed", type=int, default=None)
        exp.add_argument("--reps", type=int, default=None, help="repetitions per configuration")
        exp.add_argument("--ns", type=int, nargs="+", default=None, help="network sizes to sweep")
        exp.add_argument("--json", type=str, default=None, help="write the result to this JSON path")

    report = sub.add_parser("report", help="run every experiment and write a markdown report")
    report.add_argument("--output", type=str, default="results", help="output directory")
    report.add_argument("--quick", action="store_true", help="use small sweeps (CI-sized)")
    report.add_argument("--seed", type=int, default=1)
    return parser


def _run_single(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    values = make_values(args.workload, args.n, rng)
    config = DRRGossipConfig(
        failure_model=FailureModel(loss_probability=args.delta, crash_fraction=args.crash)
    )
    result = drr_gossip(values, args.aggregate, rng=args.seed, config=config, query=args.query)
    print(f"aggregate        : {result.aggregate.value}")
    print(f"n                : {result.n}")
    print(f"exact value      : {result.exact:.6g}")
    print(f"max rel. error   : {result.max_relative_error:.3g}")
    print(f"coverage         : {result.coverage:.3f}")
    print(f"rounds           : {result.rounds}")
    print(f"messages         : {result.messages} ({result.messages / result.n:.2f} per node)")
    print("messages by phase:")
    for phase, count in result.messages_by_phase().items():
        if count:
            print(f"  {phase:<18} {count}")
    return 0


def _run_experiment(name: str, args: argparse.Namespace) -> int:
    fn = EXPERIMENTS[name]
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.reps is not None:
        if name == "ablation":
            kwargs["repetitions"] = args.reps
        else:
            kwargs["repetitions"] = args.reps
    if args.ns is not None:
        if name == "ablation":
            kwargs["n"] = args.ns[0]
        else:
            kwargs["ns"] = tuple(args.ns)
    result = fn(**kwargs)
    print(result.table())
    for note in result.notes:
        print(f"note: {note}")
    if args.json:
        path = write_json(result, args.json)
        print(f"wrote {path}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    output = Path(args.output)
    quick = args.quick
    results = []
    plans = {
        "table1": {"ns": (256, 512, 1024), "repetitions": 2} if quick else {},
        "forest": {"ns": (256, 512, 1024, 2048), "repetitions": 3} if quick else {},
        "gossip-max": {"ns": (256, 1024), "repetitions": 3} if quick else {},
        "gossip-ave": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "end-to-end": {"ns": (256,), "repetitions": 2} if quick else {},
        "local-drr": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "chord": {"ns": (128, 256), "repetitions": 2} if quick else {},
        "lower-bound": {"ns": (128, 256, 512), "repetitions": 2} if quick else {},
        "phase-breakdown": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "ablation": {"n": 1024, "repetitions": 2} if quick else {},
    }
    for name, kwargs in plans.items():
        print(f"running {name} ...", flush=True)
        result = EXPERIMENTS[name](seed=args.seed, **kwargs)
        write_json(result, output / f"{result.experiment}.json")
        results.append(result)
    path = write_markdown_report(results, output / "report.md")
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run_single(args)
    if args.command == "report":
        return _run_report(args)
    if args.command in EXPERIMENTS:
        return _run_experiment(args.command, args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
