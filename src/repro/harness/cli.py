"""Command-line interface: ``drr-gossip <command>`` (or ``python -m repro``).

The CLI is a thin veneer over :mod:`repro.harness.experiments` and the
orchestration subsystem (:mod:`repro.orchestration`); it exists so a
downstream user can regenerate any table of EXPERIMENTS.md — or run a
paper-scale parameter sweep — without writing Python.  The package does not
need to be installed: ``python -m repro <command>`` behaves identically to
the ``drr-gossip`` entry point.

Examples
--------
Run a quick average computation over synthetic values::

    drr-gossip run --n 4096 --aggregate average

Run any protocol from a declarative spec file, and inspect/validate specs::

    drr-gossip run --spec examples/specs/average.toml
    drr-gossip spec show examples/specs/average.toml
    drr-gossip spec validate examples/specs/*.toml examples/sweeps/*.toml

Regenerate the Table 1 measurement at small scale::

    drr-gossip table1 --ns 256 512 1024 --reps 2

Run every experiment and write a markdown report::

    drr-gossip report --output results/

Run a parameter sweep in parallel, persisting every cell to SQLite (an
immediate re-run skips all completed cells)::

    drr-gossip sweep --experiments table1 forest --ns 256 512 --reps 3 --jobs 4
    drr-gossip sweep --config sweeps/quick.toml --jobs 4

Record where the wall clock goes (phase/primitive/worker telemetry), with a
live heartbeat line and a JSONL event export::

    drr-gossip run --n 100000 --backend sharded --telemetry events.jsonl --heartbeat 5

Inspect and export what the store holds::

    drr-gossip results --markdown results/report.md
    drr-gossip results --failed
    drr-gossip results --telemetry
    drr-gossip results --bench --plot

Render figures purely from stored rows (no recomputation; needs matplotlib)::

    drr-gossip plot --store results/results.sqlite --output results/figures
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

import numpy as np

from ..api import SpecValidationError, load_specs, parse_spec_document, read_spec_document
from ..api import run as run_spec_fn
from ..core import Aggregate, DRRGossipConfig, drr_gossip
from ..observability import (
    NULL_TELEMETRY,
    Heartbeat,
    Telemetry,
    configure_logging,
    format_telemetry,
    use_telemetry,
    write_events_jsonl,
)
from ..substrate import available_backends
from ..orchestration import (
    EXECUTION_BACKENDS,
    QueueWorker,
    ResultStore,
    SweepDefinition,
    SweepRunner,
    cells_from_run_specs,
    expand_cells,
    load_builtin_experiments,
    load_sweep,
    print_progress,
    print_worker_progress,
    signal_shutdown,
)
from ..orchestration.worker import DEFAULT_LEASE_S, DEFAULT_MAX_ATTEMPTS
from ..simulator import FailureModel
from . import experiments  # noqa: F401  (import registers the drivers)
from .report import write_json, write_markdown_report, write_markdown_report_from_store
from .workloads import make_values, workload_names

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: Default location of the sweep result store.
DEFAULT_STORE = "results/results.sqlite"

#: experiment name -> driver callable, backed by the orchestration registry.
#: Kept as a plain mapping for backwards compatibility with callers that did
#: ``from repro.harness.cli import EXPERIMENTS``.
EXPERIMENTS = {spec.name: spec.driver for spec in load_builtin_experiments()}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="drr-gossip",
        description="Reproduction harness for 'Optimal Gossip-Based Aggregate Computation' (SPAA 2010)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v: INFO, -vv: DEBUG) on the `repro` logger hierarchy",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="decrease log verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one DRR-gossip aggregate computation on synthetic values")
    run.add_argument(
        "--spec",
        type=str,
        default=None,
        metavar="FILE",
        help="run from a declarative RunSpec file (.toml/.json); overrides every other run flag",
    )
    run.add_argument("--n", type=int, default=1024, help="number of nodes")
    run.add_argument("--aggregate", choices=[a.value for a in Aggregate], default="average")
    run.add_argument("--workload", choices=workload_names(), default="uniform")
    run.add_argument("--delta", type=float, default=0.0, help="per-message loss probability")
    run.add_argument("--crash", type=float, default=0.0, help="initial crash fraction")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--query", type=float, default=None, help="query value for the rank aggregate")
    run.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="vectorized",
        help="execution substrate: columnar batches (vectorized), multiprocessing "
        "shards over shared memory (sharded), numba-jitted primitives (compiled; "
        "needs the numba extra), or message-level simulation (engine)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="P",
        help="worker processes for the sharded/compiled backends (sharded default: "
        "REPRO_SHARDS or min(4, cpu count); compiled default: 1, i.e. inline jitted "
        "loops; rejected by backends without a configure() seam)",
    )
    run.add_argument(
        "--min-batch",
        type=int,
        default=None,
        metavar="K",
        help="sharded/compiled backends: batches smaller than K run inline in the "
        "parent (0 forces every batch through the pool; rejected by backends "
        "without a configure() seam)",
    )
    run.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="record phase/primitive/worker telemetry and print a summary; with "
        "FILE, also export the events as JSONL (one event per line)",
    )
    run.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECS",
        help="print a live [heartbeat] progress line to stderr every SECS seconds",
    )

    for spec in load_builtin_experiments():
        exp = sub.add_parser(spec.name, help=spec.description)
        exp.add_argument("--seed", type=int, default=None)
        exp.add_argument("--reps", type=int, default=None, help="repetitions per configuration")
        exp.add_argument("--ns", type=int, nargs="+", default=None, help="network sizes to sweep")
        exp.add_argument("--json", type=str, default=None, help="write the result to this JSON path")
        if "backend" in spec.param_names:
            exp.add_argument(
                "--backend",
                choices=list(available_backends()),
                default=None,
                help="execution substrate for this experiment (recorded in the result parameters)",
            )

    report = sub.add_parser("report", help="run every experiment and write a markdown report")
    report.add_argument("--output", type=str, default="results", help="output directory")
    report.add_argument("--quick", action="store_true", help="use small sweeps (CI-sized)")
    report.add_argument("--seed", type=int, default=1)

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter sweep in parallel, persisting every cell to the result store",
    )
    sweep.add_argument("--config", type=str, default=None, help="TOML/JSON sweep definition file")
    sweep.add_argument(
        "--spec",
        type=str,
        default=None,
        metavar="FILE",
        help="TOML/JSON file of protocol RunSpecs; every run becomes one sweep cell "
        "(workers receive the serialised spec, results land in the store under run:<protocol>)",
    )
    sweep.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        metavar="NAME",
        help="experiments to sweep when no --config is given (default: all registered)",
    )
    sweep.add_argument("--ns", type=int, nargs="+", default=None, help="network-size vector for experiments that take one")
    sweep.add_argument("--reps", type=int, default=None, help="repetitions (seeds) per grid point")
    sweep.add_argument("--seed", type=int, default=None, help="master seed (per-cell seeds derive from it)")
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes (1 = run in-process)")
    sweep.add_argument("--store", type=str, default=DEFAULT_STORE, help="SQLite result store path")
    sweep.add_argument(
        "--backend",
        choices=list(available_backends()),
        default=None,
        help="execution substrate for every backend-aware experiment in the sweep "
        "(recorded per row in the result store; default: each driver's default)",
    )
    sweep.add_argument(
        "--no-skip",
        action="store_true",
        help="re-execute cells even when the store already has their results",
    )
    sweep.add_argument(
        "--exec",
        dest="exec_backend",
        choices=list(EXECUTION_BACKENDS),
        default="local",
        help="execution backend: 'local' fans cells over this host's process pool; "
        "'queue' enqueues them in the store's claimable work queue and drains it "
        "with --jobs workers (plus any `drr-gossip worker` processes on hosts "
        "sharing the store)",
    )
    sweep.add_argument(
        "--enqueue-only",
        action="store_true",
        help="with --exec queue: enqueue the cells and exit without draining "
        "(start `drr-gossip worker` processes to execute them)",
    )
    sweep.add_argument(
        "--lease",
        type=float,
        default=DEFAULT_LEASE_S,
        metavar="SECS",
        help="queue backend: heartbeat silence after which a claim is reclaimed",
    )
    sweep.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="queue backend: claims per cell before it is marked failed",
    )

    worker = sub.add_parser(
        "worker",
        help="claim and execute queued sweep cells from a shared store until it drains",
    )
    worker.add_argument("--store", type=str, default=DEFAULT_STORE, help="SQLite result store path")
    worker.add_argument(
        "--worker-id",
        type=str,
        default=None,
        help="claim owner label recorded in the queue (default: host:pid)",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=DEFAULT_LEASE_S,
        metavar="SECS",
        help="heartbeat silence after which another worker's claim is reclaimed",
    )
    worker.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="claims per cell before it is marked failed instead of reclaimed",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECS",
        help="idle sleep between claim attempts while other workers hold cells",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=15.0,
        metavar="SECS",
        help="how often an executing cell refreshes its claim's heartbeat row",
    )
    worker.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECS",
        help="keep polling an empty queue this long before exiting (start workers "
        "before submitting work)",
    )
    worker.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="exit after handling N cells (default: drain the queue)",
    )
    worker.add_argument(
        "--no-skip",
        action="store_true",
        help="execute claims even when the store already has their results "
        "(disables the content-addressed cache check)",
    )
    worker.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="record per-claim/execute/write spans and queue-depth gauges; with "
        "FILE, also export the events as JSONL",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the simulation job API over HTTP: submit specs, poll status, "
        "fetch cached results (see repro.service)",
    )
    serve.add_argument("--store", type=str, default=DEFAULT_STORE, help="SQLite result store path")
    serve.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8642, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="also spawn N queue-worker subprocesses draining the served store "
        "(0 = serve only; point `drr-gossip worker --store` at the same path instead)",
    )
    serve.add_argument(
        "--lease",
        type=float,
        default=DEFAULT_LEASE_S,
        metavar="SECS",
        help="worker pool: heartbeat silence after which a claim is reclaimed",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="worker pool: claims per cell before it is marked failed",
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECS",
        help="worker pool: idle sleep between claim attempts",
    )
    serve.add_argument(
        "--heartbeat",
        type=float,
        default=15.0,
        metavar="SECS",
        help="worker pool: how often an executing cell refreshes its heartbeat",
    )
    serve.add_argument(
        "--telemetry",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="record request counts and per-route latency spans, printed at "
        "shutdown; with FILE, also export the events as JSONL",
    )

    plot = sub.add_parser(
        "plot",
        help="render figures from stored sweep rows (no recomputation; needs matplotlib)",
    )
    plot.add_argument("--store", type=str, default=DEFAULT_STORE, help="SQLite result store path")
    plot.add_argument("--experiment", type=str, default=None, help="restrict to one experiment")
    plot.add_argument("--output", type=str, default="results/figures", help="output directory")
    plot.add_argument("--format", dest="fmt", choices=["png", "svg", "pdf"], default="png")

    spec = sub.add_parser("spec", help="inspect and validate declarative spec/sweep files")
    spec_sub = spec.add_subparsers(dest="spec_command", required=True)
    spec_show = spec_sub.add_parser("show", help="print a spec file's canonical JSON and hashes")
    spec_show.add_argument("files", nargs="+", metavar="FILE", help="RunSpec .toml/.json files")
    spec_validate = spec_sub.add_parser(
        "validate",
        help="validate RunSpec files and sweep definition files against their schemas",
    )
    spec_validate.add_argument("files", nargs="+", metavar="FILE", help="spec or sweep files")

    results = sub.add_parser("results", help="summarise/export the sweep result store")
    results.add_argument("--store", type=str, default=DEFAULT_STORE, help="SQLite result store path")
    results.add_argument("--experiment", type=str, default=None, help="restrict to one experiment")
    results.add_argument("--failed", action="store_true", help="show failed cells with their tracebacks")
    results.add_argument("--json", type=str, default=None, help="export stored runs to this JSON path")
    results.add_argument("--markdown", type=str, default=None, help="write a markdown report from the store")
    results.add_argument(
        "--bench",
        action="store_true",
        help="print the persisted benchmark trajectory (BENCH_substrate.json) instead of the store summary",
    )
    results.add_argument(
        "--bench-file",
        type=str,
        default=None,
        metavar="PATH",
        help="trajectory file for --bench (default: BENCH_substrate.json in the current directory)",
    )
    results.add_argument(
        "--bench-name",
        type=str,
        default=None,
        metavar="NAME",
        help="with --bench: restrict to rows of one bench (e.g. drr_gossip_scale)",
    )
    results.add_argument(
        "--since",
        type=str,
        default=None,
        metavar="SHA",
        help="with --bench: drop rows recorded before the first row stamped with "
        "this commit (short or full SHA)",
    )
    results.add_argument(
        "--telemetry",
        action="store_true",
        help="show stored per-run telemetry summaries and live heartbeat rows",
    )
    results.add_argument(
        "--plot",
        action="store_true",
        help="with --bench: render the perf trajectory (wall_s vs commit, one "
        "figure per bench/protocol; needs matplotlib)",
    )
    results.add_argument(
        "--plot-output",
        type=str,
        default="results/figures",
        metavar="DIR",
        help="output directory for --plot figures",
    )
    results.add_argument(
        "--queue",
        action="store_true",
        help="show the distributed work queue: per-experiment state counts and "
        "claims whose heartbeats have gone stale",
    )
    results.add_argument(
        "--stale-after",
        type=float,
        default=DEFAULT_LEASE_S,
        metavar="SECS",
        help="with --queue: flag claims with no heartbeat for this long as stale",
    )
    return parser


def _heartbeat_for(args: argparse.Namespace, telemetry, label: str):
    """A started :class:`Heartbeat` for ``--heartbeat``, or a null context."""
    import contextlib

    if args.heartbeat is None:
        return contextlib.nullcontext()
    try:
        return Heartbeat(telemetry, interval_s=args.heartbeat, label=label)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _export_events(telemetry_doc: dict, target: str, append: bool) -> None:
    if target:  # `--telemetry FILE` (bare `--telemetry` is const="")
        path = write_events_jsonl(telemetry_doc, target, append=append)
        verb = "appended" if append else "wrote"
        print(f"{verb} telemetry events: {path}")


def _run_single(args: argparse.Namespace) -> int:
    if args.shards is not None or args.min_batch is not None:
        from ..substrate import BACKENDS

        # Any backend exposing a configure() seam takes the sharding knobs
        # (today: sharded and compiled).
        configure = getattr(BACKENDS.get(args.backend), "configure", None)
        if configure is None:
            print(
                f"error: backend {args.backend!r} takes no --shards/--min-batch",
                file=sys.stderr,
            )
            return 2
        try:
            configure(shards=args.shards, min_batch=args.min_batch)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    want_telemetry = args.telemetry is not None
    if args.spec is not None:
        try:
            specs = load_specs(args.spec)
        except (SpecValidationError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for index, spec in enumerate(specs):
            if index:
                print()
            if want_telemetry:
                spec = spec.with_telemetry()
            print(f"spec             : {spec.describe()}")
            tel = Telemetry() if want_telemetry else None
            with _heartbeat_for(args, tel if tel is not None else NULL_TELEMETRY, spec.protocol):
                envelope = run_spec_fn(spec, telemetry=tel)
            print(envelope.describe())
            if want_telemetry and envelope.telemetry is not None:
                _export_events(envelope.telemetry, args.telemetry, append=index > 0)
        return 0
    rng = np.random.default_rng(args.seed)
    values = make_values(args.workload, args.n, rng)
    config = DRRGossipConfig(
        failure_model=FailureModel(loss_probability=args.delta, crash_fraction=args.crash),
        backend=args.backend,
    )
    tel = Telemetry() if want_telemetry else NULL_TELEMETRY
    with _heartbeat_for(args, tel, args.aggregate):
        with use_telemetry(tel):
            result = drr_gossip(
                values, args.aggregate, rng=args.seed, config=config, query=args.query
            )
    print(f"aggregate        : {result.aggregate.value}")
    print(f"backend          : {config.backend}")
    print(f"n                : {result.n}")
    print(f"exact value      : {result.exact:.6g}")
    print(f"max rel. error   : {result.max_relative_error:.3g}")
    print(f"coverage         : {result.coverage:.3f}")
    print(f"rounds           : {result.rounds}")
    print(f"messages         : {result.messages} ({result.messages / result.n:.2f} per node)")
    print("messages by phase:")
    for phase, count in result.messages_by_phase().items():
        if count:
            print(f"  {phase:<18} {count}")
    if want_telemetry:
        doc = tel.as_dict()
        print(format_telemetry(doc))
        _export_events(doc, args.telemetry, append=False)
    return 0


def _run_experiment(name: str, args: argparse.Namespace) -> int:
    fn = EXPERIMENTS[name]
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.reps is not None:
        kwargs["repetitions"] = args.reps
    if getattr(args, "backend", None) is not None:
        kwargs["backend"] = args.backend
    if args.ns is not None:
        if name == "ablation":
            kwargs["n"] = args.ns[0]
        else:
            kwargs["ns"] = tuple(args.ns)
    result = fn(**kwargs)
    print(result.table())
    for note in result.notes:
        print(f"note: {note}")
    if args.json:
        path = write_json(result, args.json)
        print(f"wrote {path}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    output = Path(args.output)
    quick = args.quick
    results = []
    plans = {
        "table1": {"ns": (256, 512, 1024), "repetitions": 2} if quick else {},
        "forest": {"ns": (256, 512, 1024, 2048), "repetitions": 3} if quick else {},
        "gossip-max": {"ns": (256, 1024), "repetitions": 3} if quick else {},
        "gossip-ave": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "end-to-end": {"ns": (256,), "repetitions": 2} if quick else {},
        "local-drr": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "chord": {"ns": (128, 256), "repetitions": 2} if quick else {},
        "lower-bound": {"ns": (128, 256, 512), "repetitions": 2} if quick else {},
        "phase-breakdown": {"ns": (256, 1024), "repetitions": 2} if quick else {},
        "ablation": {"n": 1024, "repetitions": 2} if quick else {},
    }
    for name, kwargs in plans.items():
        print(f"running {name} ...", flush=True)
        result = EXPERIMENTS[name](seed=args.seed, **kwargs)
        write_json(result, output / f"{result.experiment}.json")
        results.append(result)
    path = write_markdown_report(results, output / "report.md")
    print(f"wrote {path}")
    return 0


def _apply_backend(definition: SweepDefinition, backend: str) -> SweepDefinition:
    """Pin the substrate backend on every backend-aware plan of a sweep."""
    registry = load_builtin_experiments()
    plans = []
    for plan in definition.plans:
        spec = registry.get(plan.experiment)
        if "backend" in spec.param_names:
            plan = dataclasses.replace(plan, grid={**plan.grid, "backend": backend})
        plans.append(plan)
    return dataclasses.replace(definition, plans=tuple(plans))


def _enqueue_cells(args: argparse.Namespace, cells, name: str) -> int:
    """``sweep --exec queue --enqueue-only``: fill the queue, let workers drain it."""
    with ResultStore(args.store) as store:
        done = store.completed_cells() if not args.no_skip else set()
        entries: list[tuple[str, str, int, str]] = []
        seen: set[str] = set()
        completed = 0
        for cell in cells:
            if cell.key in done:
                completed += 1
                continue
            spec = cell.spec_json()
            if spec in seen:
                continue
            seen.add(spec)
            entries.append((cell.experiment, cell.param_hash, cell.seed, spec))
        enqueued = store.enqueue_cells(entries)
        depth = store.queue_depth()
    duplicates = len(cells) - completed - len(entries)
    print(
        f"sweep {name!r}: enqueued {enqueued} of {len(cells)} cell(s) "
        f"({completed} already completed, {duplicates} duplicate specs)"
    )
    print(
        f"queue: {depth['pending']} pending, {depth['claimed']} claimed, "
        f"{depth['done']} done, {depth['failed']} failed"
    )
    print(f"drain with: drr-gossip worker --store {args.store}")
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    try:
        if args.jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
        if args.enqueue_only and args.exec_backend != "queue":
            raise ValueError("--enqueue-only requires --exec queue")
        if args.spec:
            if args.config or args.experiments or args.ns or args.seed is not None:
                raise ValueError(
                    "--spec cannot be combined with --config/--experiments/--ns/--seed; "
                    "each run spec carries its own seed (--reps derives extra seeds from it)"
                )
            specs = load_specs(args.spec)
            if args.backend is not None:
                specs = [spec.with_backend(args.backend) for spec in specs]
            cells = cells_from_run_specs(specs, repetitions=args.reps if args.reps is not None else 1)
            if args.enqueue_only:
                return _enqueue_cells(args, cells, Path(args.spec).stem)
            with ResultStore(args.store) as store:
                runner = SweepRunner(
                    store,
                    jobs=args.jobs,
                    backend=args.exec_backend,
                    skip_completed=not args.no_skip,
                    lease_s=args.lease,
                    max_attempts=args.max_attempts,
                    progress=print_progress,
                )
                report = runner.run_cells(cells, name=Path(args.spec).stem)
            print(report.summary())
            print(f"store: {args.store}")
            return 0 if report.failed == 0 else 1
        if args.config:
            if args.experiments or args.ns:
                raise ValueError(
                    "--config cannot be combined with --experiments/--ns; "
                    "put the grid in the sweep file (--seed/--reps do override it)"
                )
            definition = load_sweep(args.config)
            overrides = {}
            if args.seed is not None:
                overrides["seed"] = args.seed
            if args.reps is not None:
                # --reps wins over BOTH the sweep-level default and any
                # per-experiment repetitions in the file.
                overrides["repetitions"] = args.reps
                overrides["plans"] = tuple(
                    dataclasses.replace(plan, repetitions=None) for plan in definition.plans
                )
            if overrides:
                definition = dataclasses.replace(definition, **overrides)
        else:
            names = args.experiments or [spec.name for spec in load_builtin_experiments()]
            grid = {"ns": tuple(args.ns)} if args.ns else {}
            definition = SweepDefinition.from_experiments(
                names,
                grid=grid,
                seed=args.seed if args.seed is not None else 1,
                repetitions=args.reps if args.reps is not None else 1,
            )
        if args.backend is not None:
            definition = _apply_backend(definition, args.backend)
        cells = expand_cells(definition)  # validate experiment names and grids up front
        if args.enqueue_only:
            return _enqueue_cells(args, cells, definition.name)
    except (KeyError, ValueError, TypeError, OSError) as exc:
        message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    with ResultStore(args.store) as store:
        runner = SweepRunner(
            store,
            jobs=args.jobs,
            backend=args.exec_backend,
            skip_completed=not args.no_skip,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            progress=print_progress,
        )
        report = runner.run_cells(cells, name=definition.name)
    print(report.summary())
    print(f"store: {args.store}")
    return 0 if report.failed == 0 else 1


def _run_worker(args: argparse.Namespace) -> int:
    if args.store != ":memory:" and not Path(args.store).exists():
        print(
            f"no result store at {args.store} "
            "(enqueue cells with `drr-gossip sweep --exec queue --enqueue-only` first)",
            file=sys.stderr,
        )
        return 1
    want_telemetry = args.telemetry is not None
    tel = Telemetry() if want_telemetry else None
    try:
        with ResultStore(args.store) as store:
            worker = QueueWorker(
                store,
                worker_id=args.worker_id,
                lease_s=args.lease,
                max_attempts=args.max_attempts,
                poll_interval_s=args.poll,
                heartbeat_interval_s=args.heartbeat,
                linger_s=args.linger,
                max_cells=args.max_cells,
                skip_completed=not args.no_skip,
                telemetry=tel,
                progress=print_worker_progress,
            )
            # SIGTERM/SIGINT mid-cell releases the claim (back to pending,
            # heartbeat deleted) and ends the drain with report.stopped set.
            with signal_shutdown():
                report = worker.drain()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if report.stopped:
        print(f"stopped by {report.stopped}: in-flight claim released back to pending")
    if want_telemetry and tel is not None:
        doc = tel.as_dict()
        print(format_telemetry(doc))
        _export_events(doc, args.telemetry, append=False)
    return 0 if report.failed == 0 and report.exhausted == 0 else 1


def _run_serve(args: argparse.Namespace) -> int:
    from ..service import ServiceServer, WorkerPool

    if args.workers < 0:
        print(f"error: --workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    want_telemetry = args.telemetry is not None
    tel = Telemetry() if want_telemetry else None
    try:
        server = ServiceServer(args.store, host=args.host, port=args.port, telemetry=tel)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    pool = None
    if args.workers:
        pool = WorkerPool(
            args.store,
            args.workers,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            poll_s=args.poll,
            heartbeat_s=args.heartbeat,
        )
    print(f"serving {args.store} at {server.url}", flush=True)
    print(
        f"workers: {args.workers} local"
        + ("" if args.workers else f" (add some: drr-gossip worker --store {args.store} --linger inf)"),
        flush=True,
    )
    stopped = ""
    try:
        if pool is not None:
            pool.start()
        # The same SIGTERM/SIGINT-to-exception bridge the workers use; here
        # it just breaks serve_forever so shutdown runs.
        with signal_shutdown():
            server.serve_forever()
    except BaseException as exc:  # WorkerShutdown / KeyboardInterrupt
        if isinstance(exc, (SystemExit,)):
            raise
        stopped = getattr(exc, "signal_name", type(exc).__name__)
    finally:
        if pool is not None:
            pool.stop()
        server.shutdown()
    print(f"service stopped ({stopped or 'shutdown'})")
    if want_telemetry and tel is not None:
        doc = tel.as_dict()
        print(format_telemetry(doc))
        _export_events(doc, args.telemetry, append=False)
    return 0


def _print_queue_view(store: ResultStore, experiment: str | None, stale_after: float) -> None:
    counts = store.queue_counts(experiment)
    if not counts:
        print("queue: empty (enqueue cells with `drr-gossip sweep --exec queue --enqueue-only`)")
        return
    print(f"{'experiment':<20} {'pending':>8} {'claimed':>8} {'done':>6} {'failed':>6}")
    for row in counts:
        print(
            f"{row['experiment']:<20} {row['pending']:>8} {row['claimed']:>8} "
            f"{row['done']:>6} {row['failed']:>6}"
        )
    stale = store.stale_claims(stale_after)
    if experiment is not None:
        stale = [row for row in stale if row["experiment"] == experiment]
    if stale:
        print(f"\nstale claims (no heartbeat for > {stale_after:.0f}s; workers reclaim these):")
        print(f"{'experiment':<20} {'param_hash':<14} {'seed':>5} {'attempt':>7} {'age':>8}  owner")
        for row in stale:
            print(
                f"{row['experiment']:<20} {row['param_hash'][:12]:<14} {row['seed']:>5} "
                f"{row['attempt']:>7} {row['age_s']:>7.1f}s  {row['owner'] or '-'}"
            )


def _validate_one_spec_file(path: Path) -> str:
    """Validate one file (parsed once); returns a human summary line or raises.

    A document with sweep-shaped top-level keys validates as a sweep
    definition (grids expanded against the experiment registry); anything
    else must be a RunSpec document.
    """
    data = read_spec_document(path)
    if isinstance(data, dict) and ({"sweep", "experiment", "experiments"} & set(data)):
        definition = SweepDefinition.from_dict(data, name=path.stem)
        cells = expand_cells(definition)
        return f"{path}: ok (sweep {definition.name!r}, {len(cells)} cells)"
    specs = parse_spec_document(data, str(path))
    protocols = ", ".join(sorted({spec.protocol for spec in specs}))
    return f"{path}: ok ({len(specs)} run spec(s): {protocols})"


def _run_spec_tools(args: argparse.Namespace) -> int:
    failures = 0
    for name in args.files:
        path = Path(name)
        try:
            if args.spec_command == "validate":
                print(_validate_one_spec_file(path))
                continue
            # show: print each spec's canonical JSON + identity hashes
            for spec in load_specs(path):
                print(f"# {path} — {spec.describe()}")
                print(f"# spec_hash={spec.spec_hash()} param_hash={spec.param_hash()}")
                print(spec.to_json(indent=2))
        except (SpecValidationError, KeyError, ValueError, TypeError, OSError) as exc:
            message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else str(exc)
            prefix = "" if message.startswith(str(path)) else f"{path}: "
            print(f"error: {prefix}{message}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} of {len(args.files)} file(s) failed validation", file=sys.stderr)
    return 0 if failures == 0 else 1


def _run_plot(args: argparse.Namespace) -> int:
    from .plotting import PlottingUnavailableError, render_plots

    if not Path(args.store).exists():
        print(f"no result store at {args.store} (run `drr-gossip sweep` first)", file=sys.stderr)
        return 1
    with ResultStore(args.store) as store:
        try:
            written = render_plots(store, args.output, experiment=args.experiment, fmt=args.fmt)
        except PlottingUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if not written:
        print("no completed rows to plot (check --experiment / run a sweep first)", file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


def _run_results(args: argparse.Namespace) -> int:
    if args.bench:
        from .benchlog import (
            DEFAULT_BENCH_FILE,
            filter_bench_rows,
            format_bench_table,
            load_bench_rows,
        )

        bench_path = Path(args.bench_file) if args.bench_file else Path(DEFAULT_BENCH_FILE)
        try:
            rows = load_bench_rows(bench_path)
            if rows:
                rows = filter_bench_rows(
                    rows, bench_name=args.bench_name, since_sha=args.since
                )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not rows:
            print(
                f"no benchmark rows at {bench_path} "
                "(run `python benchmarks/bench_substrate.py` to record some; "
                "--bench-name/--since narrow the table)",
            )
            return 0
        print(format_bench_table(rows))
        if args.plot:
            from .plotting import PlottingUnavailableError, render_bench_plots

            try:
                written = render_bench_plots(rows, args.plot_output)
            except PlottingUnavailableError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            if not written:
                print("no plottable bench rows (need wall_s values)", file=sys.stderr)
                return 1
            for path in written:
                print(f"wrote {path}")
        return 0
    if args.plot:
        print("error: --plot requires --bench (the store path is `drr-gossip plot`)", file=sys.stderr)
        return 2
    if args.bench_name is not None or args.since is not None:
        print("error: --bench-name/--since require --bench", file=sys.stderr)
        return 2
    if not Path(args.store).exists():
        print(f"no result store at {args.store} (run `drr-gossip sweep` first)", file=sys.stderr)
        return 1
    if args.queue:
        with ResultStore(args.store) as store:
            _print_queue_view(store, args.experiment, args.stale_after)
        return 0
    with ResultStore(args.store) as store:
        summary = store.summary()
        if args.experiment is not None:
            summary = [row for row in summary if row["experiment"] == args.experiment]
        print(f"{'experiment':<20} {'backend':<11} {'completed':>9} {'failed':>6} {'runtime':>9}")
        for row in summary:
            print(
                f"{row['experiment']:<20} {row.get('backend') or '-':<11} "
                f"{row['completed'] or 0:>9} "
                f"{row['failed'] or 0:>6} {row['total_duration_s'] or 0.0:>8.1f}s"
            )
        if args.failed:
            for run in store.query(experiment=args.experiment, status="failed"):
                print(f"\nFAILED {run.experiment} params={run.params} seed={run.seed}")
                print(run.error)
        if args.telemetry:
            shown = 0
            for run in store.query(experiment=args.experiment, status="ok"):
                if run.telemetry is None:
                    continue
                shown += 1
                print(f"\n{run.experiment} params={run.params} seed={run.seed}")
                print(format_telemetry(run.telemetry))
            if not shown:
                print("\n(no stored rows carry telemetry; sweep specs with telemetry=true record it)")
            beats = store.heartbeats(experiment=args.experiment)
            if beats:
                print(f"\n{'experiment':<20} {'param_hash':<14} {'seed':>5} {'age':>8}  worker")
                for beat in beats:
                    print(
                        f"{beat['experiment']:<20} {beat['param_hash'][:12]:<14} "
                        f"{beat['seed']:>5} {beat['age_s']:>7.1f}s  {beat['worker'] or '-'}"
                    )
        if args.json:
            path = store.export_json(args.json, args.experiment)
            print(f"wrote {path}")
        if args.markdown:
            path = write_markdown_report_from_store(store, args.markdown, experiment=args.experiment)
            print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    if args.command == "run":
        return _run_single(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "spec":
        return _run_spec_tools(args)
    if args.command == "plot":
        return _run_plot(args)
    if args.command == "results":
        return _run_results(args)
    if args.command in EXPERIMENTS:
        return _run_experiment(args.command, args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
