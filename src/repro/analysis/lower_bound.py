"""Empirical counterpart of the Section 5 lower bound (Theorem 15).

Theorem 15 says: any *address-oblivious* algorithm that computes Max over
``n`` nodes needs ``Omega(n log n)`` messages, no matter how many rounds it
takes or how long its messages are.  The proof is an adversary argument --
the value that too few nodes have heard about is declared the maximum -- so
the natural measurement is:

    run an address-oblivious protocol, charge every transmission, and count
    how many messages are spent before a 1 - o(1) fraction of the nodes has
    (directly or transitively) heard about *every* node's value; in
    particular, before they have heard about the value the adversary will
    pick, which we place by re-running the knowledge analysis afterwards and
    choosing the value that spread slowest.

For push-style protocols "knowing the Max" requires having heard (possibly
transitively) from the true maximum's holder, so we track knowledge sets
implicitly: a node knows value ``j`` iff there is a temporal path of
delivered messages from ``j`` to it.  The adversary picks the value with the
smallest knowledge spread, which is exactly the quantity the proof bounds.

The experiment (E10) contrasts three curves:

* messages spent by uniform push-max until the adversarially chosen value is
  known by 90% of nodes -- grows like ``n log n``;
* the same for push-pull rumor spreading of a *single known* rumor -- grows
  like ``n log log n`` (the gap the paper proves is real);
* messages of DRR-gossip-max (non-address-oblivious) -- ``n log log n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.rng import make_rng

__all__ = ["AdversarialSpreadResult", "adversarial_push_max_messages", "knowledge_spread_after"]


@dataclass
class AdversarialSpreadResult:
    """Messages an address-oblivious push protocol spends under the adversary."""

    n: int
    #: messages spent until the adversarially chosen value reached the target
    #: fraction of nodes (np.inf if it never did within the round budget)
    messages_to_target: float
    #: total rounds executed
    rounds: int
    #: fraction of nodes that knew the adversarial value at the end
    final_fraction: float
    #: the fraction-of-nodes-knowing curve of the adversarial value per round
    curve: np.ndarray


def adversarial_push_max_messages(
    n: int,
    rng: np.random.Generator | int | None = None,
    target_fraction: float = 0.9,
    max_rounds: int | None = None,
) -> AdversarialSpreadResult:
    """Measure messages an address-oblivious push protocol needs under the adversary.

    The protocol simulated is the natural address-oblivious Max protocol
    (every node pushes everything it knows to a uniformly random node each
    round; message *size* is unlimited, as Theorem 15 allows).  We track, for
    every origin node ``j``, how many nodes have transitively heard from
    ``j``; the adversary's value is the one known by the fewest nodes, and
    the reported message count is the number of transmissions made until
    that value -- i.e. the *worst* value -- reached ``target_fraction`` of
    the nodes.  This is exactly the quantity the Theorem 15 adversary forces
    every correct algorithm to pay for.
    """
    if n <= 1:
        raise ValueError("the lower-bound experiment needs n >= 2")
    rng = make_rng(rng)
    max_rounds = max_rounds if max_rounds is not None else int(math.ceil(4 * math.log2(n) + 16))

    # knowledge[i, j] == True when node i has (transitively) heard about j's value.
    knowledge = np.eye(n, dtype=bool)
    messages_cumulative = 0
    # Track, per round, the minimum over origins j of the fraction of nodes
    # knowing j -- the adversary's best choice at that point in time.
    worst_fraction_curve: list[float] = []
    messages_at_round: list[int] = []

    for _ in range(max_rounds):
        targets = rng.integers(0, n, size=n)
        messages_cumulative += n
        # Every node pushes its entire knowledge set; the recipient's
        # knowledge becomes the union.  (Arbitrarily long messages: this is
        # the strongest address-oblivious protocol the theorem allows.)
        snapshot = knowledge.copy()
        np.logical_or.at(knowledge, targets, snapshot)
        worst_fraction_curve.append(float(knowledge.mean(axis=0).min()))
        messages_at_round.append(messages_cumulative)
        if worst_fraction_curve[-1] >= 1.0:
            break

    curve = np.asarray(worst_fraction_curve)
    reached = np.flatnonzero(curve >= target_fraction)
    if reached.size:
        messages_to_target = float(messages_at_round[int(reached[0])])
    else:
        messages_to_target = float("inf")
    return AdversarialSpreadResult(
        n=n,
        messages_to_target=messages_to_target,
        rounds=len(worst_fraction_curve),
        final_fraction=float(curve[-1]) if curve.size else 0.0,
        curve=curve,
    )


def knowledge_spread_after(
    n: int,
    rounds: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Fraction of nodes knowing each origin's value after ``rounds`` of push.

    Helper used by tests of the stage/typical-value machinery: returns the
    per-origin knowledge fractions so one can verify the proof's qualitative
    claim that after ``o(log n)`` rounds (hence ``o(n log n)`` messages) many
    values remain "typical" (known to very few nodes).
    """
    if n <= 1:
        raise ValueError("n must be at least 2")
    rng = make_rng(rng)
    knowledge = np.eye(n, dtype=bool)
    for _ in range(rounds):
        targets = rng.integers(0, n, size=n)
        snapshot = knowledge.copy()
        np.logical_or.at(knowledge, targets, snapshot)
    return knowledge.mean(axis=0)
