"""Statistical helpers shared by the experiments.

Most claims in the paper hold "with high probability", i.e. with probability
``1 - n^{-alpha}``.  Empirically we estimate the success frequency over
repeated trials and report a Wilson confidence interval; an experiment
"reproduces" a whp claim when the lower confidence bound stays above the
target frequency across the ``n`` sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "wilson_interval", "whp_satisfied", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary used in experiment reports."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(samples: Sequence[float]) -> SummaryStats:
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because whp experiments often
    observe 0 failures in a modest number of trials, where the Wald interval
    degenerates to [1, 1].
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= successes <= trials):
        raise ValueError("successes must lie in [0, trials]")
    # two-sided z for the requested confidence (0.95 -> 1.96), via the
    # rational approximation of the normal quantile to avoid a SciPy import.
    z = _normal_quantile(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (phat + z**2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z**2 / (4 * trials**2))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not (0.0 < p < 1.0):
        raise ValueError("p must be in (0, 1)")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > phigh:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


def whp_satisfied(successes: int, trials: int, target: float = 0.9, confidence: float = 0.95) -> bool:
    """True when the lower Wilson bound of the success rate exceeds ``target``."""
    lower, _ = wilson_interval(successes, trials, confidence)
    return lower >= target


def bootstrap_mean_ci(
    samples: Sequence[float],
    rng: np.random.Generator,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    lo = float(np.quantile(means, (1 - confidence) / 2))
    hi = float(np.quantile(means, 1 - (1 - confidence) / 2))
    return (lo, hi)
