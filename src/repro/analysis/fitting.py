"""Scaling-law fitting for the complexity experiments.

The reproduction never tries to match the paper's constants (there are none
to match -- the results are asymptotic); instead it checks *shapes*:

* the per-node message count of DRR-gossip should grow like ``log log n``
  while uniform gossip grows like ``log n`` -- checked by fitting
  ``messages/n`` against candidate shape functions and comparing residuals;
* round counts should grow like ``log n`` (DRR-gossip, uniform gossip) or
  ``log n log log n`` (efficient gossip);
* forest statistics should track ``n / log n`` and ``log n``.

Everything here is ordinary least squares on small design matrices; SciPy is
not required (NumPy's ``lstsq`` suffices), keeping the analysis importable in
minimal environments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["FitResult", "fit_shape", "best_shape", "power_law_exponent", "CANDIDATE_SHAPES"]


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of ``y ~ a * shape(n) + b``."""

    shape_name: str
    slope: float
    intercept: float
    r_squared: float
    residual_rms: float

    def predict(self, shape_values: np.ndarray) -> np.ndarray:
        return self.slope * shape_values + self.intercept


#: Candidate growth shapes for normalised quantities (per-node messages,
#: rounds, ...).  Keys are the names experiments report.
CANDIDATE_SHAPES: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "constant": lambda n: np.ones_like(np.asarray(n, dtype=float)),
    "loglog n": lambda n: np.maximum(1.0, np.log2(np.maximum(1.0, np.log2(np.asarray(n, dtype=float))))),
    "log n": lambda n: np.log2(np.asarray(n, dtype=float)),
    "log^2 n": lambda n: np.log2(np.asarray(n, dtype=float)) ** 2,
    "log n * loglog n": lambda n: np.log2(np.asarray(n, dtype=float))
    * np.maximum(1.0, np.log2(np.maximum(1.0, np.log2(np.asarray(n, dtype=float))))),
    "sqrt n": lambda n: np.sqrt(np.asarray(n, dtype=float)),
    "n": lambda n: np.asarray(n, dtype=float),
    "n / log n": lambda n: np.asarray(n, dtype=float) / np.log2(np.asarray(n, dtype=float)),
}


def fit_shape(
    n_values: Sequence[float],
    y_values: Sequence[float],
    shape: str | Callable[[np.ndarray], np.ndarray],
) -> FitResult:
    """Fit ``y = a * shape(n) + b`` by least squares and report goodness of fit."""
    n_arr = np.asarray(n_values, dtype=float)
    y_arr = np.asarray(y_values, dtype=float)
    if n_arr.size != y_arr.size or n_arr.size < 2:
        raise ValueError("need at least two (n, y) pairs of equal length")
    if callable(shape):
        shape_fn, shape_name = shape, getattr(shape, "__name__", "custom")
    else:
        shape_name = shape
        try:
            shape_fn = CANDIDATE_SHAPES[shape]
        except KeyError as exc:
            raise ValueError(f"unknown shape {shape!r}; known: {sorted(CANDIDATE_SHAPES)}") from exc
    x = shape_fn(n_arr)
    design = np.column_stack([x, np.ones_like(x)])
    coeffs, *_ = np.linalg.lstsq(design, y_arr, rcond=None)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    predictions = design @ coeffs
    residuals = y_arr - predictions
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y_arr - y_arr.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(
        shape_name=shape_name,
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        residual_rms=float(np.sqrt(ss_res / n_arr.size)),
    )


def best_shape(
    n_values: Sequence[float],
    y_values: Sequence[float],
    candidates: Mapping[str, Callable[[np.ndarray], np.ndarray]] | Sequence[str] | None = None,
) -> FitResult:
    """Return the candidate shape with the lowest residual RMS.

    Used by the Table 1 experiment to answer "does messages/n grow like
    ``log n`` or like ``log log n``?" without hand-tuning constants.  Shapes
    whose fitted slope is negative are discarded (a complexity curve cannot
    genuinely decrease in ``n``; a negative slope just means the shape is a
    poor explanation).
    """
    if candidates is None:
        names = list(CANDIDATE_SHAPES)
    elif isinstance(candidates, Mapping):
        names = list(candidates)
    else:
        names = list(candidates)
    fits = []
    for name in names:
        fit = fit_shape(n_values, y_values, name)
        if fit.slope >= 0 or name == "constant":
            fits.append(fit)
    if not fits:
        raise ValueError("no admissible shape fits the data")
    return min(fits, key=lambda f: f.residual_rms)


def power_law_exponent(n_values: Sequence[float], y_values: Sequence[float]) -> float:
    """Fit ``y ~ C * n^alpha`` by log-log least squares and return ``alpha``.

    Useful as a coarse check: total messages of every protocol here should
    have an exponent very close to 1 (they are all ``n * polylog``), while
    total work of a quadratic strawman would show exponent ~2.
    """
    n_arr = np.asarray(n_values, dtype=float)
    y_arr = np.asarray(y_values, dtype=float)
    if (n_arr <= 0).any() or (y_arr <= 0).any():
        raise ValueError("power-law fitting needs strictly positive data")
    slope, _ = np.polyfit(np.log(n_arr), np.log(y_arr), 1)
    return float(slope)
