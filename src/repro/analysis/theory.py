"""The paper's theoretical predictions, as executable functions.

Every experiment in EXPERIMENTS.md compares a measured quantity against the
corresponding asymptotic bound.  Because the bounds are stated up to
constants, the comparisons are done through *normalised ratios* (measured /
predicted-shape) whose flatness across the ``n`` sweep is the reproduction
criterion, and through fitted exponents (see :mod:`repro.analysis.fitting`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "log2n",
    "loglog2n",
    "expected_tree_count",
    "expected_max_tree_size",
    "drr_message_bound",
    "drr_round_bound",
    "drr_gossip_message_bound",
    "drr_gossip_round_bound",
    "uniform_gossip_message_bound",
    "uniform_gossip_round_bound",
    "efficient_gossip_message_bound",
    "efficient_gossip_round_bound",
    "address_oblivious_lower_bound",
    "rumor_spreading_message_bound",
    "chord_drr_gossip_messages",
    "chord_uniform_gossip_messages",
    "paper_gossip_max_rounds",
    "TABLE1_ROWS",
]


def log2n(n: int | np.ndarray) -> np.ndarray:
    """``log2(n)`` with the convention that it is at least 1."""
    return np.maximum(1.0, np.log2(np.maximum(2, np.asarray(n, dtype=float))))


def loglog2n(n: int | np.ndarray) -> np.ndarray:
    """``log2(log2(n))`` with the convention that it is at least 1."""
    return np.maximum(1.0, np.log2(log2n(n)))


# --------------------------------------------------------------------------- #
# Phase I structure (Theorems 2-4)
# --------------------------------------------------------------------------- #
def expected_tree_count(n: int | np.ndarray) -> np.ndarray:
    """Theorem 2: ``E[#trees] = Theta(n / log n)``.

    The proof's integral gives ``E[X] = sum_i (i/n)^{log n - 1} ~ n / log n``
    (natural units cancel in the ratio, so we normalise by ``n / log2 n``).
    """
    n = np.asarray(n, dtype=float)
    return n / log2n(n)


def expected_max_tree_size(n: int | np.ndarray) -> np.ndarray:
    """Theorem 3: every tree has ``O(log n)`` nodes whp."""
    return log2n(n)


def drr_message_bound(n: int | np.ndarray) -> np.ndarray:
    """Theorem 4: DRR uses ``O(n log log n)`` messages."""
    n = np.asarray(n, dtype=float)
    return n * loglog2n(n)


def drr_round_bound(n: int | np.ndarray) -> np.ndarray:
    """Theorem 4: DRR takes ``O(log n)`` rounds."""
    return log2n(n)


# --------------------------------------------------------------------------- #
# full protocols (Table 1)
# --------------------------------------------------------------------------- #
def drr_gossip_message_bound(n: int | np.ndarray) -> np.ndarray:
    """DRR-gossip: ``O(n log log n)`` messages (Section 3.5)."""
    return drr_message_bound(n)


def drr_gossip_round_bound(n: int | np.ndarray) -> np.ndarray:
    """DRR-gossip: ``O(log n)`` rounds (Section 3.5)."""
    return log2n(n)


def uniform_gossip_message_bound(n: int | np.ndarray) -> np.ndarray:
    """Kempe et al. uniform gossip: ``O(n log n)`` messages."""
    n = np.asarray(n, dtype=float)
    return n * log2n(n)


def uniform_gossip_round_bound(n: int | np.ndarray) -> np.ndarray:
    """Kempe et al. uniform gossip: ``O(log n)`` rounds."""
    return log2n(n)


def efficient_gossip_message_bound(n: int | np.ndarray) -> np.ndarray:
    """Kashyap et al. efficient gossip: ``O(n log log n)`` messages."""
    return drr_message_bound(n)


def efficient_gossip_round_bound(n: int | np.ndarray) -> np.ndarray:
    """Kashyap et al. efficient gossip: ``O(log n log log n)`` rounds."""
    return log2n(n) * loglog2n(n)


#: Table 1 of the paper, as data: algorithm -> (round bound, message bound,
#: address-oblivious?).  The harness renders the analytical table next to the
#: measured one.
TABLE1_ROWS = {
    "efficient gossip [Kashyap et al.]": (
        "O(log n log log n)",
        "O(n log log n)",
        "no",
        efficient_gossip_round_bound,
        efficient_gossip_message_bound,
    ),
    "uniform gossip [Kempe et al.]": (
        "O(log n)",
        "O(n log n)",
        "yes",
        uniform_gossip_round_bound,
        uniform_gossip_message_bound,
    ),
    "DRR-gossip [this paper]": (
        "O(log n)",
        "O(n log log n)",
        "no",
        drr_gossip_round_bound,
        drr_gossip_message_bound,
    ),
}


# --------------------------------------------------------------------------- #
# lower bounds and rumor spreading (Section 5 context)
# --------------------------------------------------------------------------- #
def address_oblivious_lower_bound(n: int | np.ndarray) -> np.ndarray:
    """Theorem 15: address-oblivious aggregate computation needs ``Omega(n log n)`` messages."""
    return uniform_gossip_message_bound(n)


def rumor_spreading_message_bound(n: int | np.ndarray) -> np.ndarray:
    """Karp et al.: rumor spreading is achievable with ``O(n log log n)`` messages."""
    return drr_message_bound(n)


# --------------------------------------------------------------------------- #
# sparse networks / Chord (Section 4)
# --------------------------------------------------------------------------- #
def chord_drr_gossip_messages(n: int | np.ndarray) -> np.ndarray:
    """Section 4: DRR-gossip on Chord takes ``O(n log n)`` messages whp."""
    return uniform_gossip_message_bound(n)


def chord_uniform_gossip_messages(n: int | np.ndarray) -> np.ndarray:
    """Section 4: uniform gossip on Chord takes ``O(n log^2 n)`` messages whp."""
    n = np.asarray(n, dtype=float)
    return n * log2n(n) ** 2


def paper_gossip_max_rounds(n: int, delta: float = 0.0, c: float = 0.5) -> int:
    """The paper-exact round budget of Theorem 5.

    ``8 log n / (1 - rho) + log_beta n`` where ``rho <= 2 delta`` and
    ``beta = 1 + (1 - c')(1 - rho)/2`` with ``c' = 2c``.  Used by the
    ablation experiment that contrasts the paper's constants with the
    practical defaults in :mod:`repro.core.gossip_max`.
    """
    if not (0.0 < c < 0.5 + 1e-9):
        raise ValueError("c must lie in (0, 0.5]")
    rho = min(0.999, 2.0 * delta)
    c_prime = 2.0 * c
    beta = 1.0 + 0.5 * (1.0 - c_prime) * (1.0 - rho)
    log_n = math.log2(max(2, n))
    first = 8.0 * log_n / max(1e-9, 1.0 - rho)
    second = math.log(max(2, n)) / math.log(beta) if beta > 1.0 else 8.0 * log_n
    return int(math.ceil(first + second))
