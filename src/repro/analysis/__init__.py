"""Analysis toolkit: theory predictions, scaling fits, statistics, lower bound."""

from .fitting import CANDIDATE_SHAPES, FitResult, best_shape, fit_shape, power_law_exponent
from .lower_bound import (
    AdversarialSpreadResult,
    adversarial_push_max_messages,
    knowledge_spread_after,
)
from .statistics import (
    SummaryStats,
    bootstrap_mean_ci,
    summarize,
    whp_satisfied,
    wilson_interval,
)
from . import theory

__all__ = [
    "CANDIDATE_SHAPES",
    "FitResult",
    "best_shape",
    "fit_shape",
    "power_law_exponent",
    "AdversarialSpreadResult",
    "adversarial_push_max_messages",
    "knowledge_spread_after",
    "SummaryStats",
    "bootstrap_mean_ci",
    "summarize",
    "whp_satisfied",
    "wilson_interval",
    "theory",
]
