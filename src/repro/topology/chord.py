"""Chord DHT topology and routing (Stoica et al., SIGCOMM 2001).

Section 4 of the paper instantiates the sparse-network result on Chord:
every node has degree ``O(log n)`` (its finger table), greedy finger routing
reaches any identifier in ``O(log n)`` hops, and King et al.'s protocol lets
a node sample a *uniformly random* peer in ``O(log n)`` time and messages.
With those two primitives the paper concludes DRR-gossip on Chord costs
``O(log^2 n)`` time and ``O(n log n)`` messages, versus uniform gossip's
``O(log^2 n)`` time and ``O(n log^2 n)`` messages.

This module provides:

* :class:`ChordNetwork` -- node identifiers on a ``2^m`` ring, successor and
  finger tables, and the induced undirected :class:`~repro.topology.base.Topology`;
* greedy lookup with hop/message accounting (used as the routing protocol of
  Theorem 14, so ``T`` and ``M`` are measured rather than assumed);
* random peer sampling by routing to a uniformly random identifier, the
  standard simulation-friendly stand-in for King et al.'s unbiased sampler
  (the bias from non-uniform arc lengths vanishes when node ids are placed
  uniformly; the experiments use the hop/message cost, which is the quantity
  Theorem 14 consumes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import Topology

__all__ = ["ChordNetwork", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Outcome of routing to an identifier on the Chord ring."""

    #: node id (index into 0..n-1) responsible for the target identifier
    owner: int
    #: number of overlay hops the greedy routing used
    hops: int
    #: number of messages spent (one per hop; a reply costs one more if
    #: ``count_reply`` was requested)
    messages: int
    #: the sequence of node indices visited, starting at the source
    path: tuple[int, ...]


class ChordNetwork:
    """A Chord ring over ``n`` nodes with ``m``-bit identifiers.

    Parameters
    ----------
    n:
        Number of participating nodes.
    rng:
        Generator used to place nodes on the identifier ring.
    m:
        Identifier width in bits.  Defaults to ``ceil(log2 n) + 3`` which
        keeps collisions negligible while staying close to the usual
        ``m = Theta(log n)`` setting.
    """

    def __init__(self, n: int, rng: np.random.Generator, m: int | None = None) -> None:
        if n < 2:
            raise ValueError("a Chord ring needs at least two nodes")
        self.n = int(n)
        self.m = int(m) if m is not None else max(3, math.ceil(math.log2(n)) + 3)
        self.ring_size = 1 << self.m
        if self.ring_size < 2 * n:
            raise ValueError(
                f"identifier space 2^{self.m} is too small for {n} nodes"
            )
        ids = rng.choice(self.ring_size, size=self.n, replace=False)
        ids.sort()
        #: identifier of each node index, sorted ascending so that node index
        #: order equals ring order (convenient and loses no generality).
        self.identifiers = ids.astype(np.int64)
        self._build_fingers()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _successor_index_of_identifier(self, identifier: int) -> int:
        """Index of the node whose identifier is the first >= identifier (mod ring)."""
        pos = int(np.searchsorted(self.identifiers, identifier % self.ring_size, side="left"))
        return pos % self.n

    def _build_fingers(self) -> None:
        # finger[i][k] = index of successor(identifier_i + 2^k); one
        # searchsorted per finger column keeps construction columnar.
        fingers = np.empty((self.n, self.m), dtype=np.int64)
        for k in range(self.m):
            targets = (self.identifiers + (np.int64(1) << np.int64(k))) % self.ring_size
            fingers[:, k] = np.searchsorted(self.identifiers, targets, side="left") % self.n
        self.fingers = fingers
        self.successors = fingers[:, 0].copy()
        self.predecessors = np.empty(self.n, dtype=np.int64)
        self.predecessors[self.successors] = np.arange(self.n)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def finger_table(self, node_index: int) -> np.ndarray:
        return self.fingers[node_index]

    def neighbors(self, node_index: int) -> tuple[int, ...]:
        """Distinct overlay neighbours: fingers plus predecessor (undirected view)."""
        neigh = set(int(f) for f in self.fingers[node_index])
        neigh.add(int(self.predecessors[node_index]))
        neigh.discard(node_index)
        return tuple(sorted(neigh))

    def to_topology(self) -> Topology:
        """Undirected overlay graph (used for Local-DRR on Chord)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.m + 1)
        dst = np.concatenate([self.fingers, self.predecessors[:, None]], axis=1).ravel()
        keep = src != dst  # a node's finger may be itself on tiny rings
        return Topology.from_edge_arrays("chord", self.n, src[keep], dst[keep])

    def average_degree(self) -> float:
        return float(np.mean([len(self.neighbors(u)) for u in range(self.n)]))

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _in_interval(self, x: int, lo: int, hi: int) -> bool:
        """True if identifier x lies in the half-open ring interval (lo, hi]."""
        x, lo, hi = x % self.ring_size, lo % self.ring_size, hi % self.ring_size
        if lo < hi:
            return lo < x <= hi
        return x > lo or x <= hi

    def lookup(self, source: int, target_identifier: int, count_reply: bool = False) -> LookupResult:
        """Greedy finger routing from ``source`` to ``target_identifier``.

        Each hop forwards the query to the finger that most closely precedes
        the target; the node whose successor owns the target delivers it.
        Hop count is ``O(log n)`` whp, which the Chord experiments verify
        empirically rather than assume.
        """
        if not (0 <= source < self.n):
            raise ValueError(f"source index {source} out of range")
        target = target_identifier % self.ring_size
        current = source
        path = [source]
        hops = 0
        # Greedy routing terminates in <= m + n hops even in degenerate cases;
        # the loop guard protects against bugs, not expected behaviour.
        for _ in range(self.m + self.n):
            succ = int(self.successors[current])
            if self._in_interval(target, int(self.identifiers[current]), int(self.identifiers[succ])):
                if succ != current:
                    hops += 1
                    path.append(succ)
                owner = succ
                messages = hops + (1 if count_reply else 0)
                return LookupResult(owner=owner, hops=hops, messages=messages, path=tuple(path))
            nxt = self._closest_preceding_finger(current, target)
            if nxt == current:
                nxt = succ
            hops += 1
            current = nxt
            path.append(current)
        raise RuntimeError("Chord lookup failed to converge; finger tables are inconsistent")

    def _closest_preceding_finger(self, node_index: int, target: int) -> int:
        base = int(self.identifiers[node_index])
        for k in range(self.m - 1, -1, -1):
            finger = int(self.fingers[node_index, k])
            fid = int(self.identifiers[finger])
            if self._in_interval(fid, base, target - 1):
                return finger
        return node_index

    # ------------------------------------------------------------------ #
    # random peer sampling (Assumption 2 of Theorem 14)
    # ------------------------------------------------------------------ #
    def sample_random_peer(self, source: int, rng: np.random.Generator) -> LookupResult:
        """Sample a peer by routing to a uniformly random identifier.

        The owner of a uniformly random identifier is a random node weighted
        by arc length; with uniformly placed identifiers the weights are
        exchangeable, and the cost (the quantity Theorem 14 needs: ``T``
        rounds, ``M`` messages per sample) is the greedy-routing cost.
        Experiments that need *exactly* uniform samples re-draw with
        rejection using :meth:`sample_uniform_peer`.
        """
        target = int(rng.integers(0, self.ring_size))
        return self.lookup(source, target)

    def sample_uniform_peer(self, source: int, rng: np.random.Generator) -> tuple[int, int, int]:
        """Exactly uniform peer sample with routing-cost accounting.

        Implements the standard rejection trick on top of identifier routing
        (accept the owner with probability proportional to the inverse of its
        arc length, normalised by the maximum arc).  Returns
        ``(peer_index, total_hops, total_messages)``.
        """
        # arcs[j] = length of the identifier arc *owned by* node j, i.e. the
        # gap between its predecessor's identifier and its own (the owner of
        # a random identifier is its successor on the ring).
        arcs = np.diff(
            np.concatenate([[self.identifiers[-1] - self.ring_size], self.identifiers])
        )
        total_hops = 0
        total_messages = 0
        # Expected number of attempts is max_arc / mean_arc = O(log n) whp,
        # but typically a small constant; cap attempts defensively.
        for _ in range(64 * self.m):
            result = self.sample_random_peer(source, rng)
            total_hops += result.hops
            total_messages += result.messages
            # Accept with probability min_arc / arc(owner): the owner of a
            # random identifier is hit with probability proportional to its
            # arc, so this rejection step makes the accepted peer exactly
            # uniform over nodes.
            threshold = float(arcs.min()) / float(arcs[result.owner])
            if rng.random() < threshold:
                return result.owner, total_hops, total_messages
        return result.owner, total_hops, total_messages  # pragma: no cover - defensive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChordNetwork(n={self.n}, m={self.m}, avg_degree={self.average_degree():.1f})"
