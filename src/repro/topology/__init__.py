"""Topology substrate: graph families, Chord DHT, and peer sampling."""

from .base import Topology
from .chord import ChordNetwork, LookupResult
from .graphs import (
    GRAPH_FAMILIES,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    make_graph,
    random_regular_graph,
    ring_graph,
)
from .sampling import ChordSampler, RandomWalkSampler, SampleCost, uniformity_l1_error

__all__ = [
    "Topology",
    "ChordNetwork",
    "LookupResult",
    "GRAPH_FAMILIES",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "hypercube_graph",
    "make_graph",
    "random_regular_graph",
    "ring_graph",
    "ChordSampler",
    "RandomWalkSampler",
    "SampleCost",
    "uniformity_l1_error",
]
