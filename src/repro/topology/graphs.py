"""Graph generators for the sparse-network experiments.

Section 4 of the paper analyses Local-DRR on *arbitrary* undirected graphs and
instantiates the result on d-regular graphs and on Chord.  The experiments in
this repository exercise the theorems on a spread of standard topologies so
that the ``O(log n)`` tree-height bound (Theorem 11) and the
``sum 1/(d_i+1)`` tree-count bound (Theorem 13) are visibly topology
independent:

* ring / cycle (d = 2, the worst case for tree height intuition),
* 2-D torus grid (d = 4),
* hypercube (d = log n),
* random d-regular graphs,
* Erdős–Rényi G(n, p) graphs (non-regular degrees),
* complete graph (sanity overlap with the Sections 2-3 model).

Chord gets its own module because it also needs routing (finger tables).
"""

from __future__ import annotations

import math

import numpy as np

from .base import Topology

__all__ = [
    "complete_graph",
    "ring_graph",
    "grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "GRAPH_FAMILIES",
    "make_graph",
]


def complete_graph(n: int) -> Topology:
    """Complete graph K_n: the model of Sections 2-3."""
    if n <= 0:
        raise ValueError("n must be positive")
    u, v = np.triu_indices(n, k=1)
    return Topology.from_edge_arrays("complete", n, u, v)


def ring_graph(n: int) -> Topology:
    """Cycle C_n; every node has degree 2 (n >= 3)."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    ids = np.arange(n, dtype=np.int64)
    return Topology.from_edge_arrays("ring", n, ids, (ids + 1) % n)


def grid_graph(n: int) -> Topology:
    """2-D torus on the largest r x c factorisation of n (degree 4).

    ``n`` must factor as r*c with r, c >= 3 so the torus has no duplicate
    edges; perfect squares are the usual choice in the experiments.
    """
    root = int(math.isqrt(n))
    rows, cols = 0, 0
    for r in range(root, 2, -1):
        if n % r == 0 and n // r >= 3:
            rows, cols = r, n // r
            break
    if rows == 0:
        raise ValueError(
            f"cannot factor n={n} as r*c with r, c >= 3; pick a composite n (e.g. a square)"
        )
    r, c = np.divmod(np.arange(n, dtype=np.int64), cols)
    east = r * cols + (c + 1) % cols
    south = ((r + 1) % rows) * cols + c
    ids = np.arange(n, dtype=np.int64)
    return Topology.from_edge_arrays(
        "grid", n, np.concatenate([ids, ids]), np.concatenate([east, south])
    )


def hypercube_graph(n: int) -> Topology:
    """Boolean hypercube; requires n to be a power of two (degree log2 n)."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"hypercube needs n to be a power of two, got {n}")
    dims = n.bit_length() - 1
    ids = np.arange(n, dtype=np.int64)
    u = np.repeat(ids, dims)
    v = u ^ (np.int64(1) << np.tile(np.arange(dims, dtype=np.int64), n))
    keep = u < v
    return Topology.from_edge_arrays("hypercube", n, u[keep], v[keep])


def random_regular_graph(n: int, d: int, rng: np.random.Generator) -> Topology:
    """Random d-regular simple graph via the configuration model with repair.

    The pairing model produces an (in expectation) constant number of
    self-loops and duplicate edges; instead of resampling the whole pairing
    — whose acceptance probability ``~exp(-(d^2-1)/4)`` makes full rejection
    hopeless at ``n = 10^6`` — the offending pairs are repaired by
    degree-preserving stub swaps with uniformly chosen partner pairs (the
    standard switching construction).  A handful of iterations suffices;
    ``networkx.random_regular_graph`` remains the fallback for degenerate
    parameter corners where switching stalls.
    """
    if d < 0 or d >= n:
        raise ValueError(f"degree d={d} must satisfy 0 <= d < n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph to exist")
    if d == 0:
        return Topology.from_edges("regular-0", n, [])
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    for _ in range(500):
        canon = np.sort(pairs, axis=1)
        keys = canon[:, 0].astype(np.int64) * n + canon[:, 1]
        order = np.argsort(keys, kind="stable")
        dup = np.zeros(len(keys), dtype=bool)
        dup[order[1:]] = keys[order[1:]] == keys[order[:-1]]
        bad = np.flatnonzero(dup | (pairs[:, 0] == pairs[:, 1]))
        if bad.size == 0:
            return Topology.from_edge_arrays(f"regular-{d}", n, pairs[:, 0], pairs[:, 1])
        partners = rng.integers(0, len(pairs), size=bad.size)
        # Swap second endpoints with distinct, themselves-good partner pairs;
        # anything still bad is retried next iteration.
        ok = ~np.isin(partners, bad) & (np.bincount(partners, minlength=len(pairs))[partners] == 1)
        swap_a, swap_b = bad[ok], partners[ok]
        pairs[swap_a, 1], pairs[swap_b, 1] = pairs[swap_b, 1].copy(), pairs[swap_a, 1].copy()
    import networkx as nx

    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.random_regular_graph(d, n, seed=seed)
    topo = Topology.from_networkx(f"regular-{d}", graph)
    return topo


def erdos_renyi_graph(n: int, p: float, rng: np.random.Generator) -> Topology:
    """G(n, p) with the standard `p >= c ln n / n` connectivity caveat left to the caller."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    upper = np.triu_indices(n, k=1)
    mask = rng.random(len(upper[0])) < p
    return Topology.from_edge_arrays("erdos-renyi", n, upper[0][mask], upper[1][mask])


#: Registry used by the CLI and the sweep drivers.  Values are callables
#: ``(n, rng) -> Topology``; parameters beyond n use sensible defaults tied
#: to the experiments in DESIGN.md.
GRAPH_FAMILIES = {
    "complete": lambda n, rng: complete_graph(n),
    "ring": lambda n, rng: ring_graph(n),
    "grid": lambda n, rng: grid_graph(n),
    "hypercube": lambda n, rng: hypercube_graph(n),
    "regular4": lambda n, rng: random_regular_graph(n, 4, rng),
    "regular8": lambda n, rng: random_regular_graph(n, 8, rng),
    "erdos-renyi": lambda n, rng: erdos_renyi_graph(
        n, min(1.0, 3.0 * math.log(max(2, n)) / max(1, n)), rng
    ),
}


def make_graph(family: str, n: int, rng: np.random.Generator) -> Topology:
    """Instantiate a named graph family at size ``n``."""
    try:
        factory = GRAPH_FAMILIES[family]
    except KeyError as exc:
        raise ValueError(
            f"unknown graph family {family!r}; known: {sorted(GRAPH_FAMILIES)}"
        ) from exc
    return factory(n, rng)
