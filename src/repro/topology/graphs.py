"""Graph generators for the sparse-network experiments.

Section 4 of the paper analyses Local-DRR on *arbitrary* undirected graphs and
instantiates the result on d-regular graphs and on Chord.  The experiments in
this repository exercise the theorems on a spread of standard topologies so
that the ``O(log n)`` tree-height bound (Theorem 11) and the
``sum 1/(d_i+1)`` tree-count bound (Theorem 13) are visibly topology
independent:

* ring / cycle (d = 2, the worst case for tree height intuition),
* 2-D torus grid (d = 4),
* hypercube (d = log n),
* random d-regular graphs,
* Erdős–Rényi G(n, p) graphs (non-regular degrees),
* complete graph (sanity overlap with the Sections 2-3 model).

Chord gets its own module because it also needs routing (finger tables).
"""

from __future__ import annotations

import math

import numpy as np

from .base import Topology

__all__ = [
    "complete_graph",
    "ring_graph",
    "grid_graph",
    "hypercube_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "GRAPH_FAMILIES",
    "make_graph",
]


def complete_graph(n: int) -> Topology:
    """Complete graph K_n: the model of Sections 2-3."""
    if n <= 0:
        raise ValueError("n must be positive")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Topology.from_edges("complete", n, edges)


def ring_graph(n: int) -> Topology:
    """Cycle C_n; every node has degree 2 (n >= 3)."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology.from_edges("ring", n, edges)


def grid_graph(n: int) -> Topology:
    """2-D torus on the largest r x c factorisation of n (degree 4).

    ``n`` must factor as r*c with r, c >= 3 so the torus has no duplicate
    edges; perfect squares are the usual choice in the experiments.
    """
    root = int(math.isqrt(n))
    rows, cols = 0, 0
    for r in range(root, 2, -1):
        if n % r == 0 and n // r >= 3:
            rows, cols = r, n // r
            break
    if rows == 0:
        raise ValueError(
            f"cannot factor n={n} as r*c with r, c >= 3; pick a composite n (e.g. a square)"
        )
    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((node(r, c), node(r, (c + 1) % cols)))
            edges.append((node(r, c), node((r + 1) % rows, c)))
    return Topology.from_edges("grid", n, edges)


def hypercube_graph(n: int) -> Topology:
    """Boolean hypercube; requires n to be a power of two (degree log2 n)."""
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"hypercube needs n to be a power of two, got {n}")
    dims = n.bit_length() - 1
    edges = []
    for u in range(n):
        for bit in range(dims):
            v = u ^ (1 << bit)
            if u < v:
                edges.append((u, v))
    return Topology.from_edges("hypercube", n, edges)


def random_regular_graph(n: int, d: int, rng: np.random.Generator) -> Topology:
    """Random d-regular simple graph via the configuration model with retries.

    The pairing model occasionally produces self-loops or duplicate edges; we
    simply resample (the success probability is bounded away from zero for
    the small fixed degrees used in the experiments).  Falls back to
    ``networkx.random_regular_graph`` after repeated failures so that large
    degrees remain usable.
    """
    if d < 0 or d >= n:
        raise ValueError(f"degree d={d} must satisfy 0 <= d < n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph to exist")
    if d == 0:
        return Topology.from_edges("regular-0", n, [])
    for _ in range(200):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        if (pairs[:, 0] == pairs[:, 1]).any():
            continue
        canon = np.sort(pairs, axis=1)
        keys = canon[:, 0].astype(np.int64) * n + canon[:, 1]
        if len(np.unique(keys)) != len(keys):
            continue
        return Topology.from_edges(f"regular-{d}", n, [tuple(map(int, p)) for p in pairs])
    import networkx as nx

    seed = int(rng.integers(0, 2**31 - 1))
    graph = nx.random_regular_graph(d, n, seed=seed)
    topo = Topology.from_networkx(f"regular-{d}", graph)
    return topo


def erdos_renyi_graph(n: int, p: float, rng: np.random.Generator) -> Topology:
    """G(n, p) with the standard `p >= c ln n / n` connectivity caveat left to the caller."""
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0, 1], got {p}")
    upper = np.triu_indices(n, k=1)
    mask = rng.random(len(upper[0])) < p
    edges = list(zip(upper[0][mask].tolist(), upper[1][mask].tolist()))
    return Topology.from_edges("erdos-renyi", n, edges)


#: Registry used by the CLI and the sweep drivers.  Values are callables
#: ``(n, rng) -> Topology``; parameters beyond n use sensible defaults tied
#: to the experiments in DESIGN.md.
GRAPH_FAMILIES = {
    "complete": lambda n, rng: complete_graph(n),
    "ring": lambda n, rng: ring_graph(n),
    "grid": lambda n, rng: grid_graph(n),
    "hypercube": lambda n, rng: hypercube_graph(n),
    "regular4": lambda n, rng: random_regular_graph(n, 4, rng),
    "regular8": lambda n, rng: random_regular_graph(n, 8, rng),
    "erdos-renyi": lambda n, rng: erdos_renyi_graph(
        n, min(1.0, 3.0 * math.log(max(2, n)) / max(1, n)), rng
    ),
}


def make_graph(family: str, n: int, rng: np.random.Generator) -> Topology:
    """Instantiate a named graph family at size ``n``."""
    try:
        factory = GRAPH_FAMILIES[family]
    except KeyError as exc:
        raise ValueError(
            f"unknown graph family {family!r}; known: {sorted(GRAPH_FAMILIES)}"
        ) from exc
    return factory(n, rng)
