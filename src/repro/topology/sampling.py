"""Random-node sampling on sparse topologies.

Assumption (2) of Theorem 14 requires "a routing protocol which allows any
node to communicate with a random node in the network in O(T) rounds and
using O(M) messages whp".  On Chord the paper cites King et al.'s sampler
(T = M = O(log n)); on general graphs the standard tool is a random walk of
length proportional to the mixing time.  This module implements both so the
sparse-network experiments can *measure* (T, M) instead of hard-coding them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Topology
from .chord import ChordNetwork

__all__ = ["SampleCost", "RandomWalkSampler", "ChordSampler", "uniformity_l1_error"]


@dataclass(frozen=True)
class SampleCost:
    """Cost of drawing one (approximately) uniform random peer."""

    peer: int
    rounds: int
    messages: int


class RandomWalkSampler:
    """Approximate uniform sampling by a lazy random walk on a graph.

    A lazy simple random walk of length ``Theta(mixing time)`` lands on a
    node with probability proportional to its degree; on regular graphs that
    is exactly uniform, and on near-regular graphs (grids, Chord overlays,
    random regular graphs) the bias is negligible for the experiments here.
    The Metropolis-Hastings variant (``unbiased=True``) corrects the degree
    bias and is exactly uniform in the limit on any connected graph.
    """

    def __init__(self, topology: Topology, walk_length: int | None = None, unbiased: bool = True) -> None:
        if not topology.is_connected():
            raise ValueError("random-walk sampling requires a connected topology")
        self.topology = topology
        n = topology.n
        # Theta(log^2 n) steps cover the mixing time of every topology used in
        # the experiments (ring excepted -- callers can pass a longer walk).
        self.walk_length = walk_length if walk_length is not None else max(4, int(np.ceil(np.log2(n))) ** 2)
        self.unbiased = unbiased

    def sample(self, source: int, rng: np.random.Generator) -> SampleCost:
        current = source
        for _ in range(self.walk_length):
            neighbors = self.topology.neighbors(current)
            if not neighbors:
                break
            candidate = int(neighbors[int(rng.integers(0, len(neighbors)))])
            if self.unbiased:
                # Metropolis filter: accept with min(1, deg(u)/deg(v)).
                du = self.topology.degree(current)
                dv = self.topology.degree(candidate)
                if rng.random() < min(1.0, du / dv):
                    current = candidate
            else:
                current = candidate
        # One message per walk step (the token moves), one round per step.
        return SampleCost(peer=current, rounds=self.walk_length, messages=self.walk_length)


class ChordSampler:
    """Uniform peer sampling over Chord via identifier routing.

    The cost is the greedy-routing cost, i.e. ``T = M = O(log n)`` whp, which
    is exactly the assumption the paper plugs into Theorem 14 for Chord.
    """

    def __init__(self, chord: ChordNetwork) -> None:
        self.chord = chord

    def sample(self, source: int, rng: np.random.Generator) -> SampleCost:
        result = self.chord.sample_random_peer(source, rng)
        return SampleCost(peer=result.owner, rounds=result.hops, messages=result.messages)


def uniformity_l1_error(samples: np.ndarray, n: int) -> float:
    """L1 distance between the empirical sample distribution and uniform.

    Used by tests to check that the samplers are close enough to uniform for
    the gossip analysis to apply (the paper only needs near-uniformity up to
    constant factors).
    """
    counts = np.bincount(samples, minlength=n).astype(float)
    if counts.sum() == 0:
        return 1.0
    empirical = counts / counts.sum()
    return float(np.abs(empirical - 1.0 / n).sum())
