"""Topology abstraction used by the sparse-network experiments (Section 4).

The complete-graph experiments of Sections 2-3 do not need an explicit
topology (any node can call any other).  Section 4 runs Local-DRR and gossip
over arbitrary undirected graphs, so we provide a :class:`Topology` wrapper
with the queries the protocols and the analysis need: neighbour lists,
degrees, connectivity, and the ``sum(1/(d_i+1))`` quantity of Theorem 13.

Storage is columnar: the adjacency lives in CSR form (``indptr`` /
``indices`` int64 arrays, neighbour lists sorted ascending).  That is what
lets the vectorized topology kernel run Local-DRR at ``n = 10^6`` — a
round's worth of per-edge transmissions is two flat arrays, not a million
Python tuples.  The tuple-based views (:meth:`neighbors`,
:attr:`adjacency`) are kept for the message-level engine and for tests;
they are materialised on demand.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Topology"]


class Topology:
    """An undirected simple graph over node ids ``0 .. n-1`` (CSR-backed)."""

    __slots__ = ("name", "_indptr", "_indices", "_adjacency")

    def __init__(self, name: str, adjacency: Sequence[Sequence[int]] | None = None, *,
                 indptr: np.ndarray | None = None, indices: np.ndarray | None = None) -> None:
        self.name = name
        self._adjacency: tuple[tuple[int, ...], ...] | None = None
        if adjacency is not None:
            if indptr is not None or indices is not None:
                raise ValueError("pass either adjacency or indptr/indices, not both")
            degrees = np.fromiter((len(neigh) for neigh in adjacency), dtype=np.int64,
                                  count=len(adjacency))
            self._indptr = np.concatenate([[0], np.cumsum(degrees)])
            self._indices = (
                np.concatenate([np.sort(np.asarray(neigh, dtype=np.int64)) for neigh in adjacency])
                if len(adjacency) and degrees.sum()
                else np.zeros(0, dtype=np.int64)
            )
        else:
            if indptr is None or indices is None:
                raise ValueError("need adjacency or indptr/indices")
            self._indptr = np.asarray(indptr, dtype=np.int64)
            self._indices = np.asarray(indices, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_arrays(cls, name: str, n: int, u: np.ndarray, v: np.ndarray) -> "Topology":
        """Build a topology from undirected edge arrays (the columnar path).

        Self-loops are rejected and duplicate edges are collapsed; both are
        modelling errors rather than things a physical network would have.
        Runs entirely in NumPy, so graph construction keeps up with the
        vectorized kernel at ``n`` in the millions.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValueError("edge arrays must have identical shapes")
        if u.size:
            lo = min(int(u.min()), int(v.min()))
            hi = max(int(u.max()), int(v.max()))
            if lo < 0 or hi >= n:
                bad = (u < 0) | (u >= n) | (v < 0) | (v >= n)
                first = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"edge ({int(u[first])}, {int(v[first])}) references a node outside 0..{n - 1}"
                )
            loops = u == v
            if loops.any():
                node = int(u[np.flatnonzero(loops)[0]])
                raise ValueError(f"self-loop on node {node} is not allowed")
            # canonicalise, dedupe, then mirror into both directions
            a = np.minimum(u, v)
            b = np.maximum(u, v)
            keys = np.unique(a * np.int64(n) + b)
            a, b = keys // n, keys % n
            src = np.concatenate([a, b])
            dst = np.concatenate([b, a])
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
        else:
            src = dst = np.zeros(0, dtype=np.int64)
        indptr = np.concatenate([[0], np.cumsum(np.bincount(src, minlength=n))])
        return cls(name, indptr=indptr, indices=dst)

    @classmethod
    def from_edges(cls, name: str, n: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build a topology from an undirected edge list."""
        pairs = np.fromiter(
            (int(x) for edge in edges for x in edge), dtype=np.int64
        ).reshape(-1, 2)
        return cls.from_edge_arrays(name, n, pairs[:, 0], pairs[:, 1])

    @classmethod
    def from_networkx(cls, name: str, graph) -> "Topology":
        """Build a topology from a ``networkx`` graph with integer-labelable nodes."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls.from_edges(name, len(nodes), edges)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return len(self._indptr) - 1

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices: concatenated sorted neighbour lists."""
        return self._indices

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All *directed* edges as ``(senders, receivers)`` arrays.

        Every undirected edge appears in both directions; rows are grouped
        by sender (ascending) with receivers ascending within a sender —
        exactly the order in which engine nodes enumerate their neighbours.
        """
        return np.repeat(np.arange(self.n, dtype=np.int64), self.degrees()), self._indices

    @property
    def adjacency(self) -> tuple[tuple[int, ...], ...]:
        """Tuple-of-tuples view of the adjacency (materialised on demand)."""
        if self._adjacency is None:
            self._adjacency = tuple(
                tuple(int(x) for x in self._indices[self._indptr[i]:self._indptr[i + 1]])
                for i in range(self.n)
            )
        return self._adjacency

    def neighbors(self, node_id: int) -> Sequence[int]:
        return tuple(
            int(x) for x in self._indices[self._indptr[node_id]:self._indptr[node_id + 1]]
        )

    def degree(self, node_id: int) -> int:
        return int(self._indptr[node_id + 1] - self._indptr[node_id])

    def degrees(self) -> np.ndarray:
        return np.diff(self._indptr)

    @property
    def edge_count(self) -> int:
        return int(self._indices.size // 2)

    def edges(self) -> Iterable[tuple[int, int]]:
        src, dst = self.edge_arrays()
        forward = src < dst
        return zip(src[forward].tolist(), dst[forward].tolist())

    def is_regular(self) -> bool:
        degs = self.degrees()
        return bool(degs.size == 0 or (degs == degs[0]).all())

    def expected_local_drr_trees(self) -> float:
        """Theorem 13's expectation: ``E[#trees] = sum_i 1/(d_i + 1)``."""
        return float(np.sum(1.0 / (self.degrees() + 1.0)))

    def is_connected(self) -> bool:
        """Frontier BFS over the CSR arrays (vectorised; handles n = 10^6)."""
        if self.n == 0:
            return True
        seen = np.zeros(self.n, dtype=bool)
        seen[0] = True
        frontier = np.array([0], dtype=np.int64)
        degrees = self.degrees()
        while frontier.size:
            counts = degrees[frontier]
            nxt = self._indices[
                np.repeat(self._indptr[frontier], counts)
                + (np.arange(int(counts.sum())) - np.repeat(np.cumsum(counts) - counts, counts))
            ]
            nxt = nxt[~seen[nxt]]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            seen[nxt] = True
            frontier = nxt
        return bool(seen.all())

    # ------------------------------------------------------------------ #
    # spec serialisation (the run API's explicit-topology form)
    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """Serialise this concrete graph as an explicit-edge topology spec.

        The returned dict is the ``family = "explicit"`` form accepted by
        :class:`repro.api.TopologySpec` (and :meth:`from_spec`), so any
        topology — generated or hand-built — can be pinned inside a
        :class:`repro.api.RunSpec` and replayed on another host without
        re-running its generator.
        """
        return {
            "family": "explicit",
            "name": self.name,
            "n": self.n,
            "edges": [[int(u), int(v)] for u, v in self.edges()],
        }

    @classmethod
    def from_spec(cls, spec) -> "Topology":
        """Rebuild a topology from its explicit spec dict (identity on instances)."""
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, dict) or spec.get("family", "explicit") != "explicit":
            raise ValueError(
                "Topology.from_spec expects an explicit-edge spec dict "
                "(generated families are built by repro.api.TopologySpec)"
            )
        edges = spec.get("edges")
        if edges is None or "n" not in spec:
            raise ValueError("explicit topology spec needs 'n' and 'edges'")
        return cls.from_edges(str(spec.get("name", "explicit")), int(spec["n"]), [tuple(e) for e in edges])

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (lazy import keeps startup light)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges())
        return graph

    def neighbor_fn(self):
        """Return the lookup callable the simulator's ``Network`` expects."""
        return self.neighbors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(name={self.name!r}, n={self.n}, edges={self.edge_count})"
