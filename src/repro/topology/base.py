"""Topology abstraction used by the sparse-network experiments (Section 4).

The complete-graph experiments of Sections 2-3 do not need an explicit
topology (any node can call any other).  Section 4 runs Local-DRR and gossip
over arbitrary undirected graphs, so we provide a small :class:`Topology`
wrapper around an adjacency structure with the queries the protocols and the
analysis need: neighbour lists, degrees, connectivity, and the
``sum(1/(d_i+1))`` quantity of Theorem 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Topology"]


@dataclass
class Topology:
    """An undirected graph over node ids ``0 .. n-1``.

    The adjacency is stored as a tuple of sorted tuples so the object is
    cheap to share between protocol nodes and safe from accidental mutation.
    """

    name: str
    adjacency: tuple[tuple[int, ...], ...]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, name: str, n: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build a topology from an undirected edge list.

        Self-loops are rejected and duplicate edges are collapsed; both are
        modelling errors rather than things a physical network would have.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        neighbor_sets: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references a node outside 0..{n - 1}")
            if u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)
        adjacency = tuple(tuple(sorted(s)) for s in neighbor_sets)
        return cls(name=name, adjacency=adjacency)

    @classmethod
    def from_networkx(cls, name: str, graph) -> "Topology":
        """Build a topology from a ``networkx`` graph with integer-labelable nodes."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in graph.edges()]
        return cls.from_edges(name, len(nodes), edges)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return len(self.adjacency)

    def neighbors(self, node_id: int) -> Sequence[int]:
        return self.adjacency[node_id]

    def degree(self, node_id: int) -> int:
        return len(self.adjacency[node_id])

    def degrees(self) -> np.ndarray:
        return np.array([len(neigh) for neigh in self.adjacency], dtype=np.int64)

    @property
    def edge_count(self) -> int:
        return int(self.degrees().sum() // 2)

    def edges(self) -> Iterable[tuple[int, int]]:
        for u, neigh in enumerate(self.adjacency):
            for v in neigh:
                if u < v:
                    yield (u, v)

    def is_regular(self) -> bool:
        degs = self.degrees()
        return bool(degs.size == 0 or (degs == degs[0]).all())

    def expected_local_drr_trees(self) -> float:
        """Theorem 13's expectation: ``E[#trees] = sum_i 1/(d_i + 1)``."""
        return float(np.sum(1.0 / (self.degrees() + 1.0)))

    def is_connected(self) -> bool:
        """Breadth-first connectivity check (iterative; no recursion limit)."""
        if self.n == 0:
            return True
        seen = np.zeros(self.n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in self.adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return bool(seen.all())

    def to_networkx(self):
        """Export to a ``networkx.Graph`` (lazy import keeps startup light)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n))
        graph.add_edges_from(self.edges())
        return graph

    def neighbor_fn(self):
        """Return the lookup callable the simulator's ``Network`` expects."""
        return self.neighbors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(name={self.name!r}, n={self.n}, edges={self.edge_count})"
