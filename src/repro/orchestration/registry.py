"""Declarative experiment registry.

The registry is the single source of truth for "what experiments exist":
the CLI builds its subcommands from it, the sweep runner resolves drivers
through it (including inside worker processes, where callables cannot be
pickled by name), and the report writer uses its descriptions.

An :class:`ExperimentSpec` couples a name with a driver callable and a
typed parameter specification derived from the driver's signature, so a
sweep definition can be validated and grid-expanded *before* any cell
runs.  Drivers register themselves at import time (see
:mod:`repro.harness.experiments`); :func:`load_builtin_experiments`
triggers that import lazily so this module stays dependency-free.
"""

from __future__ import annotations

import enum
import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "ParamSpec",
    "ExperimentSpec",
    "ExperimentRegistry",
    "DEFAULT_REGISTRY",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "load_builtin_experiments",
]


@dataclass(frozen=True)
class ParamSpec:
    """One sweepable parameter of an experiment driver."""

    name: str
    default: Any
    #: True when the parameter itself is a sequence (e.g. ``ns``); a grid
    #: entry for such a parameter must be a list of sequences, one per cell.
    is_sequence: bool

    def coerce(self, value: Any) -> Any:
        """Coerce one grid candidate to the driver's expected shape/type.

        Sequence parameters are normalised to tuples so cells hash the same
        whether the sweep file spelled them as lists or tuples; scalar
        parameters adopt the default's type when a safe conversion exists
        (TOML/JSON often deliver ints where the driver wants floats).
        """
        if self.is_sequence:
            if not isinstance(value, (list, tuple)):
                raise TypeError(
                    f"parameter {self.name!r} expects a sequence per cell, got {value!r}"
                )
            return tuple(value)
        if isinstance(self.default, enum.Enum) and not isinstance(value, enum.Enum):
            return type(self.default)(value)
        if isinstance(self.default, bool):
            return bool(value)
        if isinstance(self.default, float) and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        return value


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: driver callable plus its parameter specification."""

    name: str
    driver: Callable[..., Any]
    description: str
    params: tuple[ParamSpec, ...] = ()

    @classmethod
    def from_callable(cls, name: str, driver: Callable[..., Any], description: str | None = None) -> "ExperimentSpec":
        """Derive the parameter spec from the driver's signature.

        Every keyword parameter with a default (except ``seed``, which the
        orchestration layer owns) becomes sweepable.  Parameters without a
        default are rejected: a registered driver must be runnable from its
        name alone.
        """
        params: list[ParamSpec] = []
        for param in inspect.signature(driver).parameters.values():
            if param.name == "seed":
                continue
            if param.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
                continue
            if param.default is inspect.Parameter.empty:
                raise TypeError(
                    f"driver {driver.__qualname__} for experiment {name!r} has a "
                    f"parameter without default ({param.name!r}); registered drivers "
                    "must be callable with only a seed"
                )
            params.append(
                ParamSpec(
                    name=param.name,
                    default=param.default,
                    is_sequence=isinstance(param.default, (list, tuple)),
                )
            )
        if description is None:
            doc = inspect.getdoc(driver) or name
            description = doc.splitlines()[0]
        return cls(name=name, driver=driver, description=description, params=tuple(params))

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(
            f"experiment {self.name!r} has no parameter {name!r} "
            f"(valid: {', '.join(self.param_names) or 'none'})"
        )

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Check names and coerce values of one concrete parameter binding."""
        return {name: self.param(name).coerce(value) for name, value in params.items()}

    def expand_grid(self, grid: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Expand a parameter grid into concrete per-cell parameter dicts.

        Each grid entry maps a parameter name to a list of candidate values
        (the cartesian product over parameters yields the cells).  Two
        shorthands keep sweep files readable:

        * a scalar entry stands for a single candidate, and
        * for sequence parameters (``ns``, ``deltas``, ...) a flat list of
          scalars is a *single* candidate (the sweep vector itself); use a
          list of lists to sweep over several vectors.
        """
        axes: list[tuple[str, list[Any]]] = []
        for name in sorted(grid):
            spec = self.param(name)
            raw = grid[name]
            if spec.is_sequence:
                if isinstance(raw, (list, tuple)) and raw and all(
                    isinstance(v, (list, tuple)) for v in raw
                ):
                    candidates = list(raw)
                else:
                    candidates = [raw]
            else:
                candidates = list(raw) if isinstance(raw, (list, tuple)) else [raw]
            if not candidates:
                raise ValueError(f"grid entry for {name!r} is empty")
            axes.append((name, [spec.coerce(v) for v in candidates]))
        if not axes:
            return [{}]
        names = [name for name, _ in axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*(vals for _, vals in axes))]


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec` mapping with decorator registration."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    def register(self, name: str, driver: Callable[..., Any] | None = None, *, description: str | None = None):
        """Register a driver under ``name``; usable directly or as a decorator."""

        def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._specs and self._specs[name].driver is not fn:
                raise ValueError(f"experiment {name!r} is already registered")
            self._specs[name] = ExperimentSpec.from_callable(name, fn, description)
            return fn

        if driver is None:
            return _register
        _register(driver)
        return driver

    def get(self, name: str) -> ExperimentSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "none registered"
            raise KeyError(f"unknown experiment {name!r} (known: {known})") from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry the CLI, runner, and benchmarks share.
DEFAULT_REGISTRY = ExperimentRegistry()


def register_experiment(name: str, driver: Callable[..., Any] | None = None, *, description: str | None = None):
    """Register an experiment on the default registry (decorator-friendly)."""
    return DEFAULT_REGISTRY.register(name, driver, description=description)


def load_builtin_experiments() -> ExperimentRegistry:
    """Import the harness drivers so their registrations run, then return the registry.

    Worker processes of a parallel sweep call this before resolving a driver
    by name; in the parent it is effectively a no-op after the first call.
    """
    from ..harness import experiments  # noqa: F401  (import triggers registration)

    return DEFAULT_REGISTRY


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve ``name`` against the default registry, loading builtins first."""
    return load_builtin_experiments().get(name)


def experiment_names() -> list[str]:
    """Names of all registered experiments (builtins included)."""
    return load_builtin_experiments().names()
