"""Experiment orchestration: registry, result store, sweep runner, sweep files.

This subsystem turns the reproduction harness into an experiment platform:

* :mod:`~repro.orchestration.registry` — the declarative experiment
  registry (drivers register by name; grids validate and expand against
  typed parameter specs).
* :mod:`~repro.orchestration.store` — the SQLite result store, keyed by
  ``(experiment, canonical param hash, seed)`` with resume semantics.
* :mod:`~repro.orchestration.runner` — the parallel sweep runner
  (process-pool fan-out, per-cell crash capture, deterministic seeds).
* :mod:`~repro.orchestration.config` — TOML/JSON sweep definitions.

Typical use::

    from repro.orchestration import (
        ResultStore, SweepDefinition, SweepRunner, load_sweep,
    )

    definition = load_sweep("sweeps/quick.toml")
    with ResultStore("results/results.sqlite") as store:
        report = SweepRunner(store, jobs=4).run(definition)
    print(report.summary())
"""

from .backends import QUEUE_STATES, QueuedCell, StoreBackend
from .config import ExperimentPlan, SweepDefinition, load_sweep
from .registry import (
    DEFAULT_REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    ParamSpec,
    experiment_names,
    get_experiment,
    load_builtin_experiments,
    register_experiment,
)
from .runner import (
    EXECUTION_BACKENDS,
    CellOutcome,
    SweepCell,
    SweepReport,
    SweepRunner,
    cells_from_run_specs,
    expand_cells,
    print_progress,
)
from .store import (
    ResultStore,
    StoredRun,
    canonical_params,
    cell_spec_hash,
    cell_spec_json,
    param_hash,
)
from .worker import (
    QueueWorker,
    WorkerReport,
    WorkerShutdown,
    default_worker_id,
    print_worker_progress,
    row_identity,
    signal_shutdown,
)

__all__ = [
    "QUEUE_STATES",
    "QueuedCell",
    "StoreBackend",
    "EXECUTION_BACKENDS",
    "QueueWorker",
    "WorkerReport",
    "WorkerShutdown",
    "default_worker_id",
    "print_worker_progress",
    "row_identity",
    "signal_shutdown",
    "ExperimentPlan",
    "SweepDefinition",
    "load_sweep",
    "DEFAULT_REGISTRY",
    "ExperimentRegistry",
    "ExperimentSpec",
    "ParamSpec",
    "experiment_names",
    "get_experiment",
    "load_builtin_experiments",
    "register_experiment",
    "CellOutcome",
    "SweepCell",
    "SweepReport",
    "SweepRunner",
    "cells_from_run_specs",
    "expand_cells",
    "print_progress",
    "ResultStore",
    "StoredRun",
    "canonical_params",
    "cell_spec_hash",
    "cell_spec_json",
    "param_hash",
]
