"""Pull-based queue worker: claim cells from a shared store, run, write back.

This is the other half of the ``queue`` execution backend: a sweep (or
``drr-gossip sweep --exec queue --enqueue-only``) fills the store's queue
table with pending cells, and any number of :class:`QueueWorker` loops —
started with ``drr-gossip worker --store PATH`` on any hosts that share
the store — drain it.  Each iteration:

1. **reclaim** stale claims (a dead worker's lease expired) back to
   pending, and mark cells that exhausted their attempt budget as failed;
2. **claim** the oldest pending cell atomically (exactly one worker wins);
3. **cache check**: if the cell's result is already in the store
   (a re-submitted identical spec), finish it without executing;
4. **execute** the cell's serialised spec via the same ``_execute_cell``
   entry point the local process pool uses, refreshing the claim's
   heartbeat row from a side thread so long cells keep their lease;
5. **write back** the result/failure row and move the queue row to its
   terminal state.

The loop exits when the queue is drained — no pending *and* no claimed
rows — or, with ``linger_s``, after the queue has stayed drained that
long (so operators can start workers before submitting work).
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from ..observability.logs import get_logger
from ..observability.telemetry import NULL_TELEMETRY, NullTelemetry
from .backends import QueuedCell
from .runner import _execute_cell
from .store import ResultStore, cell_spec_hash

_logger = get_logger("orchestration.worker")

__all__ = [
    "BACKOFF_CAP_FACTOR",
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "QueueWorker",
    "WorkerReport",
    "WorkerShutdown",
    "default_worker_id",
    "print_worker_progress",
    "row_identity",
    "signal_shutdown",
]

#: seconds of heartbeat silence after which a claim counts as stale
DEFAULT_LEASE_S = 60.0

#: claims per cell before it is marked failed instead of reclaimed again
DEFAULT_MAX_ATTEMPTS = 3

#: idle backoff ceiling as a multiple of ``poll_interval_s``
BACKOFF_CAP_FACTOR = 8.0


def default_worker_id() -> str:
    """``host:pid`` — unique across the hosts sharing a store."""
    return f"{socket.gethostname()}:{os.getpid()}"


class WorkerShutdown(BaseException):
    """Raised inside the drain loop when the process is told to stop.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``) so it
    sails through the worker's per-cell ``except Exception`` error
    handling and lands in the claim-requeue path: the in-flight cell goes
    back to ``pending`` with its heartbeat row deleted, and another
    worker can pick it up immediately instead of waiting out the lease.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = int(signum)

    @property
    def signal_name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return f"signal {self.signum}"


@contextlib.contextmanager
def signal_shutdown(signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)) -> Iterator[None]:
    """Convert SIGTERM/SIGINT into :class:`WorkerShutdown` while active.

    Installed by the ``drr-gossip worker`` CLI (and the serve-spawned
    pool) around :meth:`QueueWorker.drain` so a terminated worker
    releases its claim instead of dying mid-cell.  Only the main thread
    of a process may install signal handlers, so library callers that
    embed :class:`QueueWorker` elsewhere simply don't use this.
    """

    def raise_shutdown(signum: int, frame: object) -> None:
        raise WorkerShutdown(signum)

    previous = {s: signal.signal(s, raise_shutdown) for s in signals}
    try:
        yield
    finally:
        for s, handler in previous.items():
            signal.signal(s, handler)


def row_identity(spec_json: str) -> tuple[str, dict[str, Any], int]:
    """Decode a cell's transport form into its store-row identity.

    Returns ``(experiment, params, seed)`` such that
    ``param_hash(params)`` reproduces the hash the cell was queued under
    — the exact inverse of how ``SweepCell``/``cells_from_run_specs``
    built the spec string, so a worker's result rows collide (upsert)
    with the local backend's rather than duplicating them.
    """
    payload = json.loads(spec_json)
    if "protocol" in payload:
        params = {k: v for k, v in payload.items() if k not in ("seed", "telemetry")}
        return f"run:{payload['protocol']}", params, int(payload["seed"])
    return str(payload["experiment"]), dict(payload.get("params", {})), int(payload["seed"])


@dataclass
class WorkerReport:
    """What one drain loop did: cells executed/failed/served from cache."""

    worker: str
    executed: int = 0
    failed: int = 0
    #: claims finished from an already-stored result without executing
    cached: int = 0
    #: stale claims returned to pending by this worker's reclaim passes
    reclaimed: int = 0
    #: cells marked failed because their attempt budget ran out
    exhausted: int = 0
    wall_s: float = 0.0
    #: name of the signal that stopped the drain early (graceful
    #: shutdown); None when the loop ran to a natural drain
    stopped: str | None = None

    @property
    def cells(self) -> int:
        return self.executed + self.failed + self.cached

    def summary(self) -> str:
        extra = f", {self.exhausted} gave up" if self.exhausted else ""
        if self.stopped:
            extra += f", stopped by {self.stopped}"
        return (
            f"worker {self.worker}: {self.executed} executed, {self.failed} failed, "
            f"{self.cached} cached{extra} ({self.wall_s:.1f}s)"
        )


class _LeaseHeartbeat:
    """Daemon thread refreshing one claim's heartbeat on its own connection.

    The worker executes cells in its own process, so lease renewal must
    come from a thread; SQLite connections are not shared across threads,
    so the thread opens (and closes) its own.  In-memory stores get no
    thread — a second connection would see a different database — which
    is fine: they cannot be shared across processes anyway.
    """

    def __init__(self, store_path: str, key: tuple[str, str, int], worker: str, interval_s: float) -> None:
        self._path = store_path
        self._key = key
        self._worker = worker
        self._interval = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        store = ResultStore(self._path)
        try:
            while not self._stop.wait(self._interval):
                store.mark_heartbeat_key(self._key, self._worker)
        finally:
            store.close()

    def __enter__(self) -> "_LeaseHeartbeat":
        if self._path != ":memory:":
            self._thread = threading.Thread(
                target=self._run, name="repro-lease-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._interval + 5.0)
            self._thread = None


class QueueWorker:
    """Drain a store's work queue: claim, execute, write back, repeat."""

    def __init__(
        self,
        store: ResultStore,
        *,
        worker_id: str | None = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval_s: float = 0.5,
        heartbeat_interval_s: float = 15.0,
        linger_s: float = 0.0,
        max_cells: int | None = None,
        skip_completed: bool = True,
        telemetry: NullTelemetry | None = None,
        progress: Callable[[QueuedCell, str, float], None] | None = None,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if poll_interval_s <= 0:
            raise ValueError(f"poll_interval_s must be positive, got {poll_interval_s}")
        if heartbeat_interval_s <= 0:
            raise ValueError(f"heartbeat_interval_s must be positive, got {heartbeat_interval_s}")
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if max_cells is not None and max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {max_cells}")
        self.store = store
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.lease_s = float(lease_s)
        self.max_attempts = int(max_attempts)
        self.poll_interval_s = float(poll_interval_s)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.linger_s = float(linger_s)
        self.max_cells = max_cells
        self.skip_completed = skip_completed
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.progress = progress
        # Idle-poll jitter only — never touches run reproducibility, which
        # is carried entirely by the specs' own seeds.
        self._jitter = random.Random()

    def idle_backoff_s(self, empty_polls: int) -> float:
        """Sleep duration after the ``empty_polls``-th consecutive empty poll.

        Exponential with full jitter: the target doubles from
        ``poll_interval_s`` up to ``BACKOFF_CAP_FACTOR`` times it, and the
        actual sleep is drawn uniformly from ``[target / 2, target]`` so a
        fleet of idle workers sharing one store spreads its polls out
        instead of hammering the SQLite file in lockstep.  A successful
        claim resets the ladder to the base interval.
        """
        cap = self.poll_interval_s * BACKOFF_CAP_FACTOR
        target = min(self.poll_interval_s * (2.0 ** max(0, empty_polls)), cap)
        return target * (0.5 + 0.5 * self._jitter.random())

    def drain(self) -> WorkerReport:
        """Work the queue until it drains (plus ``linger_s``); returns the tally.

        A :class:`WorkerShutdown` raised into the loop (SIGTERM/SIGINT
        under :func:`signal_shutdown`) ends it gracefully: the in-flight
        claim — if any — was already requeued by the claim handler, and
        the report comes back with ``stopped`` set instead of the
        exception propagating.
        """
        report = WorkerReport(worker=self.worker_id)
        telemetry = self.telemetry
        start = time.perf_counter()
        drained_since: float | None = None
        empty_polls = 0
        try:
            while self.max_cells is None or report.cells < self.max_cells:
                report.reclaimed += len(self.store.reclaim_stale(self.lease_s))
                for cell in self.store.fail_exhausted(self.max_attempts):
                    self._record_exhausted(cell, report)
                with telemetry.span("worker.claim"):
                    claim = self.store.claim_cell(self.worker_id)
                depth = self.store.queue_depth()
                telemetry.gauge_max("queue.pending", depth["pending"])
                telemetry.gauge_max("queue.claimed", depth["claimed"])
                if claim is None:
                    # Nothing pending.  Claimed rows owned by others may still
                    # fail and come back via reclaim, so wait on those; a fully
                    # drained queue ends the loop once any linger grace is up.
                    if depth["pending"] == 0 and depth["claimed"] == 0:
                        now = time.perf_counter()
                        if drained_since is None:
                            drained_since = now
                        if now - drained_since >= self.linger_s:
                            break
                    time.sleep(self.idle_backoff_s(empty_polls))
                    empty_polls += 1
                    continue
                drained_since = None
                empty_polls = 0
                self._run_claim(claim, report)
        except WorkerShutdown as shutdown:
            report.stopped = shutdown.signal_name
            _logger.info(
                "worker %s: %s received, claim released, stopping",
                self.worker_id, shutdown.signal_name,
            )
        report.wall_s = time.perf_counter() - start
        _logger.info("%s", report.summary())
        return report

    def _record_exhausted(self, cell: QueuedCell, report: WorkerReport) -> None:
        experiment, params, seed = row_identity(cell.spec_json)
        error = (
            f"gave up after {cell.attempt} claim(s) without a recorded result "
            f"(max_attempts={self.max_attempts}; the cell likely kills its worker)"
        )
        self.store.record_failure(experiment, params, seed, error, spec_json=cell.spec_json)
        report.exhausted += 1
        self._emit(cell, "exhausted", 0.0)

    def _run_claim(self, claim: QueuedCell, report: WorkerReport) -> None:
        telemetry = self.telemetry
        if self.skip_completed:
            spec_hash = claim.spec_hash or cell_spec_hash(claim.spec_json)
            cached = self.store.get_by_spec_hash(spec_hash)
            if cached is not None and cached.ok:
                # Content-addressed dedup: an identical spec was already
                # computed (this sweep or an earlier one) — serve the cached
                # result instead of burning the cycles again.
                self.store.finish_cell(claim.key, "done")
                telemetry.count("worker.cached")
                report.cached += 1
                self._emit(claim, "cached", 0.0)
                return
        self.store.mark_heartbeat_key(claim.key, self.worker_id)
        try:
            with _LeaseHeartbeat(
                str(self.store.path), claim.key, self.worker_id, self.heartbeat_interval_s
            ):
                with telemetry.span("worker.execute"):
                    payload = _execute_cell(claim.spec_json)
        except BaseException:
            # Interrupted mid-cell (KeyboardInterrupt/SystemExit): hand the
            # claim back so another worker picks the cell up immediately
            # instead of waiting out the lease.
            self.store.requeue_cell(claim.key)
            raise
        self._write_back(claim, payload, report)

    def _write_back(self, claim: QueuedCell, payload: Mapping[str, Any], report: WorkerReport) -> None:
        experiment, params, seed = row_identity(claim.spec_json)
        duration = float(payload.get("duration_s", 0.0))
        with self.telemetry.span("worker.write"):
            if payload["ok"]:
                doc = payload.get("telemetry")
                envelope = payload.get("envelope")
                self.store.record_result(
                    experiment, params, seed, payload["result"], duration,
                    spec_json=claim.spec_json,
                    telemetry_json=json.dumps(doc, sort_keys=True) if doc is not None else None,
                    result_json=json.dumps(envelope, sort_keys=True) if envelope is not None else None,
                )
                self.store.finish_cell(claim.key, "done")
            else:
                _logger.warning(
                    "cell %s (hash=%s seed=%d) failed:\n%s",
                    experiment, claim.param_hash[:12], seed, payload["error"],
                )
                self.store.record_failure(
                    experiment, params, seed, payload["error"], duration,
                    spec_json=claim.spec_json,
                )
                self.store.finish_cell(claim.key, "failed")
        self.telemetry.count("worker.cells")
        if payload["ok"]:
            report.executed += 1
            self._emit(claim, "ok", duration)
        else:
            report.failed += 1
            self._emit(claim, "failed", duration)

    def _emit(self, cell: QueuedCell, status: str, duration_s: float) -> None:
        if self.progress is not None:
            self.progress(cell, status, duration_s)


def print_worker_progress(cell: QueuedCell, status: str, duration_s: float) -> None:
    """Default per-claim progress line for the ``drr-gossip worker`` CLI."""
    suffix = "cached" if status == "cached" else f"{duration_s:.2f}s"
    print(
        f"{status:<9} {cell.experiment} hash={cell.param_hash[:12]} "
        f"seed={cell.seed} attempt={cell.attempt} ({suffix})",
        flush=True,
    )
