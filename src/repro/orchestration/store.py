"""SQLite-backed persistence for experiment results.

Every sweep cell — one ``(experiment, canonical parameter hash, seed)``
triple — maps to exactly one row.  Rows, headers, and metadata of the
:class:`~repro.harness.experiments.ExperimentResult` are stored as JSON so
the store needs no schema migration when a driver adds a column; the
UNIQUE key gives the sweep runner its skip-completed resume semantics and
makes re-running a crashed cell an upsert rather than a duplicate.

The store is written concurrently: the local sweep parent, any number of
``drr-gossip worker`` processes on hosts sharing the filesystem, and the
heartbeat threads they run all hold their own connections.  WAL mode plus
a configurable ``busy_timeout`` make concurrent writers queue instead of
crash, every write retries on ``SQLITE_BUSY``, and the work-queue claim
(:meth:`ResultStore.claim_cell`) takes the write lock up front with
``BEGIN IMMEDIATE`` so a pending row is handed to exactly one claimant.
The queue/claim surface is pinned down by
:class:`~repro.orchestration.backends.StoreBackend` so a server-grade
database can replace SQLite without touching the runner or workers.
"""

from __future__ import annotations

import json
import sqlite3
import time
import warnings
from dataclasses import dataclass, replace as dataclass_replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..observability.logs import get_logger
from ..serialization import canonical_json, canonical_value, stable_digest
from ..substrate import DEFAULT_BACKEND
from .backends import QueuedCell, StoreBackend

__all__ = [
    "ResultStore",
    "StoredRun",
    "canonical_params",
    "param_hash",
    "cell_spec_json",
    "cell_spec_hash",
]

#: default time a writer waits for a competing writer's transaction
DEFAULT_BUSY_TIMEOUT_S = 30.0

#: write retries layered on top of the busy timeout (each full wait)
_BUSY_RETRIES = 5

_logger = get_logger("orchestration.store")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment     TEXT NOT NULL,
    param_hash     TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    status         TEXT NOT NULL CHECK (status IN ('ok', 'failed')),
    params         TEXT NOT NULL,
    backend        TEXT,
    spec_json      TEXT,
    spec_hash      TEXT,
    description    TEXT NOT NULL DEFAULT '',
    headers        TEXT NOT NULL DEFAULT '[]',
    rows           TEXT NOT NULL DEFAULT '[]',
    notes          TEXT NOT NULL DEFAULT '[]',
    error          TEXT,
    duration_s     REAL,
    telemetry_json TEXT,
    result_json    TEXT,
    heartbeat_at   TEXT,
    created_at     TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (experiment, param_hash, seed)
);
CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs (experiment, status);
CREATE TABLE IF NOT EXISTS heartbeats (
    experiment   TEXT NOT NULL,
    param_hash   TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    worker       TEXT NOT NULL DEFAULT '',
    started_at   TEXT NOT NULL DEFAULT (datetime('now')),
    heartbeat_at TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (experiment, param_hash, seed)
);
CREATE TABLE IF NOT EXISTS queue (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment  TEXT NOT NULL,
    param_hash  TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    spec_json   TEXT NOT NULL,
    spec_hash   TEXT,
    state       TEXT NOT NULL DEFAULT 'pending'
                CHECK (state IN ('pending', 'claimed', 'done', 'failed')),
    owner       TEXT,
    claim_time  TEXT,
    attempt     INTEGER NOT NULL DEFAULT 0,
    enqueued_at TEXT NOT NULL DEFAULT (datetime('now')),
    UNIQUE (experiment, param_hash, seed)
);
CREATE INDEX IF NOT EXISTS idx_queue_state ON queue (state, id);
"""

#: created after the column migrations run: on a pre-service store the
#: spec_hash columns do not exist until the ALTERs in ``__init__`` add them
_SPEC_HASH_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_runs_spec_hash ON runs (spec_hash);
CREATE INDEX IF NOT EXISTS idx_queue_spec_hash ON queue (spec_hash);
"""

#: SQL age (seconds) of a claimed queue row's last liveness signal: the
#: heartbeat its worker refreshes, falling back to the claim time when the
#: worker died before its first heartbeat.
_CLAIM_AGE_SQL = (
    "(julianday('now') - julianday(COALESCE(h.heartbeat_at, q.claim_time))) * 86400.0"
)

_CLAIM_JOIN_SQL = (
    "FROM queue q LEFT JOIN heartbeats h ON h.experiment = q.experiment "
    "AND h.param_hash = q.param_hash AND h.seed = q.seed "
)


def _json_default(value: Any) -> Any:
    """Make NumPy scalars/arrays JSON-serialisable without float-ifying ints."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def canonical_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Normalise a parameter dict so equal bindings canonicalise identically.

    Delegates to the shared canonicaliser (:mod:`repro.serialization`) that
    the run API's :class:`~repro.api.RunSpec` hashes through as well, so a
    parameter binding has exactly one identity no matter which layer
    computes it: tuples and lists are interchangeable, NumPy scalars become
    native numbers, enums serialise as their values, and nested mappings
    are normalised recursively (key order never matters — serialisation
    sorts keys at every depth).
    """
    return {str(k): canonical_value(v) for k, v in params.items()}


def _backend_of(canon: Mapping[str, Any]) -> str | None:
    """Extract the substrate backend recorded in a canonical param binding."""
    backend = canon.get("backend")
    return str(backend) if backend is not None else None


def param_hash(params: Mapping[str, Any]) -> str:
    """Stable hex digest of a parameter binding, independent of dict order."""
    return stable_digest(canonical_params(params))


def cell_spec_json(experiment: str, params: Mapping[str, Any], seed: int) -> str:
    """Canonical serialised form of one sweep cell.

    This string is the *transport* format of a cell: the sweep runner ships
    it to workers (local today, remote hosts tomorrow) and the store
    persists it alongside the row, so a stored run can be replayed from
    its row alone.
    """
    return canonical_json(
        {"experiment": str(experiment), "params": canonical_params(params), "seed": int(seed)}
    )


def cell_spec_hash(spec_json: str) -> str:
    """Content address of one serialised cell (16 hex chars).

    This is the digest the ``spec_hash`` columns, the content-addressed
    cache checks, and the simulation service's run ids all share.  For a
    protocol :class:`~repro.api.RunSpec` document the non-identity
    ``telemetry`` toggle is popped first, so the digest equals
    ``RunSpec.spec_hash()`` exactly; experiment-cell documents digest
    as-is (their canonical form already is the identity).
    """
    doc = json.loads(spec_json)
    if isinstance(doc, Mapping) and "protocol" in doc:
        doc = dict(doc)
        doc.pop("telemetry", None)
    return stable_digest(doc)


@dataclass(frozen=True)
class StoredRun:
    """One persisted sweep cell, decoded from its database row."""

    id: int
    experiment: str
    param_hash: str
    seed: int
    status: str
    params: dict[str, Any]
    #: substrate backend that produced the row (from the cell's params);
    #: None for experiments that do not take a backend (historic NULLs are
    #: backfilled to the default backend on store open).
    backend: str | None
    #: canonical serialised cell spec (replayable transport form); None for
    #: rows written before the unified run API.
    spec_json: str | None
    description: str
    headers: list[str]
    rows: list[dict[str, Any]]
    notes: list[str]
    error: str | None
    duration_s: float | None
    #: the run's telemetry document (decoded from ``telemetry_json``); None
    #: when telemetry was off or the row predates the column.
    telemetry: dict[str, Any] | None
    #: last liveness stamp for the cell (set when the row was recorded);
    #: None for rows that predate the column.
    heartbeat_at: str | None
    created_at: str
    #: content address of ``spec_json`` (:func:`cell_spec_hash`) — the
    #: service's run id; None only for pre-run-API rows without a spec.
    spec_hash: str | None = None
    #: the full serialised :class:`~repro.api.RunResult` envelope for
    #: protocol cells (what ``GET /v1/runs/{id}/result`` serves); None for
    #: experiment cells and rows written before the service existed.
    result_json: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "param_hash": self.param_hash,
            "seed": self.seed,
            "status": self.status,
            "params": self.params,
            "backend": self.backend,
            "spec_json": self.spec_json,
            "spec_hash": self.spec_hash,
            "description": self.description,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "error": self.error,
            "duration_s": self.duration_s,
            "telemetry": self.telemetry,
            "heartbeat_at": self.heartbeat_at,
            "created_at": self.created_at,
        }

    def to_result(self):
        """Rebuild the driver-level ExperimentResult for rendering/analysis."""
        from ..harness.experiments import ExperimentResult  # lazy: avoid import cycle

        return ExperimentResult(
            experiment=self.experiment,
            description=self.description,
            headers=list(self.headers),
            rows=[dict(row) for row in self.rows],
            seed=self.seed,
            parameters=dict(self.params),
            notes=list(self.notes),
        )


class ResultStore(StoreBackend):
    """SQLite store keyed by ``(experiment, param_hash, seed)``.

    ``busy_timeout_s`` is how long any single statement waits for a
    competing writer before raising ``SQLITE_BUSY``; on top of that every
    write transaction retries a few times, so independent worker
    processes hammering one shared store queue behind each other instead
    of crashing a sweep.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
        check_same_thread: bool = True,
    ) -> None:
        if busy_timeout_s < 0:
            raise ValueError(f"busy_timeout_s must be >= 0, got {busy_timeout_s}")
        self.path = Path(path)
        self.busy_timeout_s = float(busy_timeout_s)
        if str(path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # check_same_thread=False is the service manager's mode: one store
        # shared by HTTP handler threads behind the manager's own lock.
        self._conn = sqlite3.connect(
            str(path), timeout=self.busy_timeout_s, check_same_thread=check_same_thread
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
        self._conn.executescript(_SCHEMA)
        # Stores created before the substrate / run-API refactors lack the
        # backend and spec_json columns; add them in place.
        columns = {row["name"] for row in self._conn.execute("PRAGMA table_info(runs)")}
        if "backend" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN backend TEXT")
        legacy_store = "spec_json" not in columns
        if legacy_store:
            self._conn.execute("ALTER TABLE runs ADD COLUMN spec_json TEXT")
        # Rows written before the substrate refactor carry no backend; they
        # were produced by the then-only (default) kernel, so pin them to it
        # rather than letting summaries/plots silently mis-group them.  The
        # rewrite runs only on the one open that migrates a legacy store
        # (pre-spec_json schema): NULL backends written afterwards belong to
        # experiments that genuinely take no backend and must stay NULL.
        if legacy_store:
            backfilled = self._conn.execute(
                "UPDATE runs SET backend = ? WHERE backend IS NULL", (DEFAULT_BACKEND,)
            ).rowcount
            if backfilled:
                warnings.warn(
                    f"result store {path}: backfilled {backfilled} pre-substrate row(s) "
                    f"with backend={DEFAULT_BACKEND!r}",
                    stacklevel=2,
                )
        # Observability columns (telemetry documents + liveness stamps) came
        # later still; NULL is the correct value for pre-existing rows, so
        # this migration only adds the columns (logged, not warned — it is
        # routine, unlike the backend backfill above which rewrites rows).
        for column, decl in (("telemetry_json", "TEXT"), ("heartbeat_at", "TEXT")):
            if column not in columns:
                self._conn.execute(f"ALTER TABLE runs ADD COLUMN {column} {decl}")
                _logger.info("result store %s: added %s column", path, column)
        # Content-addressing columns (the simulation service's run-id /
        # result-cache surface).  Rows written before the columns existed
        # are backfilled from their stored spec_json so the service can
        # serve pre-existing results from cache too.
        if "result_json" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN result_json TEXT")
            _logger.info("result store %s: added result_json column", path)
        if "spec_hash" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN spec_hash TEXT")
            self._backfill_spec_hashes("runs")
        queue_columns = {row["name"] for row in self._conn.execute("PRAGMA table_info(queue)")}
        if "spec_hash" not in queue_columns:
            self._conn.execute("ALTER TABLE queue ADD COLUMN spec_hash TEXT")
            self._backfill_spec_hashes("queue")
        self._conn.executescript(_SPEC_HASH_INDEXES)
        self._conn.commit()

    def _backfill_spec_hashes(self, table: str) -> None:
        """Fill the just-added ``spec_hash`` column from stored spec strings.

        Runs exactly once per store (at the migration that adds the
        column); pre-run-API rows without a spec_json stay NULL, which the
        content-addressed lookups treat as "not addressable".
        """
        assert table in ("runs", "queue")
        rows = self._conn.execute(
            f"SELECT id, spec_json FROM {table} WHERE spec_json IS NOT NULL"
        ).fetchall()
        for row in rows:
            self._conn.execute(
                f"UPDATE {table} SET spec_hash = ? WHERE id = ?",
                (cell_spec_hash(row["spec_json"]), row["id"]),
            )
        _logger.info(
            "result store %s: added %s.spec_hash column (%d row(s) backfilled)",
            self.path, table, len(rows),
        )

    # ------------------------------------------------------------------ #
    # write plumbing: SQLITE_BUSY retries on top of the busy timeout
    # ------------------------------------------------------------------ #
    def _write_retry(self, what: str, txn: Callable[[], Any]) -> Any:
        """Run one complete write transaction, retrying on SQLITE_BUSY.

        ``txn`` must be a full transaction (its own commit): a busy error
        can surface mid-transaction (lock upgrade at commit), so the
        retry rolls back whatever partial state is open and replays the
        whole thing.  Non-lock errors propagate immediately.
        """
        delay = 0.05
        for attempt in range(_BUSY_RETRIES + 1):
            try:
                return txn()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                try:
                    self._conn.rollback()
                except sqlite3.Error:  # pragma: no cover - rollback best-effort
                    pass
                if attempt == _BUSY_RETRIES:
                    raise
                _logger.debug(
                    "store %s: %s hit SQLITE_BUSY (attempt %d/%d), retrying",
                    self.path, what, attempt + 1, _BUSY_RETRIES,
                )
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _begin_immediate(self) -> None:
        """Open an immediate (write-locked) transaction.

        All write methods commit before returning, so no transaction is
        open here; taking the write lock up front is what makes the
        guarded claim UPDATE race-free across processes.
        """
        self._conn.execute("BEGIN IMMEDIATE")

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def record_result(
        self,
        experiment: str,
        params: Mapping[str, Any],
        seed: int,
        result,
        duration_s: float | None = None,
        spec_json: str | None = None,
        telemetry_json: str | None = None,
        result_json: str | None = None,
    ) -> str:
        """Upsert a successful cell; returns the canonical parameter hash.

        ``spec_json`` is the cell's serialised replay form; when the caller
        does not provide one (direct store writes), the canonical cell spec
        is derived from the arguments.  ``telemetry_json`` is the run's
        serialised telemetry document (None when telemetry was off).
        ``result_json`` is the full serialised RunResult envelope for
        protocol cells (what the simulation service's result endpoint
        returns).  The row's ``spec_hash`` is the content address derived
        from ``spec_json``, its ``heartbeat_at`` is stamped — recording a
        result is the cell's final liveness signal — and any in-flight
        heartbeat claim is released.
        """
        canon = canonical_params(params)
        digest = param_hash(canon)
        if spec_json is None:
            spec_json = cell_spec_json(experiment, canon, seed)
        spec_digest = cell_spec_hash(spec_json)

        def txn() -> None:
            self._conn.execute(
                """
            INSERT INTO runs (experiment, param_hash, seed, status, params, backend, spec_json,
                              spec_hash, description, headers, rows, notes, error, duration_s,
                              telemetry_json, result_json, heartbeat_at)
            VALUES (?, ?, ?, 'ok', ?, ?, ?, ?, ?, ?, ?, ?, NULL, ?, ?, ?, datetime('now'))
            ON CONFLICT (experiment, param_hash, seed) DO UPDATE SET
                status = 'ok', params = excluded.params, backend = excluded.backend,
                spec_json = excluded.spec_json, spec_hash = excluded.spec_hash,
                description = excluded.description,
                headers = excluded.headers, rows = excluded.rows, notes = excluded.notes,
                error = NULL, duration_s = excluded.duration_s,
                telemetry_json = excluded.telemetry_json,
                result_json = excluded.result_json,
                heartbeat_at = datetime('now'),
                created_at = datetime('now')
            """,
                (
                    experiment,
                    digest,
                    int(seed),
                    json.dumps(canon, sort_keys=True, default=_json_default),
                    _backend_of(canon),
                    spec_json,
                    spec_digest,
                    result.description,
                    json.dumps(list(result.headers), default=_json_default),
                    json.dumps(list(result.rows), default=_json_default),
                    json.dumps(list(result.notes), default=_json_default),
                    duration_s,
                    telemetry_json,
                    result_json,
                ),
            )
            self._release_heartbeat(experiment, digest, seed)
            self._conn.commit()

        self._write_retry("record_result", txn)
        return digest

    def record_failure(
        self,
        experiment: str,
        params: Mapping[str, Any],
        seed: int,
        error: str,
        duration_s: float | None = None,
        spec_json: str | None = None,
    ) -> str:
        """Upsert a failed cell (crash traceback in ``error``)."""
        canon = canonical_params(params)
        digest = param_hash(canon)
        if spec_json is None:
            spec_json = cell_spec_json(experiment, canon, seed)
        spec_digest = cell_spec_hash(spec_json)

        def txn() -> None:
            self._conn.execute(
                """
            INSERT INTO runs (experiment, param_hash, seed, status, params, backend, spec_json,
                              spec_hash, error, duration_s, heartbeat_at)
            VALUES (?, ?, ?, 'failed', ?, ?, ?, ?, ?, ?, datetime('now'))
            ON CONFLICT (experiment, param_hash, seed) DO UPDATE SET
                status = 'failed', params = excluded.params, backend = excluded.backend,
                spec_json = excluded.spec_json, spec_hash = excluded.spec_hash,
                error = excluded.error,
                headers = '[]', rows = '[]', notes = '[]', telemetry_json = NULL,
                result_json = NULL,
                duration_s = excluded.duration_s, heartbeat_at = datetime('now'),
                created_at = datetime('now')
            """,
                (
                    experiment,
                    digest,
                    int(seed),
                    json.dumps(canon, sort_keys=True, default=_json_default),
                    _backend_of(canon),
                    spec_json,
                    spec_digest,
                    error,
                    duration_s,
                ),
            )
            self._release_heartbeat(experiment, digest, seed)
            self._conn.commit()

        self._write_retry("record_failure", txn)
        return digest

    # ------------------------------------------------------------------ #
    # liveness (the heartbeat primitive the multi-host backend reclaims on)
    # ------------------------------------------------------------------ #
    def _release_heartbeat(self, experiment: str, digest: str, seed: int) -> None:
        self._conn.execute(
            "DELETE FROM heartbeats WHERE experiment = ? AND param_hash = ? AND seed = ?",
            (experiment, digest, int(seed)),
        )

    def mark_heartbeat(
        self, experiment: str, params: Mapping[str, Any], seed: int, worker: str = ""
    ) -> str:
        """Claim/refresh liveness for an in-flight cell; returns its hash.

        One row per cell: the first mark claims (stamping ``started_at``),
        later marks refresh ``heartbeat_at``.  The claim is released when
        the cell's result or failure is recorded.
        """
        digest = param_hash(params)
        self.mark_heartbeat_key((experiment, digest, int(seed)), worker)
        return digest

    def mark_heartbeat_key(self, key: tuple[str, str, int], worker: str = "") -> None:
        """:meth:`mark_heartbeat` for callers that already hold the param hash.

        This is the lease-renewal path of queue workers: the claimed row
        carries the hash, so no parameter decode is needed to stay alive.
        """
        experiment, digest, seed = key

        def txn() -> None:
            self._conn.execute(
                """
                INSERT INTO heartbeats (experiment, param_hash, seed, worker)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (experiment, param_hash, seed) DO UPDATE SET
                    worker = excluded.worker, heartbeat_at = datetime('now')
                """,
                (experiment, digest, int(seed), worker),
            )
            self._conn.commit()

        self._write_retry("mark_heartbeat", txn)

    def clear_heartbeat(self, experiment: str, params: Mapping[str, Any], seed: int) -> None:
        """Release a claim without recording a row (e.g. an aborted sweep)."""
        self._release_heartbeat(experiment, param_hash(params), int(seed))
        self._conn.commit()

    def heartbeats(self, experiment: str | None = None) -> list[dict[str, Any]]:
        """In-flight cells with their last-seen age in seconds (oldest first)."""
        sql = (
            "SELECT experiment, param_hash, seed, worker, started_at, heartbeat_at, "
            "CAST((julianday('now') - julianday(heartbeat_at)) * 86400.0 AS REAL) AS age_s "
            "FROM heartbeats"
        )
        params: tuple = ()
        if experiment is not None:
            sql += " WHERE experiment = ?"
            params = (experiment,)
        rows = self._conn.execute(sql + " ORDER BY heartbeat_at ASC", params).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # work queue (the StoreBackend claim surface distributed sweeps drain)
    # ------------------------------------------------------------------ #
    def _decode_queue_row(self, row: sqlite3.Row) -> QueuedCell:
        return QueuedCell(
            experiment=row["experiment"],
            param_hash=row["param_hash"],
            seed=int(row["seed"]),
            spec_json=row["spec_json"],
            state=row["state"],
            owner=row["owner"],
            claim_time=row["claim_time"],
            attempt=int(row["attempt"]),
            spec_hash=row["spec_hash"],
        )

    def enqueue_cells(self, entries: Iterable[tuple[str, str, int, str]]) -> int:
        entries = list(entries)

        def txn() -> int:
            self._begin_immediate()
            pending = 0
            for experiment, digest, seed, spec_json in entries:
                pending += self._conn.execute(
                    """
                    INSERT INTO queue (experiment, param_hash, seed, spec_json, spec_hash)
                    VALUES (?, ?, ?, ?, ?)
                    ON CONFLICT (experiment, param_hash, seed) DO UPDATE SET
                        spec_json = excluded.spec_json, spec_hash = excluded.spec_hash,
                        state = 'pending',
                        owner = NULL, claim_time = NULL, attempt = 0
                    WHERE queue.state IN ('done', 'failed')
                    """,
                    (experiment, digest, int(seed), str(spec_json), cell_spec_hash(spec_json)),
                ).rowcount
            self._conn.commit()
            return pending

        return self._write_retry("enqueue_cells", txn)

    def claim_cell(self, owner: str = "") -> QueuedCell | None:
        def txn() -> QueuedCell | None:
            # BEGIN IMMEDIATE holds the write lock for the whole
            # select-then-update, so the guarded `WHERE state = 'pending'`
            # can never lose a race: one claimant per row, full stop.
            self._begin_immediate()
            row = self._conn.execute(
                "SELECT id FROM queue WHERE state = 'pending' ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                self._conn.commit()
                return None
            updated = self._conn.execute(
                "UPDATE queue SET state = 'claimed', owner = ?, "
                "claim_time = datetime('now'), attempt = attempt + 1 "
                "WHERE id = ? AND state = 'pending'",
                (owner, row["id"]),
            ).rowcount
            claimed = self._conn.execute(
                "SELECT * FROM queue WHERE id = ?", (row["id"],)
            ).fetchone()
            self._conn.commit()
            if updated != 1:  # pragma: no cover - unreachable under the write lock
                return None
            return self._decode_queue_row(claimed)

        return self._write_retry("claim_cell", txn)

    def finish_cell(self, key: tuple[str, str, int], state: str) -> None:
        if state not in ("done", "failed"):
            raise ValueError(f"terminal queue state must be 'done' or 'failed', got {state!r}")
        experiment, digest, seed = key

        def txn() -> None:
            self._conn.execute(
                "UPDATE queue SET state = ? WHERE experiment = ? AND param_hash = ? AND seed = ?",
                (state, experiment, digest, int(seed)),
            )
            self._conn.commit()

        self._write_retry("finish_cell", txn)

    def requeue_cell(self, key: tuple[str, str, int]) -> None:
        experiment, digest, seed = key

        def txn() -> None:
            self._conn.execute(
                "UPDATE queue SET state = 'pending', owner = NULL, claim_time = NULL "
                "WHERE experiment = ? AND param_hash = ? AND seed = ? AND state = 'claimed'",
                (experiment, digest, int(seed)),
            )
            self._release_heartbeat(experiment, digest, seed)
            self._conn.commit()

        self._write_retry("requeue_cell", txn)

    def reclaim_stale(self, lease_s: float) -> list[tuple[str, str, int]]:
        if lease_s < 0:
            raise ValueError(f"lease_s must be >= 0, got {lease_s}")

        def txn() -> list[tuple[str, str, int]]:
            self._begin_immediate()
            rows = self._conn.execute(
                "SELECT q.id, q.experiment, q.param_hash, q.seed "
                + _CLAIM_JOIN_SQL
                + f"WHERE q.state = 'claimed' AND {_CLAIM_AGE_SQL} > ?",
                (float(lease_s),),
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE queue SET state = 'pending', owner = NULL, claim_time = NULL "
                    "WHERE id = ?",
                    (row["id"],),
                )
                self._release_heartbeat(row["experiment"], row["param_hash"], row["seed"])
            self._conn.commit()
            return [(r["experiment"], r["param_hash"], int(r["seed"])) for r in rows]

        reclaimed = self._write_retry("reclaim_stale", txn)
        if reclaimed:
            _logger.info(
                "store %s: reclaimed %d stale claim(s) older than %.1fs",
                self.path, len(reclaimed), lease_s,
            )
        return reclaimed

    def fail_exhausted(self, max_attempts: int) -> list[QueuedCell]:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")

        def txn() -> list[QueuedCell]:
            self._begin_immediate()
            rows = self._conn.execute(
                "SELECT * FROM queue WHERE state = 'pending' AND attempt >= ? ORDER BY id",
                (int(max_attempts),),
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE queue SET state = 'failed' WHERE id = ?", (row["id"],)
                )
            self._conn.commit()
            return [self._decode_queue_row(row) for row in rows]

        failed = self._write_retry("fail_exhausted", txn)
        return [dataclass_replace(cell, state="failed") for cell in failed]

    def retry_cell(self, spec_hash: str) -> QueuedCell | None:
        """Reset a *failed* queue row back to pending, clearing its attempts.

        Content-addressed like the service's run ids: the row is found by
        its spec digest.  Only a ``failed`` row is touched — pending,
        claimed, and done rows come back ``None`` so callers can report
        the conflict (the service maps that to 409).  The attempt counter
        restarts from zero, giving a poison cell that exhausted its
        budget a full fresh allowance.
        """

        def txn() -> QueuedCell | None:
            self._begin_immediate()
            row = self._conn.execute(
                "SELECT id FROM queue WHERE spec_hash = ? AND state = 'failed' "
                "ORDER BY id LIMIT 1",
                (str(spec_hash),),
            ).fetchone()
            if row is None:
                self._conn.commit()
                return None
            self._conn.execute(
                "UPDATE queue SET state = 'pending', owner = NULL, claim_time = NULL, "
                "attempt = 0 WHERE id = ?",
                (row["id"],),
            )
            updated = self._conn.execute(
                "SELECT * FROM queue WHERE id = ?", (row["id"],)
            ).fetchone()
            self._conn.commit()
            return self._decode_queue_row(updated)

        return self._write_retry("retry_cell", txn)

    def queue_counts(self, experiment: str | None = None) -> list[dict[str, Any]]:
        sql = (
            "SELECT experiment, "
            "SUM(state = 'pending') AS pending, SUM(state = 'claimed') AS claimed, "
            "SUM(state = 'done') AS done, SUM(state = 'failed') AS failed "
            "FROM queue"
        )
        args: tuple = ()
        if experiment is not None:
            sql += " WHERE experiment = ?"
            args = (experiment,)
        rows = self._conn.execute(sql + " GROUP BY experiment ORDER BY experiment", args).fetchall()
        return [dict(row) for row in rows]

    def queue_depth(self) -> dict[str, int]:
        row = self._conn.execute(
            "SELECT SUM(state = 'pending') AS pending, SUM(state = 'claimed') AS claimed, "
            "SUM(state = 'done') AS done, SUM(state = 'failed') AS failed FROM queue"
        ).fetchone()
        return {state: int(row[state] or 0) for state in ("pending", "claimed", "done", "failed")}

    def queue_cells(self, state: str | None = None) -> list[QueuedCell]:
        sql = "SELECT * FROM queue"
        args: tuple = ()
        if state is not None:
            sql += " WHERE state = ?"
            args = (state,)
        rows = self._conn.execute(sql + " ORDER BY id", args).fetchall()
        return [self._decode_queue_row(row) for row in rows]

    def stale_claims(self, lease_s: float) -> list[dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT q.experiment, q.param_hash, q.seed, q.owner, q.attempt, q.claim_time, "
            + f"CAST({_CLAIM_AGE_SQL} AS REAL) AS age_s "
            + _CLAIM_JOIN_SQL
            + f"WHERE q.state = 'claimed' AND {_CLAIM_AGE_SQL} > ? ORDER BY q.id",
            (float(lease_s),),
        ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def is_completed(self, experiment: str, params: Mapping[str, Any], seed: int) -> bool:
        """True when the cell already has a successful row (failures retry)."""
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE experiment = ? AND param_hash = ? AND seed = ? AND status = 'ok'",
            (experiment, param_hash(params), int(seed)),
        ).fetchone()
        return row is not None

    def get_by_spec_hash(self, spec_hash: str) -> StoredRun | None:
        """Content-addressed lookup: the stored run for one spec digest.

        This is the shared cache check: queue workers consult it before
        executing a claim, the sweep runner synthesises queue-backend
        outcomes from it, and the simulation service resolves run ids
        through it.  Returns the row whatever its status — callers decide
        whether a ``failed`` row counts as a hit.
        """
        row = self._conn.execute(
            "SELECT * FROM runs WHERE spec_hash = ? ORDER BY id LIMIT 1", (str(spec_hash),)
        ).fetchone()
        return self._decode(row) if row is not None else None

    def queue_cell_by_spec_hash(self, spec_hash: str) -> QueuedCell | None:
        """The queue row for one spec digest (None when never enqueued)."""
        row = self._conn.execute(
            "SELECT * FROM queue WHERE spec_hash = ? ORDER BY id LIMIT 1", (str(spec_hash),)
        ).fetchone()
        return self._decode_queue_row(row) if row is not None else None

    def claim_age_s(self, key: tuple[str, str, int]) -> float | None:
        """Seconds since the claimed cell's last liveness signal.

        None when the cell is not currently claimed.  This is the
        "heartbeat age" the service status endpoint reports so clients
        can tell a live claim from one waiting out its lease.
        """
        experiment, digest, seed = key
        row = self._conn.execute(
            f"SELECT CAST({_CLAIM_AGE_SQL} AS REAL) AS age_s "
            + _CLAIM_JOIN_SQL
            + "WHERE q.state = 'claimed' AND q.experiment = ? AND q.param_hash = ? "
            "AND q.seed = ?",
            (experiment, digest, int(seed)),
        ).fetchone()
        if row is None or row["age_s"] is None:
            return None
        return float(row["age_s"])

    def completed_cells(self) -> set[tuple[str, str, int]]:
        """All ``(experiment, param_hash, seed)`` keys with a successful row."""
        rows = self._conn.execute(
            "SELECT experiment, param_hash, seed FROM runs WHERE status = 'ok'"
        ).fetchall()
        return {(r["experiment"], r["param_hash"], int(r["seed"])) for r in rows}

    def query(self, experiment: str | None = None, status: str | None = None) -> list[StoredRun]:
        """Fetch stored runs, optionally filtered, in insertion order."""
        clauses, args = [], []
        if experiment is not None:
            clauses.append("experiment = ?")
            args.append(experiment)
        if status is not None:
            clauses.append("status = ?")
            args.append(status)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT * FROM runs {where} ORDER BY experiment, param_hash, seed", args
        ).fetchall()
        return [self._decode(row) for row in rows]

    def get(self, experiment: str, params: Mapping[str, Any], seed: int) -> StoredRun | None:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE experiment = ? AND param_hash = ? AND seed = ?",
            (experiment, param_hash(params), int(seed)),
        ).fetchone()
        return self._decode(row) if row is not None else None

    def results(self, experiment: str | None = None) -> list:
        """Successful runs rebuilt as ExperimentResult objects."""
        return [run.to_result() for run in self.query(experiment=experiment, status="ok")]

    def summary(self) -> list[dict[str, Any]]:
        """Per-(experiment, backend) counts of completed/failed cells and runtime."""
        rows = self._conn.execute(
            """
            SELECT experiment,
                   backend,
                   SUM(status = 'ok') AS completed,
                   SUM(status = 'failed') AS failed,
                   SUM(COALESCE(duration_s, 0)) AS total_duration_s
            FROM runs GROUP BY experiment, backend ORDER BY experiment, backend
            """
        ).fetchall()
        return [dict(row) for row in rows]

    def export_json(self, path: str | Path, experiment: str | None = None) -> Path:
        """Dump stored runs (all statuses) to one JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = [run.as_dict() for run in self.query(experiment=experiment)]
        path.write_text(json.dumps(payload, indent=2, default=_json_default) + "\n")
        return path

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _decode(self, row: sqlite3.Row) -> StoredRun:
        telemetry_json = row["telemetry_json"]
        return StoredRun(
            id=int(row["id"]),
            experiment=row["experiment"],
            param_hash=row["param_hash"],
            seed=int(row["seed"]),
            status=row["status"],
            params=json.loads(row["params"]),
            backend=row["backend"],
            spec_json=row["spec_json"],
            description=row["description"],
            headers=json.loads(row["headers"]),
            rows=json.loads(row["rows"]),
            notes=json.loads(row["notes"]),
            error=row["error"],
            duration_s=row["duration_s"],
            telemetry=json.loads(telemetry_json) if telemetry_json else None,
            heartbeat_at=row["heartbeat_at"],
            created_at=row["created_at"],
            spec_hash=row["spec_hash"],
            result_json=row["result_json"],
        )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r}, runs={len(self)})"
