"""Parallel sweep execution over a process pool.

The runner expands a :class:`~repro.orchestration.config.SweepDefinition`
into independent cells — one ``(experiment, params, seed)`` triple per grid
point and repetition — and fans them out over
:class:`concurrent.futures.ProcessPoolExecutor`.  Design invariants:

* **Determinism.** Every cell's seed is derived in the parent from the
  sweep's master seed via the existing :class:`~repro.simulator.rng.RngStream`
  (``derive_seed`` under the hood), keyed on the experiment name, the
  canonical parameter hash, and the repetition index.  A cell's output is a
  pure function of its seed and parameters, so ``--jobs 1`` and ``--jobs 4``
  produce bit-identical stores.
* **Isolation.** A crashed cell records a ``failed`` row (with traceback)
  in the store instead of killing the sweep; failed cells are retried on
  the next invocation.
* **Resume.** With ``skip_completed`` (the default), cells whose key
  already has a successful row in the store are skipped without executing,
  so re-running a finished sweep executes zero cells.

Workers receive every cell as one *serialised spec string* — either an
experiment cell (``{"experiment", "params", "seed"}``) resolved by name
through the default registry, or a protocol :class:`~repro.api.RunSpec`
document executed through :func:`repro.run`.  Nothing but that string
crosses the process boundary, which is what makes the runner's execution
backends pure transport choices:

* ``local`` — fan the cells over a :class:`ProcessPoolExecutor` on this
  host (the default, and the only option before the queue existed).
* ``queue`` — enqueue the cells as pending rows in the store's work
  queue and let pull-based workers (this process, and any number of
  ``drr-gossip worker`` processes on hosts sharing the store) claim and
  execute them; see :mod:`~repro.orchestration.worker`.

Identical cells are *content-addressed*: cells whose serialised spec
strings are equal collapse onto one execution, and the duplicates are
reported as ``cached`` — on the queue backend a claim additionally
checks the store for an already-recorded result before executing, so
re-submitted specs are served from cache across sweeps too.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..observability.logs import get_logger
from ..simulator.rng import RngStream, derive_seed
from .config import SweepDefinition
from .registry import ExperimentRegistry, load_builtin_experiments
from .store import ResultStore, cell_spec_hash, cell_spec_json, param_hash

_logger = get_logger("orchestration.runner")

__all__ = [
    "EXECUTION_BACKENDS",
    "SweepCell",
    "CellOutcome",
    "SweepReport",
    "SweepRunner",
    "expand_cells",
    "cells_from_run_specs",
]

#: how a sweep's cells reach their executors: a process pool on this host,
#: or the store's claimable work queue (any number of hosts)
EXECUTION_BACKENDS = ("local", "queue")

#: largest estimate vector persisted inside a stored RunResult envelope;
#: beyond this the vector is dropped (marked ``estimates_omitted``) so a
#: single n=10^8 cell cannot bloat the store or the service's responses
MAX_ENVELOPE_ESTIMATES = 65536


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work."""

    experiment: str
    params: Mapping[str, Any]
    param_hash: str
    seed: int
    rep: int
    #: canonical serialised RunSpec when this cell is a protocol-spec cell
    #: (``drr-gossip sweep --spec``); None for registered-experiment cells.
    run_spec: str | None = None

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.experiment, self.param_hash, self.seed)

    def spec_json(self) -> str:
        """The cell's transport form: one self-contained serialised spec."""
        if self.run_spec is not None:
            return self.run_spec
        return cell_spec_json(self.experiment, self.params, self.seed)

    def describe(self) -> str:
        binding = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}({binding}) seed={self.seed}"


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell.

    ``cached`` marks a duplicate of an executed cell (identical
    serialised spec) whose result was fanned out instead of recomputed;
    ``skipped`` marks a cell whose result predates this invocation.
    """

    cell: SweepCell
    status: str  # 'ok' | 'failed' | 'skipped' | 'cached'
    duration_s: float = 0.0
    error: str | None = None


@dataclass
class SweepReport:
    """Aggregate outcome of one :meth:`SweepRunner.run` invocation."""

    sweep: str
    outcomes: list[CellOutcome] = field(default_factory=list)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def executed(self) -> int:
        return self.count("ok")

    @property
    def failed(self) -> int:
        return self.count("failed")

    @property
    def skipped(self) -> int:
        return self.count("skipped")

    @property
    def cached(self) -> int:
        return self.count("cached")

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def wall_time_s(self) -> float:
        return sum(o.duration_s for o in self.outcomes)

    def summary(self) -> str:
        extra = f", {self.cached} cached" if self.cached else ""
        return (
            f"sweep {self.sweep!r}: {self.total} cells — "
            f"{self.executed} executed, {self.skipped} skipped, {self.failed} failed{extra} "
            f"({self.wall_time_s:.1f}s cell time)"
        )


def expand_cells(
    definition: SweepDefinition,
    registry: ExperimentRegistry | None = None,
) -> list[SweepCell]:
    """Expand a sweep definition into its full, deterministic cell list.

    Cell seeds depend only on (master seed, experiment, param hash, rep), so
    adding an experiment to a sweep file never changes the seeds — and hence
    the stored results — of the existing ones.
    """
    registry = registry if registry is not None else load_builtin_experiments()
    stream = RngStream(definition.seed)
    cells: list[SweepCell] = []
    for plan in definition.plans:
        spec = registry.get(plan.experiment)
        reps = definition.repetitions_for(plan)
        for params in spec.expand_grid(plan.grid):
            # Pin the execution backend into every cell of a backend-aware
            # experiment so stored rows are never ambiguous about which
            # substrate kernel produced them (even when the sweep relied on
            # the default).
            if "backend" in spec.param_names and "backend" not in params:
                params = {**params, "backend": spec.param("backend").default}
            digest = param_hash(params)
            seeds = stream.seeds(reps, plan.experiment, digest)
            for rep, seed in enumerate(seeds):
                cells.append(
                    SweepCell(
                        experiment=plan.experiment,
                        params=params,
                        param_hash=digest,
                        seed=int(seed),
                        rep=rep,
                    )
                )
    return cells


def cells_from_run_specs(specs: Sequence, repetitions: int = 1) -> list[SweepCell]:
    """Expand protocol :class:`~repro.api.RunSpec` values into sweep cells.

    Each spec is one cell under the experiment name ``run:<protocol>``; with
    ``repetitions > 1`` the extra cells get deterministic seeds derived from
    the spec's own seed, so a spec file plus a repetition count expands the
    same way on every host.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    cells: list[SweepCell] = []
    for spec in specs:
        for rep in range(repetitions):
            cell_spec = spec if rep == 0 else spec.with_seed(derive_seed(spec.seed, "spec-rep", rep))
            # The telemetry toggle is excluded alongside the seed: the cell's
            # param_hash pops it, and the store re-digests these params as the
            # row identity — keeping them aligned is what makes a telemetry
            # re-run resume (skip) instead of duplicating every cell.
            params = {
                k: v for k, v in cell_spec.to_dict().items() if k not in ("seed", "telemetry")
            }
            cells.append(
                SweepCell(
                    experiment=f"run:{spec.protocol}",
                    params=params,
                    param_hash=cell_spec.param_hash(),
                    seed=cell_spec.seed,
                    rep=rep,
                    run_spec=cell_spec.canonical_json(),
                )
            )
    return cells


def _execute_cell(spec_json: str) -> dict[str, Any]:
    """Run one serialised cell; never raises (crashes become a failure payload).

    Module-level so the process pool can pickle it.  The single string
    argument is the whole contract between the fan-out and a worker: a
    ``{"protocol": ...}`` document dispatches through :func:`repro.run`,
    a ``{"experiment": ...}`` document resolves the registered driver by
    name (parameters re-validated through the registry schema, which
    restores tuples/enums the JSON transport flattened).
    """
    start = time.perf_counter()
    try:
        payload = json.loads(spec_json)
        telemetry_doc = None
        envelope_doc = None
        if "protocol" in payload:
            from ..api import RunSpec
            from ..api import run as run_spec_fn

            envelope = run_spec_fn(RunSpec.from_dict(payload))
            result = envelope.to_experiment_result()
            telemetry_doc = envelope.telemetry
            # The full RunResult document is carried back alongside the
            # store-row projection so it can be persisted verbatim — the
            # content-addressed cache the simulation service serves from.
            envelope_doc = envelope.to_dict()
            estimates = envelope_doc.get("estimates")
            if estimates is not None and len(estimates) > MAX_ENVELOPE_ESTIMATES:
                envelope_doc["estimates"] = None
                envelope_doc["estimates_omitted"] = len(estimates)
        else:
            spec = load_builtin_experiments().get(payload["experiment"])
            params = spec.validate_params(payload.get("params", {}))
            result = spec.driver(seed=int(payload["seed"]), **params)
        out = {"ok": True, "result": result, "duration_s": time.perf_counter() - start}
        if telemetry_doc is not None:
            out["telemetry"] = telemetry_doc
        if envelope_doc is not None:
            out["envelope"] = envelope_doc
        return out
    except Exception:  # KeyboardInterrupt/SystemExit propagate: a sweep must stay interruptible
        return {
            "ok": False,
            "error": traceback.format_exc(),
            "duration_s": time.perf_counter() - start,
        }


def _execute_cell_isolated(cell: "SweepCell") -> dict[str, Any]:
    """Run one cell in a dedicated single-worker pool.

    Used for cells caught in a pool breakage twice: in isolation, a worker
    death can only be this cell's own doing, so the failure row it records
    names the true culprit instead of an innocent batchmate.
    """
    with ProcessPoolExecutor(max_workers=1) as pool:
        future = pool.submit(_execute_cell, cell.spec_json())
        try:
            return future.result()
        except BrokenExecutor:
            return {
                "ok": False,
                "error": "worker process died (pool broken) while executing this cell in isolation",
                "duration_s": 0.0,
            }
        except Exception:
            return {"ok": False, "error": traceback.format_exc(), "duration_s": 0.0}


class SweepRunner:
    """Fan a sweep's cells out to an execution backend and persist every outcome.

    ``backend="local"`` executes on this host's process pool (``jobs``
    workers).  ``backend="queue"`` enqueues the cells into the store's
    claimable work queue and drains it: with ``jobs == 1`` the runner
    itself works the queue in-process, with ``jobs > 1`` it launches that
    many ``python -m repro worker`` processes — and in both cases any
    *additional* workers pointed at the same store (other hosts sharing
    the filesystem) claim cells right alongside, shrinking the wall
    clock without any coordination beyond the store itself.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        jobs: int = 1,
        backend: str = "local",
        skip_completed: bool = True,
        registry: ExperimentRegistry | None = None,
        progress: Callable[[CellOutcome, int, int], None] | None = None,
        heartbeat_interval_s: float = 15.0,
        lease_s: float = 60.0,
        max_attempts: int = 3,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend not in EXECUTION_BACKENDS:
            known = ", ".join(EXECUTION_BACKENDS)
            raise ValueError(f"unknown execution backend {backend!r} (choose from: {known})")
        if heartbeat_interval_s <= 0:
            raise ValueError(f"heartbeat_interval_s must be positive, got {heartbeat_interval_s}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.jobs = jobs
        self.backend = backend
        self.skip_completed = skip_completed
        self.registry = registry
        self.progress = progress
        #: how often in-flight cells refresh their store heartbeat while no
        #: cell finishes — both the local pool's liveness signal and the
        #: lease the queue backend reclaims stale claims on
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        #: queue backend: seconds of heartbeat silence before a claim is stale
        self.lease_s = float(lease_s)
        #: queue backend: claims per cell before it is marked failed
        self.max_attempts = int(max_attempts)
        #: duplicate cells (identical serialised spec) keyed by the spec of
        #: their executed representative; rebuilt on every run_cells call
        self._dupes: dict[str, list[SweepCell]] = {}

    def run(self, definition: SweepDefinition) -> SweepReport:
        return self.run_cells(expand_cells(definition, self.registry), name=definition.name)

    def run_cells(self, cells: Sequence[SweepCell], name: str = "cells") -> SweepReport:
        """Execute an explicit cell list (sweep definitions and spec files both land here)."""
        report = SweepReport(sweep=name)
        done_keys = self.store.completed_cells() if self.skip_completed else set()
        todo: list[SweepCell] = []
        self._dupes = {}
        for cell in cells:
            if cell.key in done_keys:
                report.outcomes.append(CellOutcome(cell=cell, status="skipped"))
                continue
            # Content-addressed dedup: identical serialised specs collapse
            # onto one execution; the twins get the result fanned out.
            spec = cell.spec_json()
            if spec in self._dupes:
                self._dupes[spec].append(cell)
            else:
                self._dupes[spec] = []
                todo.append(cell)

        for index, outcome in enumerate(report.outcomes, start=1):
            self._emit(outcome, index, len(cells))

        if todo:
            if self.backend == "queue":
                self._run_queue(report, todo, len(cells))
            elif self.jobs == 1:
                for cell in todo:
                    self.store.mark_heartbeat(cell.experiment, cell.params, cell.seed)
                    payload = _execute_cell(cell.spec_json())
                    self._record(report, cell, payload, len(cells))
            else:
                self._run_pool(report, todo, len(cells))
        return report

    def _run_pool(self, report: SweepReport, todo: Sequence[SweepCell], total: int) -> None:
        # Load driver registrations before forking so workers inherit them
        # and the fallback in-worker import only matters under spawn.
        load_builtin_experiments()
        queue = list(todo)
        retried: set[tuple[str, str, int]] = set()
        while queue:
            # A dead worker (OOM-kill, segfault) breaks the whole pool: every
            # in-flight future raises BrokenExecutor even though its cell never
            # ran.  Those cells are requeued into a fresh pool once; a cell
            # whose retry also breaks the pool is recorded as the culprit.
            broken: list[SweepCell] = []
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(queue))) as pool:
                pending = {
                    pool.submit(_execute_cell, cell.spec_json()): cell for cell in queue
                }
                for cell in queue:
                    self.store.mark_heartbeat(cell.experiment, cell.params, cell.seed)
                queue = []
                while pending:
                    finished, _ = wait(
                        pending,
                        timeout=self.heartbeat_interval_s,
                        return_when=FIRST_COMPLETED,
                    )
                    if not finished:
                        # Nothing completed within the interval: refresh the
                        # in-flight claims so their heartbeats stay fresh.
                        for cell in pending.values():
                            self.store.mark_heartbeat(cell.experiment, cell.params, cell.seed)
                        continue
                    for future in finished:
                        cell = pending.pop(future)
                        try:
                            payload = future.result()
                        except BrokenExecutor:
                            broken.append(cell)
                            continue
                        except Exception:
                            payload = {
                                "ok": False,
                                "error": traceback.format_exc(),
                                "duration_s": 0.0,
                            }
                        self._record(report, cell, payload, total)
            for cell in broken:
                if cell.key in retried:
                    # Broken twice: run it alone in a single-worker pool so a
                    # poison cell can only take itself down, never a batchmate.
                    self._record(report, cell, _execute_cell_isolated(cell), total)
                else:
                    retried.add(cell.key)
                    queue.append(cell)

    def _run_queue(self, report: SweepReport, todo: Sequence[SweepCell], total: int) -> None:
        """Enqueue the cells into the store's work queue and drain it."""
        store = self.store
        if str(store.path) == ":memory:" and self.jobs > 1:
            raise ValueError(
                "the queue backend with jobs > 1 launches worker processes and "
                "needs a file-backed store, not ':memory:'"
            )
        store.enqueue_cells(
            (cell.experiment, cell.param_hash, cell.seed, cell.spec_json()) for cell in todo
        )
        if self.jobs == 1:
            from .worker import QueueWorker  # local import: worker imports this module

            QueueWorker(
                store,
                lease_s=self.lease_s,
                max_attempts=self.max_attempts,
                heartbeat_interval_s=self.heartbeat_interval_s,
                skip_completed=self.skip_completed,
            ).drain()
        else:
            self._drain_with_worker_processes()
        # The queue decoupled execution from this process (other workers may
        # have run some cells), so outcomes are synthesised from what
        # actually landed in the store — looked up by content address, the
        # same key the workers' cache checks and the service use — in cell
        # order.
        for cell in todo:
            run = store.get_by_spec_hash(cell_spec_hash(cell.spec_json()))
            if run is None:
                payload: dict[str, Any] = {
                    "ok": False,
                    "error": (
                        "cell never executed: the queue drain ended without a stored "
                        "result (all workers died?); re-run the sweep to retry it"
                    ),
                    "duration_s": 0.0,
                    "already_recorded": True,
                }
            elif run.ok:
                payload = {"ok": True, "duration_s": run.duration_s or 0.0, "already_recorded": True}
            else:
                payload = {
                    "ok": False,
                    "error": run.error or "unknown failure",
                    "duration_s": run.duration_s or 0.0,
                    "already_recorded": True,
                }
            self._record(report, cell, payload, total)

    def _drain_with_worker_processes(self) -> None:
        """Launch ``self.jobs`` queue workers as subprocesses and wait them out."""
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
        command = [
            sys.executable, "-m", "repro", "worker",
            "--store", str(self.store.path),
            "--lease", str(self.lease_s),
            "--max-attempts", str(self.max_attempts),
            "--heartbeat", str(self.heartbeat_interval_s),
        ]
        if not self.skip_completed:
            command.append("--no-skip")
        workers = [
            subprocess.Popen(command + ["--worker-id", f"{os.getpid()}:w{index}"], env=env)
            for index in range(self.jobs)
        ]
        for proc in workers:
            code = proc.wait()
            if code not in (0, 1):  # 1 = drained but some cells failed; rows say which
                _logger.warning("queue worker %s exited with code %d", proc.args[-1], code)

    def _record(self, report: SweepReport, cell: SweepCell, payload: Mapping[str, Any], total: int) -> None:
        duration = float(payload.get("duration_s", 0.0))
        if payload["ok"]:
            if not payload.get("already_recorded"):
                telemetry = payload.get("telemetry")
                envelope = payload.get("envelope")
                self.store.record_result(
                    cell.experiment, cell.params, cell.seed, payload["result"], duration,
                    spec_json=cell.spec_json(),
                    telemetry_json=(
                        json.dumps(telemetry, sort_keys=True) if telemetry is not None else None
                    ),
                    result_json=(
                        json.dumps(envelope, sort_keys=True) if envelope is not None else None
                    ),
                )
            outcome = CellOutcome(cell=cell, status="ok", duration_s=duration)
        else:
            if not payload.get("already_recorded"):
                _logger.warning("cell %s failed:\n%s", cell.describe(), payload["error"])
                self.store.record_failure(
                    cell.experiment, cell.params, cell.seed, payload["error"], duration,
                    spec_json=cell.spec_json(),
                )
            outcome = CellOutcome(cell=cell, status="failed", duration_s=duration, error=payload["error"])
        report.outcomes.append(outcome)
        self._emit(outcome, len(report.outcomes), total)
        # Fan the executed result out to content-identical duplicates: same
        # spec string means same store row, so nothing else is recorded.
        for twin in self._dupes.get(cell.spec_json(), ()):
            if payload["ok"]:
                twin_outcome = CellOutcome(cell=twin, status="cached")
            else:
                twin_outcome = CellOutcome(cell=twin, status="failed", error=payload["error"])
            report.outcomes.append(twin_outcome)
            self._emit(twin_outcome, len(report.outcomes), total)

    def _emit(self, outcome: CellOutcome, index: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, index, total)


def print_progress(outcome: CellOutcome, index: int, total: int) -> None:
    """Default progress reporter: one line per finished/skipped cell."""
    suffixes = {"skipped": "already in store", "cached": "deduplicated"}
    suffix = suffixes.get(outcome.status, f"{outcome.duration_s:.2f}s")
    print(f"[{index}/{total}] {outcome.status:<7} {outcome.cell.describe()} ({suffix})", flush=True)
