"""The store's queue/claim surface: what a distributed sweep drains.

PR 4 reduced every sweep cell to one serialised spec string, so multi-host
fan-out is purely a transport question: *where do workers get the next
string, and where do results go back?*  This module pins that transport
down as a small interface — :class:`StoreBackend` — so the sweep runner
and the pull-based worker loop (:mod:`~repro.orchestration.worker`) never
care which database holds the queue.

:class:`~repro.orchestration.store.ResultStore` implements the surface
over SQLite (WAL + ``BEGIN IMMEDIATE`` claims), which is enough for any
number of workers sharing a filesystem.  A Postgres/MySQL store for
real cross-datacenter concurrency implements the same eight methods
(``SELECT ... FOR UPDATE SKIP LOCKED`` instead of the immediate-lock
``UPDATE``) and slots in without touching the runner or the worker.

Queue lifecycle
---------------
Every queued cell is one row keyed by ``(experiment, param_hash, seed)``
— the same identity the result rows use — and moves through::

    pending --claim--> claimed --finish--> done | failed
       ^                  |
       +---reclaim(stale)-+          (attempt += 1 on every claim)

* **claim** is atomic: exactly one worker wins a pending row.
* **claimed** rows carry ``owner`` and ``claim_time`` and are kept alive
  by the worker's heartbeat row; a claim whose liveness signal is older
  than the lease is *stale* and goes back to pending (the worker died).
* **fail_exhausted** stops a poison cell that keeps killing its workers:
  once a pending row has been claimed ``max_attempts`` times without a
  recorded result, it is marked failed instead of looping forever.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = ["QUEUE_STATES", "QueuedCell", "StoreBackend"]

#: the four states a queue row moves through
QUEUE_STATES = ("pending", "claimed", "done", "failed")


@dataclass(frozen=True)
class QueuedCell:
    """One row of the work queue, decoded from whatever backend holds it."""

    experiment: str
    param_hash: str
    seed: int
    #: the cell's whole transport form (``SweepCell.spec_json()``) — a
    #: worker needs nothing else to execute it
    spec_json: str
    state: str
    owner: str | None = None
    claim_time: str | None = None
    #: how many times this cell has been claimed (capped by the worker's
    #: ``max_attempts``)
    attempt: int = 0
    #: content address of ``spec_json`` (``cell_spec_hash``) — the id the
    #: simulation service hands out; None on rows from pre-service stores
    spec_hash: str | None = None

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.experiment, self.param_hash, int(self.seed))


class StoreBackend(abc.ABC):
    """Minimal queue/claim surface of a result store.

    Implementations must make :meth:`claim_cell` atomic under concurrent
    callers from independent processes/hosts: a pending row is handed to
    exactly one of them.
    """

    @abc.abstractmethod
    def enqueue_cells(self, entries: Iterable[tuple[str, str, int, str]]) -> int:
        """Insert ``(experiment, param_hash, seed, spec_json)`` rows as pending.

        Rows already queued stay untouched while in flight (pending or
        claimed — another submitter got there first); ``done``/``failed``
        rows are reset to pending with a fresh attempt budget, mirroring
        the local backend's failures-retry-on-the-next-invocation
        semantics.  Returns how many rows became pending.
        """

    @abc.abstractmethod
    def claim_cell(self, owner: str = "") -> QueuedCell | None:
        """Atomically claim the oldest pending row, or None when none is pending.

        The winning row moves to ``claimed`` with ``owner``/``claim_time``
        set and ``attempt`` incremented.
        """

    @abc.abstractmethod
    def finish_cell(self, key: tuple[str, str, int], state: str) -> None:
        """Move a claimed row to its terminal state (``done`` or ``failed``)."""

    @abc.abstractmethod
    def requeue_cell(self, key: tuple[str, str, int]) -> None:
        """Release a claim back to pending (graceful worker shutdown mid-cell)."""

    @abc.abstractmethod
    def reclaim_stale(self, lease_s: float) -> list[tuple[str, str, int]]:
        """Return stale claims to pending; returns the reclaimed keys.

        A claim is stale when its last liveness signal — the heartbeat row
        its worker refreshes, or ``claim_time`` if the worker never got
        that far — is older than ``lease_s`` seconds.
        """

    @abc.abstractmethod
    def fail_exhausted(self, max_attempts: int) -> list[QueuedCell]:
        """Mark pending rows already claimed ``max_attempts`` times as failed.

        Returns the rows so the caller can record a failure row per cell;
        this is the cap that turns a worker-killing poison cell into a
        recorded failure instead of an infinite reclaim loop.
        """

    @abc.abstractmethod
    def queue_counts(self, experiment: str | None = None) -> list[dict[str, Any]]:
        """Per-experiment ``{experiment, pending, claimed, done, failed}`` rows."""

    @abc.abstractmethod
    def queue_depth(self) -> dict[str, int]:
        """Whole-queue state counts ``{pending, claimed, done, failed}``."""

    @abc.abstractmethod
    def queue_cells(self, state: str | None = None) -> Sequence[QueuedCell]:
        """Queue rows (optionally one state), oldest first."""

    @abc.abstractmethod
    def stale_claims(self, lease_s: float) -> list[dict[str, Any]]:
        """Read-only view of claims whose liveness age exceeds ``lease_s``."""
