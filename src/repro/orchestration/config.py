"""Declarative sweep definitions (TOML / JSON).

A sweep file names a master seed, a repetition count, and one block per
experiment with an optional parameter grid, so paper-scale grids live in
versioned files instead of one-off argparse invocations::

    # sweeps/quick.toml
    [sweep]
    name = "quick"
    seed = 1
    repetitions = 2

    [[experiment]]
    name = "table1"
    [experiment.grid]
    ns = [64, 128]          # ONE candidate: the sweep vector (64, 128)

    [[experiment]]
    name = "ablation"
    repetitions = 1          # overrides [sweep].repetitions
    [experiment.grid]
    n = [128, 256]           # TWO candidates: scalar parameter swept

Grid semantics follow :meth:`ExperimentSpec.expand_grid`: scalar parameters
treat a list as multiple candidates; sequence parameters (``ns``,
``deltas``, ``workloads``, ...) treat a flat list as a single candidate and
a list of lists as multiple candidates.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentPlan", "SweepDefinition", "load_sweep"]

DEFAULT_REPETITIONS = 1
DEFAULT_MASTER_SEED = 1


@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment block of a sweep: which driver, which grid, how often."""

    experiment: str
    grid: Mapping[str, Any] = field(default_factory=dict)
    repetitions: int | None = None  #: None = inherit the sweep-level count


@dataclass(frozen=True)
class SweepDefinition:
    """A full sweep: named, seeded, and composed of experiment plans."""

    name: str
    plans: tuple[ExperimentPlan, ...]
    seed: int = DEFAULT_MASTER_SEED
    repetitions: int = DEFAULT_REPETITIONS

    def __post_init__(self) -> None:
        if not self.plans:
            raise ValueError(f"sweep {self.name!r} defines no experiments")
        if self.repetitions < 1:
            raise ValueError(f"sweep {self.name!r}: repetitions must be >= 1")

    def repetitions_for(self, plan: ExperimentPlan) -> int:
        reps = plan.repetitions if plan.repetitions is not None else self.repetitions
        if reps < 1:
            raise ValueError(f"experiment {plan.experiment!r}: repetitions must be >= 1")
        return reps

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, name: str = "sweep") -> "SweepDefinition":
        """Build a definition from the parsed TOML/JSON document."""
        unknown_top = set(data) - {"sweep", "experiment", "experiments"}
        if unknown_top:
            raise ValueError(f"sweep file has unknown top-level keys {sorted(unknown_top)}")
        meta = data.get("sweep", {})
        if not isinstance(meta, Mapping):
            raise ValueError("[sweep] must be a table/object")
        unknown_meta = set(meta) - {"name", "seed", "repetitions"}
        if unknown_meta:
            raise ValueError(f"[sweep] has unknown keys {sorted(unknown_meta)}")
        blocks = data.get("experiment", data.get("experiments", []))
        if isinstance(blocks, Mapping):
            blocks = [blocks]
        plans = []
        for block in blocks:
            if not isinstance(block, Mapping) or "name" not in block:
                raise ValueError(f"experiment block must be a table with a 'name' key, got {block!r}")
            unknown = set(block) - {"name", "grid", "repetitions"}
            if unknown:
                raise ValueError(
                    f"experiment block {block['name']!r} has unknown keys {sorted(unknown)}"
                )
            grid = block.get("grid", {})
            if not isinstance(grid, Mapping):
                raise ValueError(f"experiment {block['name']!r}: grid must be a table/object")
            reps = block.get("repetitions")
            plans.append(
                ExperimentPlan(
                    experiment=str(block["name"]),
                    grid=dict(grid),
                    repetitions=int(reps) if reps is not None else None,
                )
            )
        return cls(
            name=str(meta.get("name", name)),
            plans=tuple(plans),
            seed=int(meta.get("seed", DEFAULT_MASTER_SEED)),
            repetitions=int(meta.get("repetitions", DEFAULT_REPETITIONS)),
        )

    @classmethod
    def from_experiments(
        cls,
        experiments: Sequence[str],
        *,
        name: str = "cli-sweep",
        grid: Mapping[str, Any] | None = None,
        seed: int = DEFAULT_MASTER_SEED,
        repetitions: int = DEFAULT_REPETITIONS,
    ) -> "SweepDefinition":
        """Ad-hoc definition for CLI invocations without a sweep file.

        ``grid`` (if given) is applied to every experiment, dropping entries
        a given experiment does not accept — this is what lets
        ``drr-gossip sweep --experiments table1 ablation --ns 64 128`` work
        even though ``ablation`` takes ``n`` rather than ``ns``.
        """
        from .registry import get_experiment

        plans = []
        for exp_name in experiments:
            spec = get_experiment(exp_name)
            subgrid = {k: v for k, v in (grid or {}).items() if k in spec.param_names}
            plans.append(ExperimentPlan(experiment=exp_name, grid=subgrid))
        return cls(name=name, plans=tuple(plans), seed=seed, repetitions=repetitions)


def load_sweep(path: str | Path) -> SweepDefinition:
    """Load a sweep definition from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        with path.open("rb") as handle:
            data = tomllib.load(handle)
    elif path.suffix.lower() == ".json":
        data = json.loads(path.read_text())
    else:
        raise ValueError(f"unsupported sweep file type {path.suffix!r} (use .toml or .json)")
    return SweepDefinition.from_dict(data, name=path.stem)
