"""Epoch-restarted push-pull averaging for dynamic networks.

DRR-gossip and the Kempe-style baselines assume the membership that exists
when the run starts.  Under mid-run churn their invariants erode: push-sum
mass leaks out with every crash, and a node that joins late has no way to
re-enter a tree whose construction already finished.  The classic repair
(Jelasity, Montresor & Babaoglu, ACM TOCS 2005) is to *restart* the
aggregation in epochs: every ``epoch_rounds`` rounds all live nodes re-seed
``(s, w) = (value, 1)`` and converge again from scratch, so the estimate
tracks the mean of the *current* membership instead of the founding one.
Nodes that join mid-epoch re-seed immediately and simply participate in the
remainder of the epoch.

Within an epoch the protocol is symmetric push-pull averaging: every live
node halves its ``(s, w)`` pair and pushes one half to a uniform partner
(or, on a sparse topology, a uniform live neighbour); the receiver answers
its ``j``-th arrived push with ``S / 2^(j+1)`` of its own post-halving mass
``S`` and keeps ``S / 2^k``, which conserves mass exactly
(``S/2 + S/4 + ... + S/2^k + S/2^k = S``).  Push-pull halves the variance
roughly twice as fast as push-only and is the variant the epoch-restart
literature analyses.

On a sparse topology the overlay is *locally repaired* once per epoch: at
every epoch boundary each node drops neighbours that are currently dead, so
a long-lived run keeps routing around accumulated crashes without global
re-wiring mid-epoch.

Both substrate backends implement the identical schedule.  The vectorized
loop runs all epochs in one pass with global round indices; the engine
backend runs one :meth:`EngineKernel.run` *per epoch* with
``loss_base_round = churn_base_round = epoch * epoch_rounds`` so the loss
and churn oracles hash the very same transmission/fate identities, which is
what keeps the two backends bit-identical under failure injection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on
from ..topology.base import Topology

__all__ = [
    "EpochGossipResult",
    "EpochGossipNode",
    "epoch_gossip_ave",
    "default_epoch_rounds",
]


def default_epoch_rounds(n: int) -> int:
    """Rounds per epoch: enough for push-pull to reach ``~1/n`` error."""
    return int(math.ceil(2.0 * math.log2(max(2, n)) + 8.0))


@dataclass
class EpochGossipResult:
    """Outcome of an epoch-restarted averaging run."""

    #: per-node estimate after the final epoch (NaN for dead nodes)
    estimates: np.ndarray
    #: mean of the local values over the *final* survivors
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    epochs: int
    epoch_rounds: int
    #: max relative error over live nodes vs the survivor mean, one entry
    #: per epoch boundary -- the degradation curve the churn experiments plot
    epoch_errors: list[float] = field(default_factory=list)
    #: live-node count at each epoch boundary
    epoch_survivors: list[int] = field(default_factory=list)

    @property
    def max_relative_error(self) -> float:
        if self.exact == 0.0:
            return float(np.nanmax(np.abs(self.estimates)))
        return float(np.nanmax(np.abs(self.estimates - self.exact) / abs(self.exact)))


def _epoch_stats(
    s: np.ndarray, w: np.ndarray, values: np.ndarray, alive: np.ndarray
) -> tuple[int, float, float, np.ndarray]:
    """Survivor count, survivor mean, max live relative error, estimates.

    Shared by both backends (the engine calls it on arrays gathered from its
    nodes) so the recorded degradation curves are bit-identical.
    """
    survivors = int(np.count_nonzero(alive))
    exact_now = float(values[alive].mean()) if survivors else float("nan")
    with np.errstate(invalid="ignore", divide="ignore"):
        est = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)
    live = est[alive]
    if not live.size:
        err = float("nan")
    elif exact_now == 0.0:
        err = float(np.nanmax(np.abs(live)))
    else:
        err = float(np.nanmax(np.abs(live - exact_now) / abs(exact_now)))
    return survivors, exact_now, err, est


def _repaired_csr(
    topology: Topology, alive: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Local repair: drop edges whose *target* endpoint is currently dead.

    Filtering on the target only (not the source) means a node revived
    mid-run finds its epoch-start neighbour row intact and can resume
    sending immediately; rows of dead nodes are simply never consulted.
    """
    indptr = np.asarray(topology.indptr)
    indices = np.asarray(topology.indices)
    n = indptr.size - 1
    keep = alive[indices]
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    counts = np.bincount(rows[keep], minlength=n)
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    return new_indptr, indices[keep]


def epoch_gossip_ave(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    epochs: int = 3,
    epoch_rounds: int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    topology: Topology | None = None,
    backend: str = "vectorized",
) -> EpochGossipResult:
    """Run ``epochs`` restarted push-pull averaging epochs.

    ``topology=None`` runs on the complete graph of the random phone-call
    model; otherwise partners are drawn from the per-epoch locally repaired
    adjacency of ``topology``.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if topology is not None and topology.n != n:
        raise ValueError(f"topology has {topology.n} nodes, values has {n}")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("epoch-gossip-ave")

    alive = ~failure_model.sample_crashes(n, rng)
    oracle = LossOracle.for_run(failure_model, rng)
    churn = ChurnOracle.for_run(failure_model, rng)
    rounds_per_epoch = epoch_rounds if epoch_rounds is not None else default_epoch_rounds(n)
    if rounds_per_epoch < 1:
        raise ValueError("epoch_rounds must be >= 1")

    return run_on(
        backend,
        vectorized=lambda kernel: _epoch_gossip_vectorized(
            kernel, values, n, rng, epochs, rounds_per_epoch,
            oracle, alive, metrics, churn, topology,
        ),
        engine=lambda kernel: _epoch_gossip_engine(
            kernel, values, n, rng, epochs, rounds_per_epoch,
            failure_model, oracle, alive, metrics, churn, topology,
        ),
    )


def _epoch_gossip_vectorized(
    kernel: VectorizedKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    epochs: int,
    epoch_rounds: int,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    churn: ChurnOracle | None,
    topology: Topology | None,
) -> EpochGossipResult:
    s = np.zeros(n, dtype=float)
    w = np.zeros(n, dtype=float)
    alive_arg = alive if churn is not None else (None if alive.all() else alive)
    dead_targets = churn is not None
    epoch_errors: list[float] = []
    epoch_survivors: list[int] = []

    for epoch in range(epochs):
        base = epoch * epoch_rounds
        # Epoch restart: every live node re-seeds from its local value.
        s[alive] = values[alive]
        w[alive] = 1.0
        if topology is not None:
            indptr, indices = _repaired_csr(topology, alive)
            deg = np.diff(indptr)
        for k in range(epoch_rounds):
            r = base + k
            if churn is not None:
                died, joined = churn.step(r, alive)
                if joined.size:
                    # A joiner re-seeds immediately and plays out the epoch.
                    s[joined] = values[joined]
                    w[joined] = 1.0
                if died.size or joined.size:
                    kernel.refresh_alive(alive)
            metrics.record_round()
            if topology is not None:
                senders = np.flatnonzero(alive & (deg > 0))
                pick = rng.random(senders.size)
                targets = indices[indptr[senders] + (pick * deg[senders]).astype(np.int64)]
            else:
                senders = np.flatnonzero(alive)
                targets = kernel.sample_uniform(rng, n, senders.size)
            push_s = s[senders] / 2.0
            push_w = w[senders] / 2.0
            s[senders] -= push_s
            w[senders] -= push_w
            ok = kernel.deliver(
                metrics, oracle, MessageKind.PUSH, targets,
                senders=senders, round_index=r, alive=alive_arg,
                payload_words=2, dead_targets=dead_targets,
            )
            arrived_from = senders[ok]
            arrived_to = targets[ok]
            # Push-pull split: receiver t answers its j-th arrived push with
            # S/2^(j+1) of its post-halving mass S and keeps S/2^k.
            occ = kernel.occurrence_index(arrived_to)
            reply_s = s[arrived_to] / (2.0 ** (occ + 1))
            reply_w = w[arrived_to] / (2.0 ** (occ + 1))
            arrivals = np.bincount(arrived_to, minlength=n)
            scale = np.power(0.5, arrivals)
            s *= scale
            w *= scale
            np.add.at(s, arrived_to, push_s[ok])
            np.add.at(w, arrived_to, push_w[ok])
            # The pull reply travels back over the same round's link.
            reply_ok = kernel.deliver(
                metrics, oracle, MessageKind.PULL, arrived_from,
                senders=arrived_to, round_index=r, alive=alive_arg,
                payload_words=2, dead_targets=dead_targets,
            )
            np.add.at(s, arrived_from[reply_ok], reply_s[reply_ok])
            np.add.at(w, arrived_from[reply_ok], reply_w[reply_ok])
        survivors, _exact_now, err, _est = _epoch_stats(s, w, values, alive)
        epoch_errors.append(err)
        epoch_survivors.append(survivors)

    survivors, exact, _err, est = _epoch_stats(s, w, values, alive)
    estimates = est.copy()
    estimates[~alive] = np.nan
    return EpochGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=epochs * epoch_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        epochs=epochs,
        epoch_rounds=epoch_rounds,
        epoch_errors=epoch_errors,
        epoch_survivors=epoch_survivors,
    )


class EpochGossipNode(ProtocolNode):
    """Per-node push-pull averaging state machine for one epoch.

    The driver re-creates the node population at every epoch boundary (the
    epoch restart), so a node's state never outlives its epoch; a node
    revived by churn re-seeds in :meth:`on_activated`.
    """

    def __init__(
        self,
        node_id: int,
        value: float,
        rounds: int,
        neighbors: np.ndarray | None = None,
    ) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.s = float(value)
        self.w = 1.0
        self.rounds = rounds
        #: None = complete graph (uniform partner); else epoch-repaired row
        self.neighbors = neighbors

    def on_activated(self, round_index: int) -> None:
        self.s = self.value
        self.w = 1.0

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if ctx.round_index >= self.rounds:
            return []
        if self.neighbors is None:
            target = ctx.random_node()
        else:
            if len(self.neighbors) == 0:
                return []
            pick = ctx.rng.random()
            target = int(self.neighbors[int(pick * len(self.neighbors))])
        push_s, push_w = self.s / 2.0, self.w / 2.0
        self.s -= push_s
        self.w -= push_w
        return [
            Send(
                recipient=target,
                kind=MessageKind.PUSH,
                payload={"s": push_s, "w": push_w},
                payload_words=2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        pushes = [m for m in messages if m.kind == MessageKind.PUSH.value]
        replies: list[Send] = []
        if pushes:
            base_s, base_w = self.s, self.w
            arrivals = len(pushes)
            for j, message in enumerate(pushes):
                share = 2.0 ** (j + 1)
                replies.append(
                    Send(
                        recipient=message.sender,
                        kind=MessageKind.PULL,
                        payload={"s": base_s / share, "w": base_w / share},
                        payload_words=2,
                    )
                )
            self.s = base_s / 2.0 ** arrivals
            self.w = base_w / 2.0 ** arrivals
            for message in pushes:
                self.s += float(message.get("s"))
                self.w += float(message.get("w"))
        for message in messages:
            if message.kind == MessageKind.PULL.value:
                self.s += float(message.get("s"))
                self.w += float(message.get("w"))
        return replies

    def is_complete(self) -> bool:
        # Rounds are driven by the per-epoch stop condition, not node state.
        return False


def _epoch_gossip_engine(
    kernel: EngineKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    epochs: int,
    epoch_rounds: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    churn: ChurnOracle | None,
    topology: Topology | None,
) -> EpochGossipResult:
    alive = alive.copy()
    epoch_errors: list[float] = []
    epoch_survivors: list[int] = []
    s = np.zeros(n, dtype=float)
    w = np.zeros(n, dtype=float)

    for epoch in range(epochs):
        base = epoch * epoch_rounds
        if topology is not None:
            indptr, indices = _repaired_csr(topology, alive)
            nodes = [
                EpochGossipNode(
                    i, float(values[i]), epoch_rounds,
                    neighbors=indices[indptr[i]:indptr[i + 1]],
                )
                for i in range(n)
            ]
        else:
            nodes = [
                EpochGossipNode(i, float(values[i]), epoch_rounds)
                for i in range(n)
            ]
        # One engine execution per epoch with shifted oracle bases: the loss
        # and churn fates hash the same global round identities the
        # single-pass vectorized loop uses, keeping the backends
        # bit-identical under failure injection.
        outcome = kernel.run(
            nodes,
            rng=rng,
            metrics=metrics,
            failure_model=failure_model,
            alive=alive,
            loss_oracle=oracle,
            loss_base_round=base,
            churn_oracle=churn,
            churn_base_round=base,
            max_substeps=3,
            max_rounds=epoch_rounds + 4,
            stop_condition=lambda current_nodes, round_index: round_index >= epoch_rounds,
        )
        if outcome.final_alive is not None:
            alive[:] = outcome.final_alive
        for i in range(n):
            s[i] = nodes[i].s
            w[i] = nodes[i].w
        survivors, _exact_now, err, _est = _epoch_stats(s, w, values, alive)
        epoch_errors.append(err)
        epoch_survivors.append(survivors)

    survivors, exact, _err, est = _epoch_stats(s, w, values, alive)
    estimates = est.copy()
    estimates[~alive] = np.nan
    return EpochGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=epochs * epoch_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        epochs=epochs,
        epoch_rounds=epoch_rounds,
        epoch_errors=epoch_errors,
        epoch_survivors=epoch_survivors,
    )
