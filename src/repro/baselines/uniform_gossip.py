"""Uniform gossip baselines (Kempe, Dobra & Gehrke, FOCS 2003).

These are the address-oblivious protocols DRR-gossip is compared against in
Table 1:

* **Push-sum** -- every node keeps a pair ``(s, w)`` initialised to
  ``(value, 1)``; in every round it keeps half and pushes half to a node
  chosen uniformly at random.  ``s/w`` converges to the global average at
  every node in ``O(log n + log 1/eps)`` rounds, so with all ``n`` nodes
  pushing every round the message complexity is ``Theta(n log n)``.
* **Push-max** -- every node pushes its current maximum to a random node
  every round; ``O(log n)`` rounds suffice for every node to hold the global
  maximum whp, again ``Theta(n log n)`` messages.

Both are *address-oblivious*: the decision to send never depends on the
partner's address, which is exactly the class the Section 5 lower bound says
cannot beat ``Omega(n log n)`` messages.

The ``backend`` argument selects the substrate kernel: the columnar batch
path (used by the Table 1 sweeps; scales to millions of nodes) or the
message-level engine (:class:`PushSumNode` / :class:`PushMaxNode`, used by
fidelity and failure-injection tests).  The per-round convergence history is
only tracked by the vectorized backend (it is an observer quantity, not part
of the protocol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on

__all__ = [
    "UniformGossipResult",
    "push_sum",
    "push_max",
    "PushSumNode",
    "PushMaxNode",
    "default_push_rounds",
]


def default_push_rounds(n: int, epsilon: float | None = None) -> int:
    """``O(log n + log 1/eps)`` rounds; default target error ``1/n``."""
    epsilon = epsilon if epsilon is not None else 1.0 / max(2, n)
    return int(math.ceil(2.0 * math.log2(max(2, n)) + math.log2(1.0 / max(1e-300, epsilon)) + 4.0))


@dataclass
class UniformGossipResult:
    """Outcome of a uniform-gossip baseline run."""

    #: per-node estimate of the aggregate
    estimates: np.ndarray
    #: exact reference value over alive nodes
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    #: per-round fraction of nodes holding the exact answer (push-max) or the
    #: per-round maximum relative error (push-sum); used by convergence plots
    convergence: list[float] = field(default_factory=list)

    @property
    def max_relative_error(self) -> float:
        if self.exact == 0.0:
            return float(np.nanmax(np.abs(self.estimates)))
        return float(np.nanmax(np.abs(self.estimates - self.exact) / abs(self.exact)))

    @property
    def all_correct(self) -> bool:
        return bool(np.all(self.estimates == self.exact))


# --------------------------------------------------------------------------- #
# push-sum
# --------------------------------------------------------------------------- #
def push_sum(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    rounds: int | None = None,
    epsilon: float | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    backend: str = "vectorized",
) -> UniformGossipResult:
    """Kempe et al. push-sum for the Average aggregate."""
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-sum")

    alive = ~failure_model.sample_crashes(n, rng)
    oracle = LossOracle.for_run(failure_model, rng)
    churn = ChurnOracle.for_run(failure_model, rng)
    total_rounds = rounds if rounds is not None else default_push_rounds(n, epsilon)

    return run_on(
        backend,
        vectorized=lambda kernel: _push_sum_vectorized(
            kernel, values, n, rng, total_rounds, oracle, alive, metrics, churn
        ),
        engine=lambda kernel: _push_sum_engine(
            kernel, values, n, rng, total_rounds, failure_model, oracle, alive, metrics, churn
        ),
    )


def _push_sum_vectorized(
    kernel: VectorizedKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    total_rounds: int,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    churn: ChurnOracle | None = None,
) -> UniformGossipResult:
    s = np.where(alive, values, 0.0).astype(float)
    w = alive.astype(float).copy()
    # Convergence is tracked against the membership at start; the result's
    # ``exact`` is recomputed over the final survivors under churn.
    exact = float(values[alive].mean())
    convergence: list[float] = []
    alive_idx = np.flatnonzero(alive)
    alive_arg = alive if churn is not None else (None if alive.all() else alive)
    dead_targets = churn is not None

    for r in range(total_rounds):
        if churn is not None:
            died, joined = churn.step(r, alive)
            if joined.size:
                # A joiner restarts from its own local value.
                s[joined] = values[joined]
                w[joined] = 1.0
            if died.size or joined.size:
                alive_idx = np.flatnonzero(alive)
                kernel.refresh_alive(alive)
        metrics.record_round()
        senders = alive_idx
        targets = kernel.sample_uniform(rng, n, senders.size)
        send_s = s[senders] / 2.0
        send_w = w[senders] / 2.0
        s[senders] -= send_s
        w[senders] -= send_w
        delivered = kernel.deliver(
            metrics, oracle, MessageKind.PUSH, targets,
            senders=senders, round_index=r, alive=alive_arg, payload_words=2,
            dead_targets=dead_targets,
        )
        np.add.at(s, targets[delivered], send_s[delivered])
        np.add.at(w, targets[delivered], send_w[delivered])
        with np.errstate(invalid="ignore", divide="ignore"):
            est = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)
        err = np.nanmax(np.abs(est[alive] - exact) / max(1e-300, abs(exact))) if exact != 0 else np.nanmax(np.abs(est[alive]))
        convergence.append(float(err))

    if churn is not None:
        exact = float(values[alive].mean())
    with np.errstate(invalid="ignore", divide="ignore"):
        estimates = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)
    estimates[~alive] = np.nan
    return UniformGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=total_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        convergence=convergence,
    )


class PushSumNode(ProtocolNode):
    """Per-node push-sum state machine (Kempe et al., address-oblivious)."""

    def __init__(self, node_id: int, value: float, rounds: int) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.s = float(value)
        self.w = 1.0
        self.rounds = rounds
        self.rounds_done = 0

    def on_activated(self, round_index: int) -> None:
        # A joiner restarts from its own local value (it cannot resume the
        # state it lost when it died).
        self.s = self.value
        self.w = 1.0

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        # Gate on the round index, not rounds attended: a node revived by
        # churn does not get extra sending rounds.  Without churn both gates
        # are identical (an alive node attends every round).
        if ctx.round_index >= self.rounds:
            return []
        self.rounds_done += 1
        target = ctx.random_node()
        send_s, send_w = self.s / 2.0, self.w / 2.0
        self.s -= send_s
        self.w -= send_w
        return [
            Send(
                recipient=target,
                kind=MessageKind.PUSH,
                payload={"s": send_s, "w": send_w},
                payload_words=2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.PUSH.value:
                self.s += float(message.get("s"))
                self.w += float(message.get("w"))
        return []

    def is_complete(self) -> bool:
        return self.rounds_done >= self.rounds

    def result(self) -> float:
        return self.s / self.w if self.w > 0 else float("nan")


def _push_sum_engine(
    kernel: EngineKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    total_rounds: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    churn: ChurnOracle | None = None,
) -> UniformGossipResult:
    nodes = [PushSumNode(i, float(values[i]), total_rounds) for i in range(n)]
    # Under churn a revived node may have attended fewer than ``rounds``
    # rounds forever, so completion is by round count, exactly like the
    # columnar loop.
    stop_condition = (
        (lambda current_nodes, round_index: round_index >= total_rounds)
        if churn is not None
        else None
    )
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        churn_oracle=churn,
        max_substeps=2,
        max_rounds=total_rounds + 4,
        stop_condition=stop_condition,
    )
    final_alive = outcome.final_alive if outcome.final_alive is not None else alive
    estimates = np.array([node.result() for node in nodes], dtype=float)
    estimates[~final_alive] = np.nan
    exact = float(values[final_alive].mean())
    return UniformGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=outcome.rounds,
        messages=metrics.total_messages,
        metrics=metrics,
    )


# --------------------------------------------------------------------------- #
# push-max
# --------------------------------------------------------------------------- #
def push_max(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    rounds: int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    stop_when_converged: bool = False,
    backend: str = "vectorized",
) -> UniformGossipResult:
    """Address-oblivious push-max: every node pushes its running maximum.

    ``stop_when_converged`` is used by the lower-bound experiment, which
    wants the number of messages spent until every node knows the maximum
    (an oracle stopping rule that only *under*-counts what a real protocol
    would need, making the measured lower bound conservative).
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-max")

    alive = ~failure_model.sample_crashes(n, rng)
    oracle = LossOracle.for_run(failure_model, rng)
    churn = ChurnOracle.for_run(failure_model, rng)
    if churn is not None and stop_when_converged:
        raise ValueError(
            "stop_when_converged is a static-membership oracle stopping rule; "
            "it is not defined under mid-run churn"
        )
    total_rounds = rounds if rounds is not None else int(math.ceil(2.0 * math.log2(max(2, n)) + 6))

    return run_on(
        backend,
        vectorized=lambda kernel: _push_max_vectorized(
            kernel, values, n, rng, total_rounds, oracle, alive, metrics, stop_when_converged, churn
        ),
        engine=lambda kernel: _push_max_engine(
            kernel, values, n, rng, total_rounds, failure_model, oracle, alive, metrics, stop_when_converged, churn
        ),
    )


def _push_max_vectorized(
    kernel: VectorizedKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    total_rounds: int,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    stop_when_converged: bool,
    churn: ChurnOracle | None = None,
) -> UniformGossipResult:
    current = np.where(alive, values, -np.inf).astype(float)
    exact = float(values[alive].max())
    alive_idx = np.flatnonzero(alive)
    alive_arg = alive if churn is not None else (None if alive.all() else alive)
    dead_targets = churn is not None
    convergence: list[float] = []

    executed = 0
    for r in range(total_rounds):
        if churn is not None:
            died, joined = churn.step(r, alive)
            if joined.size:
                current[joined] = values[joined]
            if died.size or joined.size:
                alive_idx = np.flatnonzero(alive)
                kernel.refresh_alive(alive)
        metrics.record_round()
        executed += 1
        targets = kernel.sample_uniform(rng, n, alive_idx.size)
        delivered = kernel.deliver(
            metrics, oracle, MessageKind.PUSH, targets,
            senders=alive_idx, round_index=r, alive=alive_arg,
            dead_targets=dead_targets,
        )
        np.maximum.at(current, targets[delivered], current[alive_idx][delivered])
        informed = float(np.mean(current[alive] >= exact))
        convergence.append(informed)
        if stop_when_converged and informed >= 1.0:
            break

    if churn is not None:
        exact = float(values[alive].max())
    estimates = current.copy()
    estimates[~alive] = np.nan
    return UniformGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=executed,
        messages=metrics.total_messages,
        metrics=metrics,
        convergence=convergence,
    )


class PushMaxNode(ProtocolNode):
    """Per-node push-max state machine (address-oblivious)."""

    def __init__(self, node_id: int, value: float, rounds: int) -> None:
        super().__init__(node_id)
        self.initial = float(value)
        self.value = float(value)
        self.rounds = rounds
        self.rounds_done = 0

    def on_activated(self, round_index: int) -> None:
        # A joiner restarts from its own value; whatever maximum it had
        # learned died with it.
        self.value = self.initial

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if ctx.round_index >= self.rounds:
            return []
        self.rounds_done += 1
        return [
            Send(recipient=ctx.random_node(), kind=MessageKind.PUSH, payload={"value": self.value})
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.PUSH.value:
                self.value = max(self.value, float(message.get("value")))
        return []

    def is_complete(self) -> bool:
        return self.rounds_done >= self.rounds

    def result(self) -> float:
        return self.value


def _push_max_engine(
    kernel: EngineKernel,
    values: np.ndarray,
    n: int,
    rng: np.random.Generator,
    total_rounds: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    alive: np.ndarray,
    metrics: MetricsCollector,
    stop_when_converged: bool,
    churn: ChurnOracle | None = None,
) -> UniformGossipResult:
    exact = float(values[alive].max())
    nodes = [PushMaxNode(i, float(values[i]), total_rounds) for i in range(n)]

    stop_condition = None
    if stop_when_converged:
        alive_idx = np.flatnonzero(alive)

        def stop_condition(current_nodes, round_index):  # noqa: ANN001 - engine signature
            return all(current_nodes[i].value >= exact for i in alive_idx)

    elif churn is not None:
        stop_condition = lambda current_nodes, round_index: round_index >= total_rounds  # noqa: E731

    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        churn_oracle=churn,
        max_substeps=2,
        max_rounds=total_rounds + 4,
        stop_condition=stop_condition,
    )
    final_alive = outcome.final_alive if outcome.final_alive is not None else alive
    if churn is not None:
        exact = float(values[final_alive].max())
    estimates = np.array([node.value for node in nodes], dtype=float)
    estimates[~final_alive] = np.nan
    return UniformGossipResult(
        estimates=estimates,
        exact=exact,
        rounds=outcome.rounds,
        messages=metrics.total_messages,
        metrics=metrics,
    )
