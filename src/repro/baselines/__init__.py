"""Baseline protocols the paper compares DRR-gossip against.

Every baseline runs on the backend-selectable execution substrate: pass
``backend="vectorized"`` (default, columnar batches), ``backend="sharded"``
(columnar batches over a shared-memory worker pool), or ``backend="engine"``
(message-level simulation) to any of the entry points.
"""

from .efficient_gossip import EfficientGossipResult, efficient_gossip
from .epoch_gossip import (
    EpochGossipNode,
    EpochGossipResult,
    default_epoch_rounds,
    epoch_gossip_ave,
)
from .flooding import FloodingResult, FloodNode, flood_max
from .rumor_spreading import (
    PushPullRumorNode,
    PushRumorNode,
    RumorResult,
    push_pull_rumor,
    push_rumor,
)
from .uniform_gossip import (
    PushMaxNode,
    PushSumNode,
    UniformGossipResult,
    default_push_rounds,
    push_max,
    push_sum,
)

__all__ = [
    "EfficientGossipResult",
    "efficient_gossip",
    "EpochGossipNode",
    "EpochGossipResult",
    "default_epoch_rounds",
    "epoch_gossip_ave",
    "FloodingResult",
    "FloodNode",
    "flood_max",
    "RumorResult",
    "PushPullRumorNode",
    "PushRumorNode",
    "push_pull_rumor",
    "push_rumor",
    "PushMaxNode",
    "PushSumNode",
    "UniformGossipResult",
    "default_push_rounds",
    "push_max",
    "push_sum",
]
