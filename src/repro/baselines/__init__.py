"""Baseline protocols the paper compares DRR-gossip against."""

from .efficient_gossip import EfficientGossipResult, efficient_gossip
from .flooding import FloodingResult, flood_max
from .rumor_spreading import RumorResult, push_pull_rumor, push_rumor
from .uniform_gossip import (
    PushMaxNode,
    PushSumNode,
    UniformGossipResult,
    default_push_rounds,
    push_max,
    push_sum,
    push_sum_engine,
)

__all__ = [
    "EfficientGossipResult",
    "efficient_gossip",
    "FloodingResult",
    "flood_max",
    "RumorResult",
    "push_pull_rumor",
    "push_rumor",
    "PushMaxNode",
    "PushSumNode",
    "UniformGossipResult",
    "default_push_rounds",
    "push_max",
    "push_sum",
    "push_sum_engine",
]
