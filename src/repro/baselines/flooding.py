"""Neighbourhood flooding baseline for sparse topologies.

On a graph with ``|E|`` edges, flooding computes Max/Min exactly in
``diameter`` rounds using ``Theta(|E| * diameter)`` messages (every node
re-announces its current extremum to all neighbours whenever it improves).
It is the "obvious" deterministic alternative to gossip on sparse networks
and serves as a sanity baseline for the Section 4 experiments: DRR-gossip
should beat it on message count whenever the diameter is non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng
from ..topology.base import Topology

__all__ = ["FloodingResult", "flood_max"]


@dataclass
class FloodingResult:
    """Outcome of a flooding run."""

    estimates: np.ndarray
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector

    @property
    def all_correct(self) -> bool:
        return bool(np.all(self.estimates == self.exact))


def flood_max(
    topology: Topology,
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    max_rounds: int | None = None,
) -> FloodingResult:
    """Compute Max by repeated neighbourhood announcements."""
    n = topology.n
    values = np.asarray(values, dtype=float)
    if values.shape != (n,):
        raise ValueError(f"values must have shape ({n},)")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("flooding")
    max_rounds = max_rounds if max_rounds is not None else 2 * n

    current = values.copy()
    changed = np.ones(n, dtype=bool)
    rounds = 0
    while changed.any() and rounds < max_rounds:
        metrics.record_round()
        rounds += 1
        next_values = current.copy()
        senders = np.flatnonzero(changed)
        changed = np.zeros(n, dtype=bool)
        for node in senders:
            neighbors = topology.neighbors(int(node))
            metrics.record_messages(MessageKind.DATA, len(neighbors), payload_words=1)
            for neighbor in neighbors:
                if failure_model.message_lost(rng):
                    continue
                if current[node] > next_values[neighbor]:
                    next_values[neighbor] = current[node]
                    changed[neighbor] = True
        current = next_values
    return FloodingResult(
        estimates=current,
        exact=float(values.max()),
        rounds=rounds,
        messages=metrics.total_messages,
        metrics=metrics,
    )
