"""Neighbourhood flooding baseline for sparse topologies.

On a graph with ``|E|`` edges, flooding computes Max/Min exactly in
``diameter`` rounds using ``Theta(|E| * diameter)`` messages (every node
re-announces its current extremum to all neighbours whenever it improves).
It is the "obvious" deterministic alternative to gossip on sparse networks
and serves as a sanity baseline for the Section 4 experiments: DRR-gossip
should beat it on message count whenever the diameter is non-trivial.

Flooding runs in the message-passing model (a node may message all its
neighbours in one round), so the engine backend disables the phone-call
one-call-per-round budget.  Per-edge loss fates come from the identity-keyed
loss oracle, so the backends agree exactly even on lossy networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on
from ..topology.base import Topology

__all__ = ["FloodingResult", "FloodNode", "flood_max"]


@dataclass
class FloodingResult:
    """Outcome of a flooding run."""

    estimates: np.ndarray
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector

    @property
    def all_correct(self) -> bool:
        return bool(np.all(self.estimates == self.exact))


def flood_max(
    topology: Topology,
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    max_rounds: int | None = None,
    backend: str = "vectorized",
) -> FloodingResult:
    """Compute Max by repeated neighbourhood announcements."""
    n = topology.n
    values = np.asarray(values, dtype=float)
    if values.shape != (n,):
        raise ValueError(f"values must have shape ({n},)")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("flooding")
    max_rounds = max_rounds if max_rounds is not None else 2 * n
    oracle = LossOracle.for_run(failure_model, rng)

    return run_on(
        backend,
        vectorized=lambda kernel: _flood_max_vectorized(
            kernel, topology, values, rng, oracle, metrics, max_rounds
        ),
        engine=lambda kernel: _flood_max_engine(
            kernel, topology, values, rng, failure_model, oracle, metrics, max_rounds
        ),
    )


def _flood_max_vectorized(
    kernel: VectorizedKernel,
    topology: Topology,
    values: np.ndarray,
    rng: np.random.Generator,
    oracle: LossOracle,
    metrics: MetricsCollector,
    max_rounds: int,
) -> FloodingResult:
    n = topology.n
    current = values.copy()
    changed = np.ones(n, dtype=bool)
    rounds = 0
    while changed.any() and rounds < max_rounds:
        metrics.record_round()
        rounds += 1
        next_values = current.copy()
        senders = np.flatnonzero(changed)
        changed = np.zeros(n, dtype=bool)
        for node in senders:
            # zero-copy CSR slice; Topology.neighbors() would re-box to tuples
            neighbors = topology.indices[topology.indptr[node]:topology.indptr[node + 1]]
            delivered = kernel.deliver(
                metrics, oracle, MessageKind.DATA, neighbors,
                senders=int(node), round_index=rounds - 1,
            )
            for neighbor in neighbors[delivered]:
                if current[node] > next_values[neighbor]:
                    next_values[neighbor] = current[node]
                    changed[neighbor] = True
        current = next_values
    return FloodingResult(
        estimates=current,
        exact=float(values.max()),
        rounds=rounds,
        messages=metrics.total_messages,
        metrics=metrics,
    )


class FloodNode(ProtocolNode):
    """Per-node flooding state machine (message-passing model)."""

    def __init__(self, node_id: int, value: float, neighbors: Sequence[int]) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.neighbors = [int(v) for v in neighbors]
        self.calls_per_round = max(1, len(self.neighbors))
        self.dirty = True

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if not self.dirty:
            return []
        self.dirty = False
        return [
            Send(recipient=neighbor, kind=MessageKind.DATA, payload={"value": self.value})
            for neighbor in self.neighbors
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.DATA.value:
                incoming = float(message.get("value"))
                if incoming > self.value:
                    self.value = incoming
                    self.dirty = True
        return []

    def is_complete(self) -> bool:
        return not self.dirty


def _flood_max_engine(
    kernel: EngineKernel,
    topology: Topology,
    values: np.ndarray,
    rng: np.random.Generator,
    failure_model: FailureModel,
    oracle: LossOracle,
    metrics: MetricsCollector,
    max_rounds: int,
) -> FloodingResult:
    n = topology.n
    nodes = [FloodNode(i, float(values[i]), topology.neighbors(i)) for i in range(n)]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=np.ones(n, dtype=bool),
        neighbor_fn=topology.neighbors,
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=max_rounds,
        strict=False,
    )
    estimates = np.array([node.value for node in nodes], dtype=float)
    return FloodingResult(
        estimates=estimates,
        exact=float(values.max()),
        rounds=outcome.rounds,
        messages=metrics.total_messages,
        metrics=metrics,
    )
