"""Randomized rumor spreading (Karp, Schindelhauer, Shenker & Vocking, FOCS 2000).

Rumor spreading is the problem the paper contrasts aggregate computation
against in its lower-bound discussion: spreading a *single* rumor from one
node to all nodes is achievable with ``O(n log log n)`` messages (and
``O(log n)`` rounds) by an address-oblivious algorithm, whereas Theorem 15
shows aggregates need ``Omega(n log n)`` messages in that model.  Measuring
both sides of that gap is experiment E10.

Two protocols are provided:

* :func:`push_rumor` -- the plain push protocol (every informed node pushes
  the rumor to a random node each round); ``Theta(n log n)`` messages.
* :func:`push_pull_rumor` -- the push-pull protocol with the median-counter
  inspired termination rule of Karp et al. (simplified: nodes stop
  ``O(log log n)`` rounds after first hearing the rumor, once the rumor has
  saturated).  ``Theta(n log log n)`` messages whp, which is what makes the
  contrast with Theorem 15 meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng

__all__ = ["RumorResult", "push_rumor", "push_pull_rumor"]


@dataclass
class RumorResult:
    """Outcome of a rumor-spreading run."""

    informed_fraction: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    informed: np.ndarray

    @property
    def everyone_informed(self) -> bool:
        return bool(self.informed.all())


def push_rumor(
    n: int,
    source: int = 0,
    rng: np.random.Generator | int | None = None,
    rounds: int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
) -> RumorResult:
    """Plain push protocol: informed nodes push every round until the budget ends."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-rumor")
    total_rounds = rounds if rounds is not None else int(math.ceil(2 * math.log2(max(2, n)) + 8))

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    executed = 0
    for _ in range(total_rounds):
        metrics.record_round()
        executed += 1
        senders = np.flatnonzero(informed)
        targets = rng.integers(0, n, size=senders.size)
        metrics.record_messages(MessageKind.PUSH, senders.size, payload_words=1)
        delivered = ~failure_model.sample_losses(senders.size, rng)
        informed[targets[delivered]] = True
        if informed.all():
            break
    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=executed,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )


def push_pull_rumor(
    n: int,
    source: int = 0,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    cooldown: int | None = None,
    max_rounds: int | None = None,
) -> RumorResult:
    """Push-pull rumor spreading with an O(log log n) per-node cooldown.

    Every round, every node contacts a random partner: informed nodes push
    the rumor, uninformed nodes pull it (a pull transmits the rumor back only
    when the partner is informed; the request itself is also a message).  A
    node stops initiating contacts ``cooldown = Theta(log log n)`` rounds
    after it first became informed and once the exponential-growth phase is
    over; this reproduces the ``O(n log log n)`` message bound of Karp et al.
    without implementing the full median-counter machinery (the termination
    rule, not the growth analysis, is what the counter provides).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-pull-rumor")

    log_n = max(1.0, math.log2(max(2, n)))
    cooldown = cooldown if cooldown is not None else max(2, int(math.ceil(math.log2(log_n))) + 2)
    max_rounds = max_rounds if max_rounds is not None else int(math.ceil(3 * log_n + 3 * cooldown + 8))

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, -1, dtype=np.int64)
    informed_round[source] = 0

    executed = 0
    for t in range(1, max_rounds + 1):
        metrics.record_round()
        executed += 1
        # A node is active while it is uninformed (it keeps pulling) or for
        # `cooldown` rounds after becoming informed (it keeps pushing).
        active_push = informed & (t - informed_round <= cooldown)
        active_pull = ~informed
        # Uninformed nodes stop pulling only when everyone is informed, so
        # the pull side is what guarantees completion; its cost is bounded
        # because the uninformed population shrinks doubly exponentially in
        # the shrinking phase (Karp et al., Lemma 2).
        pushers = np.flatnonzero(active_push)
        pullers = np.flatnonzero(active_pull)

        if pushers.size:
            targets = rng.integers(0, n, size=pushers.size)
            metrics.record_messages(MessageKind.PUSH, pushers.size, payload_words=1)
            delivered = ~failure_model.sample_losses(pushers.size, rng)
            newly = targets[delivered]
            fresh = newly[~informed[newly]]
            informed[fresh] = True
            informed_round[fresh] = t
        if pullers.size:
            targets = rng.integers(0, n, size=pullers.size)
            metrics.record_messages(MessageKind.PULL, pullers.size, payload_words=1)
            request_ok = ~failure_model.sample_losses(pullers.size, rng)
            partner_informed = informed[targets] & request_ok
            # Reply only happens when the partner has the rumor.
            metrics.record_messages(MessageKind.DATA, int(partner_informed.sum()), payload_words=1)
            reply_ok = ~failure_model.sample_losses(int(partner_informed.sum()), rng)
            lucky = pullers[partner_informed][reply_ok]
            fresh = lucky[~informed[lucky]]
            informed[fresh] = True
            informed_round[fresh] = t
        if informed.all():
            break

    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=executed,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )
