"""Randomized rumor spreading (Karp, Schindelhauer, Shenker & Vocking, FOCS 2000).

Rumor spreading is the problem the paper contrasts aggregate computation
against in its lower-bound discussion: spreading a *single* rumor from one
node to all nodes is achievable with ``O(n log log n)`` messages (and
``O(log n)`` rounds) by an address-oblivious algorithm, whereas Theorem 15
shows aggregates need ``Omega(n log n)`` messages in that model.  Measuring
both sides of that gap is experiment E10.

Two protocols are provided:

* :func:`push_rumor` -- the plain push protocol (every informed node pushes
  the rumor to a random node each round); ``Theta(n log n)`` messages.
* :func:`push_pull_rumor` -- the push-pull protocol with the median-counter
  inspired termination rule of Karp et al. (simplified: nodes stop
  ``O(log log n)`` rounds after first hearing the rumor, once the rumor has
  saturated).  ``Theta(n log log n)`` messages whp, which is what makes the
  contrast with Theorem 15 meaningful.

Both take a ``backend`` argument.  Round semantics are synchronous in both
backends: a pull succeeds when the contacted partner was informed at the
*start* of the round (pushes delivered within the same round inform the
partner only for subsequent rounds).  The rumor protocols ignore initial
crashes (the failure model's loss probability applies to every message).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on

__all__ = ["RumorResult", "PushRumorNode", "PushPullRumorNode", "push_rumor", "push_pull_rumor"]


@dataclass
class RumorResult:
    """Outcome of a rumor-spreading run."""

    informed_fraction: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    informed: np.ndarray

    @property
    def everyone_informed(self) -> bool:
        return bool(self.informed.all())


# --------------------------------------------------------------------------- #
# plain push
# --------------------------------------------------------------------------- #
def push_rumor(
    n: int,
    source: int = 0,
    rng: np.random.Generator | int | None = None,
    rounds: int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    backend: str = "vectorized",
) -> RumorResult:
    """Plain push protocol: informed nodes push every round until the budget ends."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-rumor")
    total_rounds = rounds if rounds is not None else int(math.ceil(2 * math.log2(max(2, n)) + 8))
    oracle = LossOracle.for_run(failure_model, rng)

    return run_on(
        backend,
        vectorized=lambda kernel: _push_rumor_vectorized(
            kernel, n, source, rng, total_rounds, oracle, metrics
        ),
        engine=lambda kernel: _push_rumor_engine(
            kernel, n, source, rng, total_rounds, failure_model, oracle, metrics
        ),
    )


def _push_rumor_vectorized(
    kernel: VectorizedKernel,
    n: int,
    source: int,
    rng: np.random.Generator,
    total_rounds: int,
    oracle: LossOracle,
    metrics: MetricsCollector,
) -> RumorResult:
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    executed = 0
    for r in range(total_rounds):
        metrics.record_round()
        executed += 1
        senders = np.flatnonzero(informed)
        targets = kernel.sample_uniform(rng, n, senders.size)
        delivered = kernel.deliver(
            metrics, oracle, MessageKind.PUSH, targets, senders=senders, round_index=r
        )
        informed[targets[delivered]] = True
        if informed.all():
            break
    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=executed,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )


class PushRumorNode(ProtocolNode):
    """Per-node plain-push state machine."""

    def __init__(self, node_id: int, informed: bool, rounds: int) -> None:
        super().__init__(node_id)
        self.informed = bool(informed)
        self.rounds = int(rounds)

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if not self.informed or ctx.round_index >= self.rounds:
            return []
        return [Send(recipient=ctx.random_node(), kind=MessageKind.PUSH, payload={}, payload_words=1)]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.PUSH.value:
                self.informed = True
        return []

    def is_complete(self) -> bool:
        # Completion is a global property (everyone informed); the engine run
        # is bounded by its round budget and the all-informed stop condition.
        return False


def _push_rumor_engine(
    kernel: EngineKernel,
    n: int,
    source: int,
    rng: np.random.Generator,
    total_rounds: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    metrics: MetricsCollector,
) -> RumorResult:
    nodes = [PushRumorNode(i, i == source, total_rounds) for i in range(n)]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=np.ones(n, dtype=bool),
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=total_rounds,
        strict=False,
        stop_condition=lambda current, _round: all(node.informed for node in current),
    )
    informed = np.array([node.informed for node in nodes], dtype=bool)
    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=outcome.rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )


# --------------------------------------------------------------------------- #
# push-pull with cooldown termination
# --------------------------------------------------------------------------- #
def push_pull_rumor(
    n: int,
    source: int = 0,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    cooldown: int | None = None,
    max_rounds: int | None = None,
    backend: str = "vectorized",
) -> RumorResult:
    """Push-pull rumor spreading with an O(log log n) per-node cooldown.

    Every round, every node contacts a random partner: informed nodes push
    the rumor, uninformed nodes pull it (a pull transmits the rumor back only
    when the partner is informed; the request itself is also a message).  A
    node stops initiating contacts ``cooldown = Theta(log log n)`` rounds
    after it first became informed and once the exponential-growth phase is
    over; this reproduces the ``O(n log log n)`` message bound of Karp et al.
    without implementing the full median-counter machinery (the termination
    rule, not the growth analysis, is what the counter provides).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("push-pull-rumor")

    log_n = max(1.0, math.log2(max(2, n)))
    cooldown = cooldown if cooldown is not None else max(2, int(math.ceil(math.log2(log_n))) + 2)
    max_rounds = max_rounds if max_rounds is not None else int(math.ceil(3 * log_n + 3 * cooldown + 8))
    oracle = LossOracle.for_run(failure_model, rng)

    return run_on(
        backend,
        vectorized=lambda kernel: _push_pull_vectorized(
            kernel, n, source, rng, cooldown, max_rounds, oracle, metrics
        ),
        engine=lambda kernel: _push_pull_engine(
            kernel, n, source, rng, cooldown, max_rounds, failure_model, oracle, metrics
        ),
    )


def _push_pull_vectorized(
    kernel: VectorizedKernel,
    n: int,
    source: int,
    rng: np.random.Generator,
    cooldown: int,
    max_rounds: int,
    oracle: LossOracle,
    metrics: MetricsCollector,
) -> RumorResult:
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_round = np.full(n, -1, dtype=np.int64)
    informed_round[source] = 0

    executed = 0
    for t in range(1, max_rounds + 1):
        metrics.record_round()
        executed += 1
        # A node is active while it is uninformed (it keeps pulling) or for
        # `cooldown` rounds after becoming informed (it keeps pushing); the
        # round's contacts are resolved against the start-of-round state.
        informed_start = informed.copy()
        active_push = informed_start & (t - informed_round <= cooldown)
        active_pull = ~informed_start
        actors = np.flatnonzero(active_push | active_pull)
        targets = kernel.sample_uniform(rng, n, actors.size)
        pushing = active_push[actors]
        pushers, push_targets = actors[pushing], targets[pushing]
        pullers, pull_targets = actors[~pushing], targets[~pushing]

        # Uninformed nodes stop pulling only when everyone is informed, so
        # the pull side is what guarantees completion; its cost is bounded
        # because the uninformed population shrinks doubly exponentially in
        # the shrinking phase (Karp et al., Lemma 2).
        if pushers.size:
            delivered = kernel.deliver(
                metrics, oracle, MessageKind.PUSH, push_targets,
                senders=pushers, round_index=t - 1,
            )
            newly = push_targets[delivered]
            fresh = newly[~informed[newly]]
            informed[fresh] = True
            informed_round[fresh] = t
        if pullers.size:
            request_ok = kernel.deliver(
                metrics, oracle, MessageKind.PULL, pull_targets,
                senders=pullers, round_index=t - 1,
            )
            partner_informed = request_ok & informed_start[pull_targets]
            # Reply only happens when the partner held the rumor at the start
            # of the round.
            reply_ok = kernel.deliver(
                metrics, oracle, MessageKind.DATA, pullers[partner_informed],
                senders=pull_targets[partner_informed], round_index=t - 1,
            )
            lucky = pullers[partner_informed][reply_ok]
            fresh = lucky[~informed[lucky]]
            informed[fresh] = True
            informed_round[fresh] = t
        if informed.all():
            break

    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=executed,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )


class PushPullRumorNode(ProtocolNode):
    """Per-node push-pull state machine with the cooldown termination rule."""

    def __init__(self, node_id: int, informed: bool, cooldown: int) -> None:
        super().__init__(node_id)
        self.informed = bool(informed)
        self.informed_t = 0 if informed else -1
        self.cooldown = int(cooldown)
        self.snapshot_informed = self.informed

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self.snapshot_informed = self.informed
        t = ctx.round_index + 1
        if self.informed:
            if t - self.informed_t <= self.cooldown:
                return [Send(recipient=ctx.random_node(), kind=MessageKind.PUSH, payload={}, payload_words=1)]
            return []
        return [
            Send(
                recipient=ctx.random_node(),
                kind=MessageKind.PULL,
                payload={"origin": self.node_id},
                payload_words=1,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        t = ctx.round_index + 1
        replies: list[Send] = []
        for message in messages:
            if message.kind == MessageKind.PULL.value:
                if self.snapshot_informed:
                    replies.append(
                        Send(
                            recipient=int(message.get("origin", message.sender)),
                            kind=MessageKind.DATA,
                            payload={},
                            payload_words=1,
                        )
                    )
            elif message.kind in (MessageKind.PUSH.value, MessageKind.DATA.value):
                if not self.informed:
                    self.informed = True
                    self.informed_t = t
        return replies

    def is_complete(self) -> bool:
        # Global termination (everyone informed) is enforced by the engine
        # stop condition; a node past its cooldown is individually done.
        return self.informed and self.informed_t >= 0

    def result(self) -> bool:
        return self.informed


def _push_pull_engine(
    kernel: EngineKernel,
    n: int,
    source: int,
    rng: np.random.Generator,
    cooldown: int,
    max_rounds: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    metrics: MetricsCollector,
) -> RumorResult:
    nodes = [PushPullRumorNode(i, i == source, cooldown) for i in range(n)]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=np.ones(n, dtype=bool),
        loss_oracle=oracle,
        max_substeps=3,
        max_rounds=max_rounds,
        strict=False,
        stop_condition=lambda current, _round: all(node.informed for node in current),
    )
    informed = np.array([node.informed for node in nodes], dtype=bool)
    return RumorResult(
        informed_fraction=float(informed.mean()),
        rounds=outcome.rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        informed=informed,
    )
