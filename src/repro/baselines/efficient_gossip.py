"""Efficient gossip baseline (Kashyap, Deb, Naidu, Rastogi & Srinivasan, PODS 2006).

Kashyap et al. were the first to reduce the message complexity of
gossip-based aggregation: their algorithm uses ``O(n log log n)`` messages
but takes ``O(log n log log n)`` rounds.  The structure, as summarised by the
paper under reproduction (Section 1.1), is:

1. randomly cluster the nodes into groups of size ``Theta(log n)``,
2. elect one representative per group and aggregate within the group,
3. have the representatives run uniform gossip (push-sum) among themselves,
4. disseminate the result back inside each group.

Reproduction note (documented substitution)
-------------------------------------------
The exact PODS'06 grouping protocol is intricate (it interleaves sampling,
balanced allocation, and group merging over ``Theta(log log n)`` stages).
For the Table 1 comparison what matters is its *cost shape*: grouping spends
``O(log log n)`` messages per node spread over ``Theta(log n log log n)``
rounds, and every later stage is ``O(n)`` messages and ``O(log n)`` or
``O(log n log log n)`` rounds.  We therefore implement a protocol with the
same structure and the same asymptotic accounting:

* grouping: ``ceil(log2 log2 n)`` stages; in each stage every unattached node
  spends one message probing for a group leader (leaders were self-elected
  with probability ``1/log2 n``), and each stage is padded to ``log2 n``
  rounds, reflecting the stage length of the original protocol -- this gives
  ``Theta(n log log n)`` messages and ``Theta(log n log log n)`` rounds;
  nodes still unattached after the last stage become singleton leaders;
* aggregation within groups, gossip among leaders, and dissemination follow
  the DRR-gossip Phase II/III machinery (convergecast over stars, push-sum
  among leaders, broadcast back), all ``O(n)`` messages.

The measured rows reproduce Kashyap et al.'s complexity *shape* -- which is
what Table 1 compares -- not their exact constants.  DESIGN.md lists this as
substitution S1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng
from ..core.aggregates import Aggregate, exact_aggregate

__all__ = ["EfficientGossipResult", "efficient_gossip"]


@dataclass
class EfficientGossipResult:
    """Outcome of the efficient-gossip baseline."""

    aggregate: Aggregate
    estimates: np.ndarray
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    group_count: int
    max_group_size: int

    @property
    def max_relative_error(self) -> float:
        finite = np.isfinite(self.estimates)
        if not finite.any():
            return float("inf")
        if self.exact == 0.0:
            return float(np.max(np.abs(self.estimates[finite])))
        return float(np.max(np.abs(self.estimates[finite] - self.exact) / abs(self.exact)))

    @property
    def all_correct(self) -> bool:
        finite = np.isfinite(self.estimates)
        return bool(finite.any()) and bool(np.all(self.estimates[finite] == self.exact))


def efficient_gossip(
    values: np.ndarray,
    aggregate: Aggregate | str = Aggregate.AVERAGE,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    leader_probability: float | None = None,
) -> EfficientGossipResult:
    """Run the Kashyap-style cluster-then-gossip baseline.

    Supports ``Aggregate.AVERAGE`` (push-sum among leaders weighted by group
    size) and ``Aggregate.MAX`` / ``Aggregate.MIN`` (push-max among leaders).
    """
    aggregate = Aggregate(aggregate)
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)

    log_n = max(1.0, math.log2(max(2, n)))
    loglog_n = max(1, int(math.ceil(math.log2(log_n))))
    p_leader = leader_probability if leader_probability is not None else 1.0 / log_n

    alive = ~failure_model.sample_crashes(n, rng)
    alive_idx = np.flatnonzero(alive)

    # ------------------------------------------------------------------ #
    # stage 1: grouping (Theta(log n log log n) rounds, Theta(n log log n) msgs)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("grouping")
    leaders = alive & (rng.random(n) < p_leader)
    if not leaders[alive].any():
        leaders[alive_idx[0]] = True
    leader_idx = np.flatnonzero(leaders)
    group_of = np.full(n, -1, dtype=np.int64)
    group_of[leader_idx] = leader_idx

    unattached = alive & ~leaders
    # Theta(log log n) stages, plus a small constant so the unattached
    # fraction (which shrinks as f -> 2f - f^2 per stage) drops below 1/log n
    # and stragglers do not inflate the leader population.
    for _stage in range(loglog_n + 4):
        if int(unattached.sum()) <= max(1, int(n / log_n)) // 4:
            break
        # Each stage is padded to Theta(log n) rounds -- the stage length of
        # the original protocol -- even though our probe itself is one round.
        metrics.record_round(int(math.ceil(log_n)))
        pending = np.flatnonzero(unattached)
        if pending.size == 0:
            continue
        probes = rng.integers(0, n, size=pending.size)
        metrics.record_messages(MessageKind.PROBE, pending.size, payload_words=1)
        probe_ok = ~failure_model.sample_losses(pending.size, rng) & alive[probes]
        # A probe succeeds when it lands on a node that already belongs to a
        # group (leader or member); the prober joins that group.
        target_group = group_of[probes]
        joins = probe_ok & (target_group >= 0)
        metrics.record_messages(MessageKind.DATA, int(joins.sum()), payload_words=1)
        group_of[pending[joins]] = target_group[joins]
        unattached[pending[joins]] = False
    # Still-unattached nodes become singleton leaders.
    stragglers = np.flatnonzero(unattached)
    group_of[stragglers] = stragglers
    leaders[stragglers] = True
    leader_idx = np.flatnonzero(leaders)

    group_sizes = np.bincount(group_of[alive], minlength=n)
    max_group_size = int(group_sizes.max()) if alive.any() else 0

    # ------------------------------------------------------------------ #
    # stage 2: in-group aggregation to the leader (O(n) messages)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("group-aggregate")
    members = alive & ~leaders
    member_ids = np.flatnonzero(members)
    metrics.record_messages(MessageKind.CONVERGECAST, member_ids.size, payload_words=2)
    member_ok = ~failure_model.sample_losses(member_ids.size, rng)
    metrics.record_round(int(math.ceil(log_n)))

    group_sum = np.zeros(n, dtype=float)
    group_cnt = np.zeros(n, dtype=float)
    group_max = np.full(n, -np.inf, dtype=float)
    for i in leader_idx:
        group_sum[i] = values[i]
        group_cnt[i] = 1.0
        group_max[i] = values[i]
    received = member_ids[member_ok]
    np.add.at(group_sum, group_of[received], values[received])
    np.add.at(group_cnt, group_of[received], 1.0)
    np.maximum.at(group_max, group_of[received], values[received])

    # ------------------------------------------------------------------ #
    # stage 3: gossip among leaders (O(n) messages, O(log n) rounds)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("leader-gossip")
    m = leader_idx.size
    # Push-sum / push-max among the m = Theta(n / log n) leaders needs
    # O(log m + log 1/eps) rounds; epsilon = 1/n keeps the Average accurate
    # far beyond what the comparison needs.
    gossip_rounds = int(math.ceil(2 * math.log2(max(2, m)) + math.log2(max(2, n)) / 2 + 8))
    if aggregate in (Aggregate.MAX, Aggregate.MIN):
        # Gossip the extremum among leaders; MIN is MAX on negated values.
        if aggregate == Aggregate.MAX:
            current = group_max[leader_idx].copy()
        else:
            group_min = np.full(n, np.inf, dtype=float)
            for i in leader_idx:
                group_min[i] = values[i]
            np.minimum.at(group_min, group_of[received], values[received])
            current = -group_min[leader_idx]
        for _ in range(gossip_rounds):
            metrics.record_round()
            targets = rng.integers(0, m, size=m)
            metrics.record_messages(MessageKind.PUSH, m, payload_words=1)
            delivered = ~failure_model.sample_losses(m, rng)
            np.maximum.at(current, targets[delivered], current[delivered])
        leader_estimate = current if aggregate == Aggregate.MAX else -current
    else:
        s = group_sum[leader_idx].copy()
        w = group_cnt[leader_idx].copy()
        w[w == 0] = 1e-12
        for _ in range(gossip_rounds):
            metrics.record_round()
            targets = rng.integers(0, m, size=m)
            metrics.record_messages(MessageKind.PUSH, m, payload_words=2)
            send_s, send_w = s / 2.0, w / 2.0
            s -= send_s
            w -= send_w
            delivered = ~failure_model.sample_losses(m, rng)
            np.add.at(s, targets[delivered], send_s[delivered])
            np.add.at(w, targets[delivered], send_w[delivered])
        leader_estimate = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)

    # ------------------------------------------------------------------ #
    # stage 4: dissemination back into the groups (O(n) messages)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("dissemination")
    estimates = np.full(n, np.nan, dtype=float)
    estimates[leader_idx] = leader_estimate
    metrics.record_messages(MessageKind.BROADCAST, member_ids.size, payload_words=1)
    broadcast_ok = ~failure_model.sample_losses(member_ids.size, rng)
    reached = member_ids[broadcast_ok]
    leader_pos = {int(l): i for i, l in enumerate(leader_idx)}
    estimates[reached] = leader_estimate[[leader_pos[int(g)] for g in group_of[reached]]]
    metrics.record_round(int(math.ceil(log_n)))

    if aggregate in (Aggregate.MAX, Aggregate.MIN):
        exact = exact_aggregate(aggregate, values[alive])
    else:
        exact = exact_aggregate(Aggregate.AVERAGE, values[alive])

    return EfficientGossipResult(
        aggregate=aggregate,
        estimates=estimates,
        exact=float(exact),
        rounds=metrics.total_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        group_count=int(m),
        max_group_size=max_group_size,
    )
