"""Efficient gossip baseline (Kashyap, Deb, Naidu, Rastogi & Srinivasan, PODS 2006).

Kashyap et al. were the first to reduce the message complexity of
gossip-based aggregation: their algorithm uses ``O(n log log n)`` messages
but takes ``O(log n log log n)`` rounds.  The structure, as summarised by the
paper under reproduction (Section 1.1), is:

1. randomly cluster the nodes into groups of size ``Theta(log n)``,
2. elect one representative per group and aggregate within the group,
3. have the representatives run uniform gossip (push-sum) among themselves,
4. disseminate the result back inside each group.

Reproduction note (documented substitution)
-------------------------------------------
The exact PODS'06 grouping protocol is intricate (it interleaves sampling,
balanced allocation, and group merging over ``Theta(log log n)`` stages).
For the Table 1 comparison what matters is its *cost shape*: grouping spends
``O(log log n)`` messages per node spread over ``Theta(log n log log n)``
rounds, and every later stage is ``O(n)`` messages and ``O(log n)`` or
``O(log n log log n)`` rounds.  We therefore implement a protocol with the
same structure and the same asymptotic accounting:

* grouping: ``ceil(log2 log2 n)`` stages; in each stage every unattached node
  spends one message probing for a group leader (leaders were self-elected
  with probability ``1/log2 n``), and each stage is padded to ``log2 n``
  rounds, reflecting the stage length of the original protocol -- this gives
  ``Theta(n log log n)`` messages and ``Theta(log n log log n)`` rounds;
  nodes still unattached after the last stage become singleton leaders;
* aggregation within groups, gossip among leaders, and dissemination follow
  the DRR-gossip Phase II/III machinery (convergecast over stars, push-sum
  among leaders, broadcast back), all ``O(n)`` messages.

The measured rows reproduce Kashyap et al.'s complexity *shape* -- which is
what Table 1 compares -- not their exact constants.  DESIGN.md lists this as
substitution S1.

Backends
--------
The protocol's stage *structure* (leader election, the grouping loop with
its break condition, straggler promotion, round padding) is driver-level
bookkeeping shared by both backends; only the message exchange inside each
stage differs.  The ``vectorized`` backend batches each stage's messages as
arrays; the ``engine`` backend runs one message-level engine execution per
stage (probe/reply nodes, star convergecast, leader gossip, dissemination).
Both consume the RNG stream identically on reliable networks and therefore
produce identical groups, estimates, rounds, and message counts there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import PassiveNode, ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import get_kernel, normalize_backend
from ..core.aggregates import Aggregate, exact_aggregate

__all__ = ["EfficientGossipResult", "efficient_gossip"]


@dataclass
class EfficientGossipResult:
    """Outcome of the efficient-gossip baseline."""

    aggregate: Aggregate
    estimates: np.ndarray
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    group_count: int
    max_group_size: int

    @property
    def max_relative_error(self) -> float:
        finite = np.isfinite(self.estimates)
        if not finite.any():
            return float("inf")
        if self.exact == 0.0:
            return float(np.max(np.abs(self.estimates[finite])))
        return float(np.max(np.abs(self.estimates[finite] - self.exact) / abs(self.exact)))

    @property
    def all_correct(self) -> bool:
        finite = np.isfinite(self.estimates)
        return bool(finite.any()) and bool(np.all(self.estimates[finite] == self.exact))


# --------------------------------------------------------------------------- #
# engine-stage node machines
# --------------------------------------------------------------------------- #
class _PaddedNode(ProtocolNode):
    """Base for stage nodes: acts early, then idles out the padded rounds."""

    def __init__(self, node_id: int, pad_rounds: int) -> None:
        super().__init__(node_id)
        self.pad_rounds = int(pad_rounds)
        self._rounds_seen = -1

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self._rounds_seen = ctx.round_index
        return self.act(ctx)

    def act(self, ctx: RoundContext) -> list[Send]:  # pragma: no cover - overridden
        return []

    def is_complete(self) -> bool:
        return self._rounds_seen >= self.pad_rounds - 1


class _GroupProbeNode(_PaddedNode):
    """One grouping stage: unattached nodes probe for an attached node."""

    def __init__(self, node_id: int, group: int, pending: bool, pad_rounds: int) -> None:
        super().__init__(node_id, pad_rounds)
        self.group = int(group)
        self.pending = bool(pending)
        self.joined = -1

    def act(self, ctx: RoundContext) -> list[Send]:
        if self.pending and ctx.round_index == 0:
            return [
                Send(
                    recipient=ctx.random_node(),
                    kind=MessageKind.PROBE,
                    payload={"origin": self.node_id},
                    payload_words=1,
                )
            ]
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        replies: list[Send] = []
        for message in messages:
            if message.kind == MessageKind.PROBE.value and self.group >= 0:
                replies.append(
                    Send(
                        recipient=int(message.get("origin")),
                        kind=MessageKind.DATA,
                        payload={"group": self.group},
                        payload_words=1,
                    )
                )
            elif message.kind == MessageKind.DATA.value and self.joined < 0:
                self.joined = int(message.get("group"))
        return replies


class _StarAggregateNode(_PaddedNode):
    """Stage 2: members report to their leader; leaders accumulate."""

    def __init__(
        self, node_id: int, value: float, leader: int | None, is_leader: bool, pad_rounds: int
    ) -> None:
        super().__init__(node_id, pad_rounds)
        self.value = float(value)
        self.leader = leader
        self.is_leader = is_leader
        self.acc_sum = float(value) if is_leader else 0.0
        self.acc_cnt = 1.0 if is_leader else 0.0
        self.acc_max = float(value) if is_leader else -np.inf
        self.acc_min = float(value) if is_leader else np.inf

    def act(self, ctx: RoundContext) -> list[Send]:
        if self.leader is not None and ctx.round_index == 0:
            return [
                Send(
                    recipient=self.leader,
                    kind=MessageKind.CONVERGECAST,
                    payload={"value": self.value},
                    payload_words=2,
                )
            ]
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.CONVERGECAST.value:
                value = float(message.get("value"))
                self.acc_sum += value
                self.acc_cnt += 1.0
                self.acc_max = max(self.acc_max, value)
                self.acc_min = min(self.acc_min, value)
        return []


class _LeaderGossipNode(ProtocolNode):
    """Stage 3: uniform gossip among the leaders (push-sum or push-max).

    Targets are drawn from leader-*position* space and mapped through the
    shared ``leader_idx`` array, matching the vectorized batch draw.
    """

    def __init__(
        self,
        node_id: int,
        leader_idx: np.ndarray,
        mode: str,
        s: float,
        w: float,
        rounds: int,
    ) -> None:
        super().__init__(node_id)
        self.leader_idx = leader_idx
        self.mode = mode  # 'sum' or 'max'
        self.s = float(s)
        self.w = float(w)
        self.rounds = int(rounds)
        self.rounds_done = 0

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if self.rounds_done >= self.rounds:
            return []
        self.rounds_done += 1
        target = int(self.leader_idx[int(ctx.rng.integers(0, self.leader_idx.size))])
        if self.mode == "max":
            return [
                Send(recipient=target, kind=MessageKind.PUSH, payload={"v": self.s}, payload_words=1)
            ]
        send_s, send_w = self.s / 2.0, self.w / 2.0
        self.s -= send_s
        self.w -= send_w
        return [
            Send(
                recipient=target,
                kind=MessageKind.PUSH,
                payload={"s": send_s, "w": send_w},
                payload_words=2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind != MessageKind.PUSH.value:
                continue
            if self.mode == "max":
                self.s = max(self.s, float(message.get("v")))
            else:
                self.s += float(message.get("s"))
                self.w += float(message.get("w"))
        return []

    def is_complete(self) -> bool:
        return self.rounds_done >= self.rounds


class _DisseminateNode(_PaddedNode):
    """Stage 4: leaders broadcast the answer to their group members."""

    def __init__(
        self, node_id: int, estimate: float, members: list[int], pad_rounds: int
    ) -> None:
        super().__init__(node_id, pad_rounds)
        self.estimate = estimate
        self.members = members
        self.calls_per_round = max(1, len(members))

    def act(self, ctx: RoundContext) -> list[Send]:
        if self.members and ctx.round_index == 0:
            return [
                Send(
                    recipient=member,
                    kind=MessageKind.BROADCAST,
                    payload={"value": self.estimate},
                    payload_words=1,
                )
            for member in self.members]
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.BROADCAST.value:
                self.estimate = float(message.get("value"))
        return []


# --------------------------------------------------------------------------- #
# the protocol
# --------------------------------------------------------------------------- #
def efficient_gossip(
    values: np.ndarray,
    aggregate: Aggregate | str = Aggregate.AVERAGE,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    leader_probability: float | None = None,
    backend: str = "vectorized",
) -> EfficientGossipResult:
    """Run the Kashyap-style cluster-then-gossip baseline.

    Supports ``Aggregate.AVERAGE`` (push-sum among leaders weighted by group
    size) and ``Aggregate.MAX`` / ``Aggregate.MIN`` (push-max among leaders).
    """
    aggregate = Aggregate(aggregate)
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    engine = normalize_backend(backend) == "engine"
    kernel = get_kernel(backend)

    log_n = max(1.0, math.log2(max(2, n)))
    loglog_n = max(1, int(math.ceil(math.log2(log_n))))
    pad = int(math.ceil(log_n))
    p_leader = leader_probability if leader_probability is not None else 1.0 / log_n

    alive = ~failure_model.sample_crashes(n, rng)
    alive_idx = np.flatnonzero(alive)
    # None tells the columnar delivery primitives "nobody crashed" so they
    # skip per-message liveness gathers (the engine's Network still needs
    # the real mask).
    alive_arg = None if alive.all() else alive
    oracle = LossOracle.for_run(failure_model, rng)
    # Stages run under one oracle; `loss_round` offsets each stage's round
    # counter so round identities stay unique across the whole protocol
    # (engine executions restart their local counter at zero per stage).
    loss_round = 0

    # ------------------------------------------------------------------ #
    # stage 1: grouping (Theta(log n log log n) rounds, Theta(n log log n) msgs)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("grouping")
    leaders = alive & (rng.random(n) < p_leader)
    if not leaders[alive].any():
        leaders[alive_idx[0]] = True
    leader_idx = np.flatnonzero(leaders)
    group_of = np.full(n, -1, dtype=np.int64)
    group_of[leader_idx] = leader_idx

    unattached = alive & ~leaders
    # Theta(log log n) stages, plus a small constant so the unattached
    # fraction (which shrinks as f -> 2f - f^2 per stage) drops below 1/log n
    # and stragglers do not inflate the leader population.
    for _stage in range(loglog_n + 4):
        if int(unattached.sum()) <= max(1, int(n / log_n)) // 4:
            break
        pending = np.flatnonzero(unattached)
        if engine:
            nodes = [
                _GroupProbeNode(i, int(group_of[i]), bool(unattached[i]), pad) for i in range(n)
            ]
            kernel.run(
                nodes,
                rng=rng,
                metrics=metrics,
                failure_model=failure_model,
                alive=alive,
                loss_oracle=oracle,
                loss_base_round=loss_round,
                max_substeps=3,
                max_rounds=pad,
                strict=False,
            )
            joined = np.array([nodes[i].joined for i in pending], dtype=np.int64)
            accepted = joined >= 0
            group_of[pending[accepted]] = joined[accepted]
            unattached[pending[accepted]] = False
        else:
            # Each stage is padded to Theta(log n) rounds -- the stage length
            # of the original protocol -- even though the probe itself is one
            # round.
            metrics.record_round(pad)
            if pending.size == 0:
                loss_round += pad
                continue
            probes = kernel.sample_uniform(rng, n, pending.size)
            probe_ok = kernel.deliver(
                metrics, oracle, MessageKind.PROBE, probes,
                senders=pending, round_index=loss_round, alive=alive_arg,
            )
            # A probe succeeds when it lands on a node that already belongs to
            # a group (leader or member) and the reply survives; the prober
            # joins that group.
            target_group = group_of[probes]
            joins = probe_ok & (target_group >= 0)
            reply_ok = kernel.deliver(
                metrics, oracle, MessageKind.DATA, pending[joins],
                senders=probes[joins], round_index=loss_round, alive=alive_arg,
            )
            joined = pending[joins][reply_ok]
            group_of[joined] = target_group[joins][reply_ok]
            unattached[joined] = False
        loss_round += pad
    # Still-unattached nodes become singleton leaders.
    stragglers = np.flatnonzero(unattached)
    group_of[stragglers] = stragglers
    leaders[stragglers] = True
    leader_idx = np.flatnonzero(leaders)

    group_sizes = np.bincount(group_of[alive], minlength=n)
    max_group_size = int(group_sizes.max()) if alive.any() else 0

    # ------------------------------------------------------------------ #
    # stage 2: in-group aggregation to the leader (O(n) messages)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("group-aggregate")
    members = alive & ~leaders
    member_ids = np.flatnonzero(members)

    group_sum = np.zeros(n, dtype=float)
    group_cnt = np.zeros(n, dtype=float)
    group_max = np.full(n, -np.inf, dtype=float)
    group_min = np.full(n, np.inf, dtype=float)
    if engine:
        nodes = [
            _StarAggregateNode(
                i,
                float(values[i]),
                leader=(int(group_of[i]) if members[i] else None),
                is_leader=bool(leaders[i]),
                pad_rounds=pad,
            )
            for i in range(n)
        ]
        kernel.run(
            nodes,
            rng=rng,
            metrics=metrics,
            failure_model=failure_model,
            alive=alive,
            loss_oracle=oracle,
            loss_base_round=loss_round,
            max_substeps=2,
            max_rounds=pad,
            strict=False,
        )
        for i in leader_idx:
            node = nodes[int(i)]
            group_sum[i], group_cnt[i] = node.acc_sum, node.acc_cnt
            group_max[i], group_min[i] = node.acc_max, node.acc_min
    else:
        member_ok = kernel.deliver(
            metrics, oracle, MessageKind.CONVERGECAST, group_of[member_ids],
            senders=member_ids, round_index=loss_round,
            alive=alive_arg, payload_words=2,
        )
        metrics.record_round(pad)
        for i in leader_idx:
            group_sum[i] = values[i]
            group_cnt[i] = 1.0
            group_max[i] = values[i]
            group_min[i] = values[i]
        received = member_ids[member_ok]
        np.add.at(group_sum, group_of[received], values[received])
        np.add.at(group_cnt, group_of[received], 1.0)
        np.maximum.at(group_max, group_of[received], values[received])
        np.minimum.at(group_min, group_of[received], values[received])
    loss_round += pad

    # ------------------------------------------------------------------ #
    # stage 3: gossip among leaders (O(n) messages, O(log n) rounds)
    # ------------------------------------------------------------------ #
    metrics.begin_phase("leader-gossip")
    m = leader_idx.size
    # Push-sum / push-max among the m = Theta(n / log n) leaders needs
    # O(log m + log 1/eps) rounds; epsilon = 1/n keeps the Average accurate
    # far beyond what the comparison needs.
    gossip_rounds = int(math.ceil(2 * math.log2(max(2, m)) + math.log2(max(2, n)) / 2 + 8))
    extremum = aggregate in (Aggregate.MAX, Aggregate.MIN)
    if extremum:
        start = group_max if aggregate == Aggregate.MAX else -group_min
    if engine:
        mode = "max" if extremum else "sum"
        nodes = [
            _LeaderGossipNode(
                int(i),
                leader_idx,
                mode,
                s=(float(start[i]) if extremum else float(group_sum[i])),
                w=(1.0 if extremum else max(float(group_cnt[i]), 1e-12)),
                rounds=gossip_rounds,
            )
            if leaders[i]
            else PassiveNode(int(i))
            for i in range(n)
        ]
        kernel.run(
            nodes,
            rng=rng,
            metrics=metrics,
            failure_model=failure_model,
            alive=alive,
            loss_oracle=oracle,
            loss_base_round=loss_round,
            max_substeps=2,
            max_rounds=gossip_rounds + 4,
        )
        if extremum:
            current = np.array([nodes[int(i)].s for i in leader_idx], dtype=float)
            leader_estimate = current if aggregate == Aggregate.MAX else -current
        else:
            s = np.array([nodes[int(i)].s for i in leader_idx], dtype=float)
            w = np.array([nodes[int(i)].w for i in leader_idx], dtype=float)
            leader_estimate = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)
    elif extremum:
        # Gossip the extremum among leaders; MIN is MAX on negated values.
        current = start[leader_idx].copy()
        for r in range(gossip_rounds):
            metrics.record_round()
            targets = rng.integers(0, m, size=m)
            delivered = kernel.deliver(
                metrics, oracle, MessageKind.PUSH, leader_idx[targets],
                senders=leader_idx, round_index=loss_round + r, alive=alive_arg,
            )
            np.maximum.at(current, targets[delivered], current[delivered])
        leader_estimate = current if aggregate == Aggregate.MAX else -current
    else:
        s = group_sum[leader_idx].copy()
        w = group_cnt[leader_idx].copy()
        w[w == 0] = 1e-12
        for r in range(gossip_rounds):
            metrics.record_round()
            targets = rng.integers(0, m, size=m)
            send_s, send_w = s / 2.0, w / 2.0
            s -= send_s
            w -= send_w
            delivered = kernel.deliver(
                metrics, oracle, MessageKind.PUSH, leader_idx[targets],
                senders=leader_idx, round_index=loss_round + r,
                alive=alive_arg, payload_words=2,
            )
            np.add.at(s, targets[delivered], send_s[delivered])
            np.add.at(w, targets[delivered], send_w[delivered])
        leader_estimate = np.where(w > 0, s / np.where(w > 0, w, 1.0), np.nan)

    # ------------------------------------------------------------------ #
    # stage 4: dissemination back into the groups (O(n) messages)
    # ------------------------------------------------------------------ #
    loss_round += gossip_rounds
    metrics.begin_phase("dissemination")
    estimates = np.full(n, np.nan, dtype=float)
    estimates[leader_idx] = leader_estimate
    if engine:
        members_of: dict[int, list[int]] = {int(i): [] for i in leader_idx}
        for member in member_ids:
            members_of[int(group_of[member])].append(int(member))
        nodes = [
            _DisseminateNode(
                int(i),
                float(estimates[i]) if leaders[i] else np.nan,
                members_of.get(int(i), []),
                pad,
            )
            for i in range(n)
        ]
        kernel.run(
            nodes,
            rng=rng,
            metrics=metrics,
            failure_model=failure_model,
            alive=alive,
            loss_oracle=oracle,
            loss_base_round=loss_round,
            max_substeps=2,
            max_rounds=pad,
            strict=False,
            enforce_call_budget=False,
        )
        for member in member_ids:
            estimates[member] = nodes[int(member)].estimate
    else:
        broadcast_ok = kernel.deliver(
            metrics, oracle, MessageKind.BROADCAST, member_ids,
            senders=group_of[member_ids], round_index=loss_round, alive=alive_arg,
        )
        reached = member_ids[broadcast_ok]
        leader_pos = {int(leader): i for i, leader in enumerate(leader_idx)}
        estimates[reached] = leader_estimate[[leader_pos[int(g)] for g in group_of[reached]]]
        metrics.record_round(pad)

    if aggregate in (Aggregate.MAX, Aggregate.MIN):
        exact = exact_aggregate(aggregate, values[alive])
    else:
        exact = exact_aggregate(Aggregate.AVERAGE, values[alive])

    return EfficientGossipResult(
        aggregate=aggregate,
        estimates=estimates,
        exact=float(exact),
        rounds=metrics.total_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        group_count=int(m),
        max_group_size=max_group_size,
    )
