"""The network: node population, topology view, and message delivery.

``Network`` owns the things that exist independently of any one protocol:
which nodes exist, which of them crashed before round 1, which pairs may
communicate directly, and the failure model applied to every transmission.
The :class:`~repro.simulator.engine.SynchronousEngine` drives protocols on
top of it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from .errors import ConfigurationError, UnknownNodeError
from .failures import ChurnOracle, FailureModel, LossOracle
from .message import Message
from .metrics import MetricsCollector

__all__ = ["Network"]


class Network:
    """A population of ``n`` nodes with a topology and a failure model.

    Parameters
    ----------
    n:
        Number of nodes.  Node ids are ``0 .. n-1``.
    failure_model:
        The :class:`FailureModel` applied to every transmission; defaults to
        a perfectly reliable network.
    neighbor_fn:
        Optional callable mapping a node id to the sequence of ids it can
        contact directly.  ``None`` means the complete graph (the model of
        Sections 2-3); Section 4 experiments pass an adjacency lookup from
        :mod:`repro.topology`.
    rng:
        Generator used to sample initial crashes and message losses.
    alive:
        Optional precomputed liveness mask.  When given, the network adopts
        it instead of sampling crashes itself; protocol entry points use
        this so crash injection happens exactly once per run, through the
        same :meth:`FailureModel.sample_crashes` call, whichever substrate
        backend executes the protocol.
    loss_oracle:
        The run-scoped :class:`LossOracle` deciding per-transmission fates.
        Protocol entry points derive it once in their shared preamble and
        pass it to both backends; when omitted the network derives its own
        from the failure model and ``rng`` (convenient for direct engine
        use in tests).
    loss_base_round:
        Offset added to every message's ``round_sent`` before consulting
        the oracle.  Multi-stage protocols that run several engine
        executions under one oracle (each restarting its round counter at
        zero) use it to keep round identities unique across stages.
    churn_oracle:
        Optional run-scoped :class:`ChurnOracle`.  When attached, the engine
        applies :meth:`apply_churn` at the top of every round (mutating
        ``alive`` in place) and :meth:`deliver` additionally charges
        transmissions addressed to dead nodes as ``messages_to_dead``.
    churn_base_round:
        Like ``loss_base_round`` but for churn identities across the engine
        executions of a multi-stage protocol.
    """

    def __init__(
        self,
        n: int,
        failure_model: FailureModel | None = None,
        neighbor_fn: Callable[[int], Sequence[int]] | None = None,
        rng: np.random.Generator | None = None,
        alive: np.ndarray | None = None,
        loss_oracle: LossOracle | None = None,
        loss_base_round: int = 0,
        churn_oracle: ChurnOracle | None = None,
        churn_base_round: int = 0,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(f"network needs at least one node, got n={n}")
        self.n = int(n)
        self.failure_model = failure_model or FailureModel()
        self.neighbor_fn = neighbor_fn
        self._rng = rng if rng is not None else np.random.default_rng()
        if alive is not None:
            alive = np.asarray(alive, dtype=bool)
            if alive.shape != (self.n,):
                raise ConfigurationError(f"alive mask must have shape ({self.n},)")
            self.alive = alive.copy()
        else:
            self.alive = ~self.failure_model.sample_crashes(self.n, self._rng)
        self.loss_oracle = (
            loss_oracle
            if loss_oracle is not None
            else LossOracle.for_run(self.failure_model, self._rng)
        )
        self.loss_base_round = int(loss_base_round)
        self.churn_oracle = churn_oracle
        self.churn_base_round = int(churn_base_round)

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    @property
    def alive_ids(self) -> np.ndarray:
        """Ids of nodes that did not crash before round 1."""
        return np.flatnonzero(self.alive)

    @property
    def has_churn(self) -> bool:
        return self.churn_oracle is not None

    def apply_churn(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Apply mid-run churn for ``round_index``, mutating ``alive`` in place.

        Returns ``(died_ids, joined_ids)``.  No-op (empty arrays) when no
        churn oracle is attached.
        """
        if self.churn_oracle is None:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return self.churn_oracle.step(self.churn_base_round + round_index, self.alive)

    @property
    def alive_count(self) -> int:
        return int(self.alive.sum())

    def is_alive(self, node_id: int) -> bool:
        self._check_id(node_id)
        return bool(self.alive[node_id])

    def crash(self, node_ids: Iterable[int]) -> None:
        """Mark nodes as crashed (used by tests and failure-injection suites).

        The paper's model only allows crashes *before* the algorithm starts;
        the engine therefore refuses to run if this is called mid-execution,
        but exposing it keeps the failure-injection tests honest about what
        the protocols do and do not tolerate.
        """
        for node_id in node_ids:
            self._check_id(node_id)
            self.alive[node_id] = False
        if not self.alive.any():
            raise ConfigurationError("cannot crash every node in the network")

    def _check_id(self, node_id: int) -> None:
        if not (0 <= node_id < self.n):
            raise UnknownNodeError(node_id)

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def is_complete_graph(self) -> bool:
        return self.neighbor_fn is None

    def neighbors(self, node_id: int) -> Sequence[int]:
        """Nodes that ``node_id`` can contact directly."""
        self._check_id(node_id)
        if self.neighbor_fn is None:
            # Complete graph: everyone except yourself.  Materialising the
            # list is only done on demand; protocols on the complete graph
            # normally use RoundContext.random_node instead.
            return [i for i in range(self.n) if i != node_id]
        return self.neighbor_fn(node_id)

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def deliver(
        self,
        messages: Sequence[Message],
        metrics: MetricsCollector,
        rng: np.random.Generator | None = None,
    ) -> list[Message]:
        """Apply the failure model to a batch of messages.

        Every attempted transmission is recorded in ``metrics`` (lost or
        not); the returned list contains only the messages that actually
        arrive, and only those addressed to alive nodes.  Messages sent *to*
        crashed nodes are charged to the sender but silently dropped, which
        is exactly what a call to a dead host looks like.

        Loss is decided by the :class:`LossOracle` from the transmission's
        identity (round, kind, sender, recipient, nonce), so the fate of a
        message is independent of its position in the batch -- the property
        that keeps the engine exactly equivalent to the columnar backend on
        lossy networks.  ``rng`` is accepted for signature compatibility but
        no longer consumed here.

        Fates for the whole batch are hashed in one vectorised
        :meth:`LossOracle.sample_salted` call (one chunk per delivery batch
        rather than one Python-level hash per message); accounting is
        charged per ``(kind, payload_words)`` group with identical totals.
        """
        del rng  # loss fates are identity-keyed, not stream-drawn
        count = len(messages)
        if count == 0:
            return []
        oracle = self.loss_oracle
        senders = np.fromiter((m.sender for m in messages), dtype=np.int64, count=count)
        recipients = np.fromiter((m.recipient for m in messages), dtype=np.int64, count=count)
        for ids in (senders, recipients):
            if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self.n):
                bad = ids[(ids < 0) | (ids >= self.n)][0]
                raise UnknownNodeError(int(bad))
        if oracle.reliable:
            lost = np.zeros(count, dtype=bool)
        else:
            from .failures import kind_salt

            rounds = np.fromiter(
                (self.loss_base_round + m.round_sent for m in messages),
                dtype=np.int64,
                count=count,
            )
            salts = np.fromiter(
                (kind_salt(m.kind) for m in messages), dtype=np.uint64, count=count
            )
            nonces = np.fromiter((m.nonce for m in messages), dtype=np.int64, count=count)
            lost = oracle.sample_salted(rounds, salts, senders, recipients, nonces)
        dead_targets = ~self.alive[recipients]
        if self.churn_oracle is not None:
            wasted = int(np.count_nonzero(dead_targets))
            if wasted:
                metrics.record_dead_targets(wasted)
        undeliverable = lost | dead_targets
        # Charge per (kind, payload_words) group -- same totals, same
        # per-kind counters as the old per-message loop.
        groups: dict[tuple[str, int], list[int]] = {}
        for index, message in enumerate(messages):
            key = (message.kind, message.payload_words)
            counters = groups.get(key)
            if counters is None:
                counters = groups[key] = [0, 0]
            counters[0] += 1
            if undeliverable[index]:
                counters[1] += 1
        for (kind, payload_words), (attempts, dropped) in groups.items():
            metrics.record_messages(kind, attempts, payload_words=payload_words, lost=dropped)
        return [m for m, dead in zip(messages, undeliverable) if not dead]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        topo = "complete" if self.is_complete_graph else "sparse"
        return (
            f"Network(n={self.n}, topology={topo}, alive={self.alive_count}, "
            f"failures={self.failure_model.describe()})"
        )
