"""Round-based synchronous simulator for the random phone-call model.

This package is the substrate every protocol in the reproduction runs on:

* :mod:`~repro.simulator.message` -- messages with word-level size accounting;
* :mod:`~repro.simulator.node` -- the per-node protocol interface;
* :mod:`~repro.simulator.network` -- node population, topology view, delivery;
* :mod:`~repro.simulator.failures` -- the paper's crash + lossy-link model;
* :mod:`~repro.simulator.engine` -- the synchronous round loop;
* :mod:`~repro.simulator.metrics` -- message/round/bit counters per phase;
* :mod:`~repro.simulator.rng` -- reproducible randomness;
* :mod:`~repro.simulator.trace` -- optional per-message tracing.
"""

from .engine import EngineConfig, EngineResult, SynchronousEngine, default_round_limit
from .errors import (
    ConfigurationError,
    ProtocolViolation,
    RoundLimitExceeded,
    SimulationError,
    UnknownNodeError,
)
from .failures import FailureModel, paper_delta_range
from .message import Message, MessageKind, Send
from .metrics import MetricsCollector, PhaseMetrics
from .network import Network
from .node import PassiveNode, ProtocolNode, RoundContext
from .rng import RngStream, derive_seed, make_rng, spawn
from .trace import NullTracer, TraceEvent, Tracer

__all__ = [
    "EngineConfig",
    "EngineResult",
    "SynchronousEngine",
    "default_round_limit",
    "ConfigurationError",
    "ProtocolViolation",
    "RoundLimitExceeded",
    "SimulationError",
    "UnknownNodeError",
    "FailureModel",
    "paper_delta_range",
    "Message",
    "MessageKind",
    "Send",
    "MetricsCollector",
    "PhaseMetrics",
    "Network",
    "PassiveNode",
    "ProtocolNode",
    "RoundContext",
    "RngStream",
    "derive_seed",
    "make_rng",
    "spawn",
    "NullTracer",
    "TraceEvent",
    "Tracer",
]
