"""Failure model of Section 2 of the paper.

The paper's model tolerates two kinds of failure:

1. **Initial crashes** -- a fraction of nodes may be down before the protocol
   starts.  Nodes do not crash once the algorithm is running.
2. **Lossy links** -- each transmitted message is lost independently with
   probability ``delta``.  The paper assumes ``1/log n < delta < 1/8`` for its
   analysis (larger deltas only need ``O(1/log(1/delta))`` repetitions,
   smaller ones only help), but the simulator accepts any ``delta`` in
   ``[0, 1)`` so experiments can explore the whole range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = ["FailureModel", "paper_delta_range"]


def paper_delta_range(n: int) -> tuple[float, float]:
    """Return the (open) interval of loss probabilities assumed by the paper.

    Section 2: "Without loss of generality, 1/log n < delta < 1/8".
    """
    if n < 4:
        raise ConfigurationError("paper delta range is only meaningful for n >= 4")
    return (1.0 / math.log2(n), 1.0 / 8.0)


@dataclass(frozen=True)
class FailureModel:
    """Immutable description of the failure behaviour of a network.

    Parameters
    ----------
    loss_probability:
        Probability ``delta`` that any individual message transmission is
        lost.  ``0.0`` gives a perfectly reliable network.
    crash_fraction:
        Fraction of nodes crashed before round 1.  Crashed nodes never send,
        never receive, and are excluded from the "all nodes learn the
        aggregate" success criterion (matching the paper, where crashed
        nodes simply do not participate).
    """

    loss_probability: float = 0.0
    crash_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not (0.0 <= self.crash_fraction < 1.0):
            raise ConfigurationError(
                f"crash_fraction must be in [0, 1), got {self.crash_fraction}"
            )

    # ------------------------------------------------------------------ #
    @property
    def reliable(self) -> bool:
        """True when no message can be lost and no node crashes."""
        return self.loss_probability == 0.0 and self.crash_fraction == 0.0

    def two_hop_loss_probability(self) -> float:
        """Loss probability ``rho`` of a two-hop relay (Theorem 5).

        A Phase-III gossip message reaches a root through at most two hops
        (call a random node, that node forwards to its root); the relay
        fails if either hop fails, so ``rho = 1 - (1 - delta)^2 <= 2 delta``.
        """
        return 1.0 - (1.0 - self.loss_probability) ** 2

    def sample_crashes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean array marking the initially crashed nodes."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        crashed = np.zeros(n, dtype=bool)
        count = int(round(self.crash_fraction * n))
        count = min(count, n - 1)  # at least one node must survive
        if count > 0:
            crashed[rng.choice(n, size=count, replace=False)] = True
        return crashed

    def message_lost(self, rng: np.random.Generator) -> bool:
        """Sample whether a single transmission is lost."""
        if self.loss_probability == 0.0:
            return False
        return bool(rng.random() < self.loss_probability)

    def sample_losses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised loss sampling for fast-path implementations."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        return rng.random(count) < self.loss_probability

    def describe(self) -> str:
        if self.reliable:
            return "reliable (delta=0, no crashes)"
        return (
            f"lossy (delta={self.loss_probability:g}, "
            f"crash_fraction={self.crash_fraction:g})"
        )
