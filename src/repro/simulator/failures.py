"""Failure model of Section 2 of the paper.

The paper's model tolerates two kinds of failure:

1. **Initial crashes** -- a fraction of nodes may be down before the protocol
   starts.  Nodes do not crash once the algorithm is running.
2. **Lossy links** -- each transmitted message is lost independently with
   probability ``delta``.  The paper assumes ``1/log n < delta < 1/8`` for its
   analysis (larger deltas only need ``O(1/log(1/delta))`` repetitions,
   smaller ones only help), but the simulator accepts any ``delta`` in
   ``[0, 1)`` so experiments can explore the whole range.

Loss decisions and the substrate
--------------------------------
The execution substrate runs every protocol on two interchangeable backends
(columnar batches vs a message-level engine) which deliver the same
transmissions in *different orders* within a round.  Drawing loss variates
from the shared RNG stream would therefore tie a message's fate to the
backend's internal batching.  Instead, :class:`LossOracle` makes the loss of
a transmission a pure function of its *identity*::

    lost = hash(run_key, round, kind, sender, recipient, nonce) < delta

where ``run_key`` is drawn once per protocol run from the shared generator
(only when ``delta > 0``, so reliable runs consume nothing).  Both backends
compute identical fates for the same seed no matter how they batch, which is
what extends the same-seed backend-equivalence guarantee to lossy networks.
A useful side effect: the protocol's own randomness (targets, ranks) is
identical across different ``delta`` values for a fixed seed -- common
random numbers across the loss axis of a sweep.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .errors import ConfigurationError

__all__ = ["FailureModel", "LossOracle", "kind_salt", "paper_delta_range", "set_batch_hasher"]


def paper_delta_range(n: int) -> tuple[float, float]:
    """Return the (open) interval of loss probabilities assumed by the paper.

    Section 2: "Without loss of generality, 1/log n < delta < 1/8".
    """
    if n < 4:
        raise ConfigurationError("paper delta range is only meaningful for n >= 4")
    return (1.0 / math.log2(n), 1.0 / 8.0)


@dataclass(frozen=True)
class FailureModel:
    """Immutable description of the failure behaviour of a network.

    Parameters
    ----------
    loss_probability:
        Probability ``delta`` that any individual message transmission is
        lost.  ``0.0`` gives a perfectly reliable network.
    crash_fraction:
        Fraction of nodes crashed before round 1.  Crashed nodes never send,
        never receive, and are excluded from the "all nodes learn the
        aggregate" success criterion (matching the paper, where crashed
        nodes simply do not participate).
    """

    loss_probability: float = 0.0
    crash_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not (0.0 <= self.crash_fraction < 1.0):
            raise ConfigurationError(
                f"crash_fraction must be in [0, 1), got {self.crash_fraction}"
            )

    # ------------------------------------------------------------------ #
    @property
    def reliable(self) -> bool:
        """True when no message can be lost and no node crashes."""
        return self.loss_probability == 0.0 and self.crash_fraction == 0.0

    def two_hop_loss_probability(self) -> float:
        """Loss probability ``rho`` of a two-hop relay (Theorem 5).

        A Phase-III gossip message reaches a root through at most two hops
        (call a random node, that node forwards to its root); the relay
        fails if either hop fails, so ``rho = 1 - (1 - delta)^2 <= 2 delta``.
        """
        return 1.0 - (1.0 - self.loss_probability) ** 2

    def sample_crashes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean array marking the initially crashed nodes."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        crashed = np.zeros(n, dtype=bool)
        count = int(round(self.crash_fraction * n))
        count = min(count, n - 1)  # at least one node must survive
        if count > 0:
            crashed[rng.choice(n, size=count, replace=False)] = True
        return crashed

    def sample_losses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised loss sampling for fast-path implementations.

        The zero-size path is explicit: ``count == 0`` (an empty frontier,
        a round in which nobody transmits) returns an empty mask without
        touching ``rng``, so callers that hit the edge case consume exactly
        zero draws on every backend.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        return rng.random(count) < self.loss_probability

    def describe(self) -> str:
        if self.reliable:
            return "reliable (delta=0, no crashes)"
        return (
            f"lossy (delta={self.loss_probability:g}, "
            f"crash_fraction={self.crash_fraction:g})"
        )

    # ------------------------------------------------------------------ #
    # spec serialisation (the run API's FailureSpec form)
    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """JSON-representable form used inside :class:`repro.api.RunSpec`."""
        return {
            "loss_probability": float(self.loss_probability),
            "crash_fraction": float(self.crash_fraction),
        }

    @classmethod
    def from_spec(cls, spec: "Mapping | FailureModel") -> "FailureModel":
        """Rebuild a failure model from its spec dict (identity on instances)."""
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, Mapping):
            raise ConfigurationError(f"failure spec must be a mapping, got {spec!r}")
        unknown = set(spec) - {"loss_probability", "crash_fraction"}
        if unknown:
            raise ConfigurationError(
                f"failure spec has unknown keys {sorted(unknown)} "
                "(valid: loss_probability, crash_fraction)"
            )
        return cls(
            loss_probability=float(spec.get("loss_probability", 0.0)),
            crash_fraction=float(spec.get("crash_fraction", 0.0)),
        )


# --------------------------------------------------------------------------- #
# identity-keyed loss decisions
# --------------------------------------------------------------------------- #
_KIND_SALTS: dict[str, int] = {}

#: splitmix64 constants (Steele, Lea & Flood 2014) -- the standard 64-bit
#: finaliser; statistical quality is more than sufficient for Bernoulli
#: thinning and it vectorises to a handful of uint64 ops.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def kind_salt(kind: object) -> int:
    """Stable 64-bit salt of a message kind (process- and backend-independent)."""
    key = str(kind)
    salt = _KIND_SALTS.get(key)
    if salt is None:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        salt = int.from_bytes(digest, "big")
        _KIND_SALTS[key] = salt
    return salt


def _splitmix64(x: np.ndarray) -> np.ndarray:
    x = x + _SM64_GAMMA
    x = (x ^ (x >> np.uint64(30))) * _SM64_M1
    x = (x ^ (x >> np.uint64(27))) * _SM64_M2
    return x ^ (x >> np.uint64(31))


def _as_u64(value) -> np.ndarray:
    """Coerce ints / int arrays (possibly negative) to wrapping uint64."""
    return np.asarray(value, dtype=np.int64).astype(np.uint64)


#: optional compiled batch hasher installed by :mod:`repro.substrate.compiled`
#: when numba is importable.  Signature matches :meth:`LossOracle._mix` plus
#: the leading run key; must be bit-identical to the NumPy chain below (the
#: backend-equivalence suite enforces this wherever numba is present).
_BATCH_HASHER = None

#: batches below this stay on the NumPy chain — the jitted call's fixed
#: overhead only pays off once the hash loop dominates.
_BATCH_HASHER_MIN = 4096


def set_batch_hasher(hasher) -> None:
    """Install (or, with ``None``, remove) the accelerated batch hasher."""
    global _BATCH_HASHER
    _BATCH_HASHER = hasher


class LossOracle:
    """Per-transmission loss decisions keyed by transmission identity.

    One oracle is created per protocol run (see the module docstring); both
    substrate backends consult the same oracle, so a transmission's fate
    depends only on ``(round, kind, sender, recipient, nonce)`` -- never on
    the order a backend happens to batch its deliveries in.

    ``nonce`` disambiguates the rare case of two same-kind transmissions
    between the same pair in the same round (e.g. a Phase III forwarder
    relaying two pushes to its root, or two Chord routes crossing the same
    overlay link); protocols assign it identically on both backends.
    """

    __slots__ = ("loss_probability", "key", "_threshold")

    def __init__(self, loss_probability: float, key: int = 0) -> None:
        if not (0.0 <= loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.loss_probability = float(loss_probability)
        self.key = int(key) & 0xFFFFFFFFFFFFFFFF
        #: compare the top 53 bits of the hash against delta * 2^53
        self._threshold = np.uint64(int(self.loss_probability * float(1 << 53)))

    @classmethod
    def for_run(cls, failure_model: "FailureModel", rng: np.random.Generator) -> "LossOracle":
        """Derive the run-scoped oracle in a protocol's shared preamble.

        The 64-bit run key is a hash of the shared generator's *state* —
        run-specific (it depends on the seed and on everything drawn so
        far) without consuming a single variate.  Two consequences: both
        backends derive the same key from the same preamble, and a lossy
        run draws exactly the same protocol randomness (targets, ranks) as
        the reliable run with the same seed — common random numbers across
        the ``delta`` axis of a sweep.
        """
        if failure_model.loss_probability == 0.0:
            return cls(0.0, 0)
        digest = hashlib.blake2b(
            repr(rng.bit_generator.state).encode("utf-8"), digest_size=8
        ).digest()
        return cls(failure_model.loss_probability, int.from_bytes(digest, "big"))

    @property
    def reliable(self) -> bool:
        return self.loss_probability == 0.0

    def _mix(self, round_index, kind_value, senders, recipients, nonces):
        if isinstance(kind_value, np.ndarray):
            kind_value = kind_value.astype(np.uint64, copy=False)
        else:
            kind_value = np.uint64(kind_value)
        if (
            _BATCH_HASHER is not None
            and isinstance(recipients, np.ndarray)
            and recipients.size >= _BATCH_HASHER_MIN
        ):
            return _BATCH_HASHER(
                self.key, kind_value, round_index, senders, recipients, nonces
            )
        with np.errstate(over="ignore"):
            x = _splitmix64(np.uint64(self.key) ^ kind_value)
            x = _splitmix64(x ^ _as_u64(round_index))
            x = _splitmix64(x ^ _as_u64(senders))
            x = _splitmix64(x ^ _as_u64(recipients))
            x = _splitmix64(x ^ _as_u64(nonces if nonces is not None else 0))
        return x

    def lost(
        self,
        round_index: int,
        kind: object,
        sender: int,
        recipient: int,
        nonce: int = 0,
    ) -> bool:
        """Fate of a single transmission (message-level engine path)."""
        if self.loss_probability == 0.0:
            return False
        x = self._mix(round_index, kind_salt(kind), sender, recipient, nonce)
        return bool((x >> np.uint64(11)) < self._threshold)

    def sample(
        self,
        round_index: int | np.ndarray,
        kind: object,
        senders: int | np.ndarray,
        recipients: np.ndarray,
        nonces: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fates of a batch of transmissions (columnar path).

        ``round_index`` and ``senders`` may be scalars (a whole batch from
        one sender in one round) or arrays aligned with ``recipients``
        (depth-layer sweeps that charge several rounds' transmissions in one
        call).  Returns the boolean *lost* mask.
        """
        recipients = np.asarray(recipients)
        count = int(recipients.size)
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        x = self._mix(round_index, kind_salt(kind), senders, recipients, nonces)
        return np.broadcast_to((x >> np.uint64(11)) < self._threshold, recipients.shape)

    def sample_salted(
        self,
        round_index: np.ndarray,
        kind_salts: np.ndarray,
        senders: np.ndarray,
        recipients: np.ndarray,
        nonces: np.ndarray | None = None,
    ) -> np.ndarray:
        """Like :meth:`sample`, but for a batch of *mixed* message kinds.

        ``kind_salts`` is a uint64 array of per-message :func:`kind_salt`
        values; everything else is as in :meth:`sample`.  This is the
        engine's chunked path: one vectorised hash per delivery batch
        instead of one Python-level :meth:`lost` call per message.
        """
        recipients = np.asarray(recipients)
        count = int(recipients.size)
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        x = self._mix(round_index, np.asarray(kind_salts, dtype=np.uint64), senders, recipients, nonces)
        return np.broadcast_to((x >> np.uint64(11)) < self._threshold, recipients.shape)
