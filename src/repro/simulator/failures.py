"""Failure model of Section 2 of the paper.

The paper's model tolerates two kinds of failure:

1. **Initial crashes** -- a fraction of nodes may be down before the protocol
   starts.  Nodes do not crash once the algorithm is running.
2. **Lossy links** -- each transmitted message is lost independently with
   probability ``delta``.  The paper assumes ``1/log n < delta < 1/8`` for its
   analysis (larger deltas only need ``O(1/log(1/delta))`` repetitions,
   smaller ones only help), but the simulator accepts any ``delta`` in
   ``[0, 1)`` so experiments can explore the whole range.

Loss decisions and the substrate
--------------------------------
The execution substrate runs every protocol on two interchangeable backends
(columnar batches vs a message-level engine) which deliver the same
transmissions in *different orders* within a round.  Drawing loss variates
from the shared RNG stream would therefore tie a message's fate to the
backend's internal batching.  Instead, :class:`LossOracle` makes the loss of
a transmission a pure function of its *identity*::

    lost = hash(run_key, round, kind, sender, recipient, nonce) < delta

where ``run_key`` is drawn once per protocol run from the shared generator
(only when ``delta > 0``, so reliable runs consume nothing).  Both backends
compute identical fates for the same seed no matter how they batch, which is
what extends the same-seed backend-equivalence guarantee to lossy networks.
A useful side effect: the protocol's own randomness (targets, ranks) is
identical across different ``delta`` values for a fixed seed -- common
random numbers across the loss axis of a sweep.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "ChurnOracle",
    "FailureModel",
    "LossOracle",
    "kind_salt",
    "paper_delta_range",
    "set_batch_hasher",
    "set_churn_hasher",
]


def paper_delta_range(n: int) -> tuple[float, float]:
    """Return the (open) interval of loss probabilities assumed by the paper.

    Section 2: "Without loss of generality, 1/log n < delta < 1/8".
    """
    if n < 4:
        raise ConfigurationError("paper delta range is only meaningful for n >= 4")
    return (1.0 / math.log2(n), 1.0 / 8.0)


@dataclass(frozen=True)
class FailureModel:
    """Immutable description of the failure behaviour of a network.

    Parameters
    ----------
    loss_probability:
        Probability ``delta`` that any individual message transmission is
        lost.  ``0.0`` gives a perfectly reliable network.
    crash_fraction:
        Fraction of nodes crashed before round 1.  Crashed nodes never send,
        never receive, and are excluded from the "all nodes learn the
        aggregate" success criterion (matching the paper, where crashed
        nodes simply do not participate).
    churn_rate:
        Per-round probability that a currently-alive node crashes at the
        *start* of that round (mid-run churn, beyond the paper's model).  A
        node that dies stops sending, receiving, and contributing.  Fates
        are identity-keyed like message loss (see :class:`ChurnOracle`), so
        they are independent of backend batching.
    join_rate:
        Per-round probability that a currently-dead node (re)joins at the
        start of that round.  Joining nodes restart from their own local
        value; what "restart" means is protocol-specific (push-sum re-seeds
        ``(value, 1)``, epoch gossip re-seeds at the next epoch boundary
        semantics, etc.).
    churn_schedule:
        Explicit churn events ``((round, node_ids, event), ...)`` with
        ``event`` one of ``"crash"`` / ``"join"``, applied *after* the rate
        processes for that round (a scheduled event overrides a rate fate
        for the same node and round).  Rounds are 0-based protocol rounds.
    """

    loss_probability: float = 0.0
    crash_fraction: float = 0.0
    churn_rate: float = 0.0
    join_rate: float = 0.0
    churn_schedule: tuple = ()

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if not (0.0 <= self.crash_fraction < 1.0):
            raise ConfigurationError(
                f"crash_fraction must be in [0, 1), got {self.crash_fraction}"
            )
        if not (0.0 <= self.churn_rate < 1.0):
            raise ConfigurationError(
                f"churn_rate must be in [0, 1), got {self.churn_rate}"
            )
        if not (0.0 <= self.join_rate < 1.0):
            raise ConfigurationError(
                f"join_rate must be in [0, 1), got {self.join_rate}"
            )
        object.__setattr__(
            self, "churn_schedule", self._normalize_schedule(self.churn_schedule)
        )

    @staticmethod
    def _normalize_schedule(schedule) -> tuple:
        """Canonicalise a churn schedule to ``((round, ids, event), ...)``.

        Events are sorted by round (stable within a round) so two specs that
        list the same events in different orders are the same model; node ids
        are deduplicated and sorted.
        """
        if schedule is None:
            return ()
        out = []
        for entry in schedule:
            try:
                round_index, node_ids, event = entry
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"churn schedule entries must be (round, node_ids, event), got {entry!r}"
                ) from None
            try:
                round_index = int(round_index)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"churn schedule round must be an integer, got {round_index!r}"
                ) from None
            if round_index < 0:
                raise ConfigurationError(
                    f"churn schedule round must be non-negative, got {round_index}"
                )
            event = str(event)
            if event not in ("crash", "join"):
                raise ConfigurationError(
                    f"churn schedule event must be 'crash' or 'join', got {event!r}"
                )
            if isinstance(node_ids, (int, np.integer)):
                node_ids = (int(node_ids),)
            ids = tuple(sorted({int(i) for i in node_ids}))
            if any(i < 0 for i in ids):
                raise ConfigurationError("churn schedule node ids must be non-negative")
            out.append((round_index, ids, event))
        out.sort(key=lambda e: e[0])
        return tuple(out)

    # ------------------------------------------------------------------ #
    @property
    def reliable(self) -> bool:
        """True when no message can be lost and no node crashes *initially*.

        Mid-run churn is orthogonal: the delivery fast paths key off the
        evolving ``alive`` mask, not off this flag, so ``reliable`` keeps its
        pre-churn meaning (no loss hashing needed).
        """
        return self.loss_probability == 0.0 and self.crash_fraction == 0.0

    @property
    def has_churn(self) -> bool:
        """True when any mid-run churn process is configured."""
        return (
            self.churn_rate != 0.0
            or self.join_rate != 0.0
            or bool(self.churn_schedule)
        )

    @property
    def has_joins(self) -> bool:
        """True when the churn model can revive nodes mid-run."""
        return self.join_rate != 0.0 or any(
            event == "join" for _round, _ids, event in self.churn_schedule
        )

    def two_hop_loss_probability(self) -> float:
        """Loss probability ``rho`` of a two-hop relay (Theorem 5).

        A Phase-III gossip message reaches a root through at most two hops
        (call a random node, that node forwards to its root); the relay
        fails if either hop fails, so ``rho = 1 - (1 - delta)^2 <= 2 delta``.
        """
        return 1.0 - (1.0 - self.loss_probability) ** 2

    def sample_crashes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return a boolean array marking the initially crashed nodes."""
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        crashed = np.zeros(n, dtype=bool)
        count = int(round(self.crash_fraction * n))
        count = min(count, n - 1)  # at least one node must survive
        if count > 0:
            crashed[rng.choice(n, size=count, replace=False)] = True
        return crashed

    def sample_losses(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised loss sampling for fast-path implementations.

        The zero-size path is explicit: ``count == 0`` (an empty frontier,
        a round in which nobody transmits) returns an empty mask without
        touching ``rng``, so callers that hit the edge case consume exactly
        zero draws on every backend.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        return rng.random(count) < self.loss_probability

    def describe(self) -> str:
        churn = ""
        if self.has_churn:
            bits = []
            if self.churn_rate:
                bits.append(f"churn_rate={self.churn_rate:g}")
            if self.join_rate:
                bits.append(f"join_rate={self.join_rate:g}")
            if self.churn_schedule:
                bits.append(f"{len(self.churn_schedule)} scheduled events")
            churn = ", " + ", ".join(bits)
        if self.reliable:
            if not churn:
                return "reliable (delta=0, no crashes)"
            return f"reliable links (delta=0{churn})"
        return (
            f"lossy (delta={self.loss_probability:g}, "
            f"crash_fraction={self.crash_fraction:g}{churn})"
        )

    # ------------------------------------------------------------------ #
    # spec serialisation (the run API's FailureSpec form)
    # ------------------------------------------------------------------ #
    def to_spec(self) -> dict:
        """JSON-representable form used inside :class:`repro.api.RunSpec`.

        Churn keys are omitted when zero/empty so the spec (and therefore
        the spec/param hashes of every pre-churn run) is byte-identical to
        what earlier versions produced.
        """
        spec = {
            "loss_probability": float(self.loss_probability),
            "crash_fraction": float(self.crash_fraction),
        }
        if self.churn_rate:
            spec["churn_rate"] = float(self.churn_rate)
        if self.join_rate:
            spec["join_rate"] = float(self.join_rate)
        if self.churn_schedule:
            spec["churn_schedule"] = [
                [r, list(ids), event] for r, ids, event in self.churn_schedule
            ]
        return spec

    @classmethod
    def from_spec(cls, spec: "Mapping | FailureModel") -> "FailureModel":
        """Rebuild a failure model from its spec dict (identity on instances)."""
        if isinstance(spec, cls):
            return spec
        if not isinstance(spec, Mapping):
            raise ConfigurationError(f"failure spec must be a mapping, got {spec!r}")
        unknown = set(spec) - {
            "loss_probability",
            "crash_fraction",
            "churn_rate",
            "join_rate",
            "churn_schedule",
        }
        if unknown:
            raise ConfigurationError(
                f"failure spec has unknown keys {sorted(unknown)} "
                "(valid: loss_probability, crash_fraction, churn_rate, "
                "join_rate, churn_schedule)"
            )
        return cls(
            loss_probability=float(spec.get("loss_probability", 0.0)),
            crash_fraction=float(spec.get("crash_fraction", 0.0)),
            churn_rate=float(spec.get("churn_rate", 0.0)),
            join_rate=float(spec.get("join_rate", 0.0)),
            churn_schedule=tuple(
                tuple(entry) for entry in spec.get("churn_schedule", ())
            ),
        )


# --------------------------------------------------------------------------- #
# identity-keyed loss decisions
# --------------------------------------------------------------------------- #
_KIND_SALTS: dict[str, int] = {}

#: splitmix64 constants (Steele, Lea & Flood 2014) -- the standard 64-bit
#: finaliser; statistical quality is more than sufficient for Bernoulli
#: thinning and it vectorises to a handful of uint64 ops.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def kind_salt(kind: object) -> int:
    """Stable 64-bit salt of a message kind (process- and backend-independent)."""
    key = str(kind)
    salt = _KIND_SALTS.get(key)
    if salt is None:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        salt = int.from_bytes(digest, "big")
        _KIND_SALTS[key] = salt
    return salt


def _splitmix64(x: np.ndarray) -> np.ndarray:
    x = x + _SM64_GAMMA
    x = (x ^ (x >> np.uint64(30))) * _SM64_M1
    x = (x ^ (x >> np.uint64(27))) * _SM64_M2
    return x ^ (x >> np.uint64(31))


def _as_u64(value) -> np.ndarray:
    """Coerce ints / int arrays (possibly negative) to wrapping uint64."""
    return np.asarray(value, dtype=np.int64).astype(np.uint64)


#: optional compiled batch hasher installed by :mod:`repro.substrate.compiled`
#: when numba is importable.  Signature matches :meth:`LossOracle._mix` plus
#: the leading run key; must be bit-identical to the NumPy chain below (the
#: backend-equivalence suite enforces this wherever numba is present).
_BATCH_HASHER = None

#: batches below this stay on the NumPy chain — the jitted call's fixed
#: overhead only pays off once the hash loop dominates.
_BATCH_HASHER_MIN = 4096


def set_batch_hasher(hasher) -> None:
    """Install (or, with ``None``, remove) the accelerated batch hasher."""
    global _BATCH_HASHER
    _BATCH_HASHER = hasher


class LossOracle:
    """Per-transmission loss decisions keyed by transmission identity.

    One oracle is created per protocol run (see the module docstring); both
    substrate backends consult the same oracle, so a transmission's fate
    depends only on ``(round, kind, sender, recipient, nonce)`` -- never on
    the order a backend happens to batch its deliveries in.

    ``nonce`` disambiguates the rare case of two same-kind transmissions
    between the same pair in the same round (e.g. a Phase III forwarder
    relaying two pushes to its root, or two Chord routes crossing the same
    overlay link); protocols assign it identically on both backends.
    """

    __slots__ = ("loss_probability", "key", "_threshold")

    def __init__(self, loss_probability: float, key: int = 0) -> None:
        if not (0.0 <= loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.loss_probability = float(loss_probability)
        self.key = int(key) & 0xFFFFFFFFFFFFFFFF
        #: compare the top 53 bits of the hash against delta * 2^53
        self._threshold = np.uint64(int(self.loss_probability * float(1 << 53)))

    @classmethod
    def for_run(cls, failure_model: "FailureModel", rng: np.random.Generator) -> "LossOracle":
        """Derive the run-scoped oracle in a protocol's shared preamble.

        The 64-bit run key is a hash of the shared generator's *state* —
        run-specific (it depends on the seed and on everything drawn so
        far) without consuming a single variate.  Two consequences: both
        backends derive the same key from the same preamble, and a lossy
        run draws exactly the same protocol randomness (targets, ranks) as
        the reliable run with the same seed — common random numbers across
        the ``delta`` axis of a sweep.
        """
        if failure_model.loss_probability == 0.0:
            return cls(0.0, 0)
        digest = hashlib.blake2b(
            repr(rng.bit_generator.state).encode("utf-8"), digest_size=8
        ).digest()
        return cls(failure_model.loss_probability, int.from_bytes(digest, "big"))

    @property
    def reliable(self) -> bool:
        return self.loss_probability == 0.0

    def _mix(self, round_index, kind_value, senders, recipients, nonces):
        if isinstance(kind_value, np.ndarray):
            kind_value = kind_value.astype(np.uint64, copy=False)
        else:
            kind_value = np.uint64(kind_value)
        if (
            _BATCH_HASHER is not None
            and isinstance(recipients, np.ndarray)
            and recipients.size >= _BATCH_HASHER_MIN
        ):
            return _BATCH_HASHER(
                self.key, kind_value, round_index, senders, recipients, nonces
            )
        with np.errstate(over="ignore"):
            x = _splitmix64(np.uint64(self.key) ^ kind_value)
            x = _splitmix64(x ^ _as_u64(round_index))
            x = _splitmix64(x ^ _as_u64(senders))
            x = _splitmix64(x ^ _as_u64(recipients))
            x = _splitmix64(x ^ _as_u64(nonces if nonces is not None else 0))
        return x

    def lost(
        self,
        round_index: int,
        kind: object,
        sender: int,
        recipient: int,
        nonce: int = 0,
    ) -> bool:
        """Fate of a single transmission (message-level engine path)."""
        if self.loss_probability == 0.0:
            return False
        x = self._mix(round_index, kind_salt(kind), sender, recipient, nonce)
        return bool((x >> np.uint64(11)) < self._threshold)

    def sample(
        self,
        round_index: int | np.ndarray,
        kind: object,
        senders: int | np.ndarray,
        recipients: np.ndarray,
        nonces: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fates of a batch of transmissions (columnar path).

        ``round_index`` and ``senders`` may be scalars (a whole batch from
        one sender in one round) or arrays aligned with ``recipients``
        (depth-layer sweeps that charge several rounds' transmissions in one
        call).  Returns the boolean *lost* mask.
        """
        recipients = np.asarray(recipients)
        count = int(recipients.size)
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        x = self._mix(round_index, kind_salt(kind), senders, recipients, nonces)
        return np.broadcast_to((x >> np.uint64(11)) < self._threshold, recipients.shape)

    def sample_salted(
        self,
        round_index: np.ndarray,
        kind_salts: np.ndarray,
        senders: np.ndarray,
        recipients: np.ndarray,
        nonces: np.ndarray | None = None,
    ) -> np.ndarray:
        """Like :meth:`sample`, but for a batch of *mixed* message kinds.

        ``kind_salts`` is a uint64 array of per-message :func:`kind_salt`
        values; everything else is as in :meth:`sample`.  This is the
        engine's chunked path: one vectorised hash per delivery batch
        instead of one Python-level :meth:`lost` call per message.
        """
        recipients = np.asarray(recipients)
        count = int(recipients.size)
        if count == 0 or self.loss_probability == 0.0:
            return np.zeros(count, dtype=bool)
        x = self._mix(round_index, np.asarray(kind_salts, dtype=np.uint64), senders, recipients, nonces)
        return np.broadcast_to((x >> np.uint64(11)) < self._threshold, recipients.shape)


# --------------------------------------------------------------------------- #
# identity-keyed mid-run churn
# --------------------------------------------------------------------------- #

#: optional compiled churn-mask hasher installed by
#: :mod:`repro.substrate.compiled` when numba is importable.  Signature
#: ``(key, salt, round_index, ids, threshold) -> bool mask``; must be
#: bit-identical to the NumPy chain in :meth:`ChurnOracle._fates`.
_CHURN_HASHER = None


def set_churn_hasher(hasher) -> None:
    """Install (or, with ``None``, remove) the accelerated churn-mask hasher."""
    global _CHURN_HASHER
    _CHURN_HASHER = hasher


class ChurnOracle:
    """Per-round, per-node churn fates keyed by node identity.

    Like :class:`LossOracle`, churn fates are a pure function of identity —
    ``hash(run_key, round, node) < rate`` — never of the shared RNG stream,
    so every backend (and every shard count, and every batching order)
    computes the same fates for the same seed.  The run key is derived from
    the generator *state* with a ``"churn"`` domain tag, so churn fates are
    disjoint from loss fates even for the same round and node id.

    ``step`` is the single shared implementation all backends call: it
    mutates the ``alive`` mask in place at the top of a round and reports
    who died and who joined.  One guard keeps runs well-defined: if a round's
    fates would kill every remaining node, the lowest-id victim is spared.
    """

    __slots__ = (
        "churn_rate",
        "join_rate",
        "key",
        "_crash_threshold",
        "_join_threshold",
        "_crash_salt",
        "_join_salt",
        "_schedule",
    )

    def __init__(
        self,
        churn_rate: float,
        join_rate: float = 0.0,
        schedule: tuple = (),
        key: int = 0,
    ) -> None:
        if not (0.0 <= churn_rate < 1.0):
            raise ConfigurationError(f"churn_rate must be in [0, 1), got {churn_rate}")
        if not (0.0 <= join_rate < 1.0):
            raise ConfigurationError(f"join_rate must be in [0, 1), got {join_rate}")
        self.churn_rate = float(churn_rate)
        self.join_rate = float(join_rate)
        self.key = int(key) & 0xFFFFFFFFFFFFFFFF
        self._crash_threshold = np.uint64(int(self.churn_rate * float(1 << 53)))
        self._join_threshold = np.uint64(int(self.join_rate * float(1 << 53)))
        self._crash_salt = np.uint64(kind_salt("churn/crash"))
        self._join_salt = np.uint64(kind_salt("churn/join"))
        #: round -> [(ids, event), ...] in schedule order
        by_round: dict[int, list] = {}
        for round_index, ids, event in FailureModel._normalize_schedule(schedule):
            by_round.setdefault(round_index, []).append(
                (np.asarray(ids, dtype=np.int64), event)
            )
        self._schedule = by_round

    @property
    def has_joins(self) -> bool:
        """Whether this oracle can ever revive a node.

        Crash-only protocols (the root-relay Phase III procedures) accept
        churn but reject joins; they test this instead of re-deriving it
        from the spec.
        """
        if self.join_rate > 0.0:
            return True
        return any(
            event == "join"
            for entries in self._schedule.values()
            for _ids, event in entries
        )

    @classmethod
    def for_run(
        cls, failure_model: "FailureModel | None", rng: np.random.Generator
    ) -> "ChurnOracle | None":
        """Derive the run-scoped churn oracle, or ``None`` when churn is off.

        Like :meth:`LossOracle.for_run` this hashes the generator *state*
        and consumes zero variates; the ``"churn"`` domain tag keeps the key
        disjoint from the loss key derived from the same state.
        """
        if failure_model is None or not failure_model.has_churn:
            return None
        digest = hashlib.blake2b(
            repr(rng.bit_generator.state).encode("utf-8") + b"|churn", digest_size=8
        ).digest()
        return cls(
            failure_model.churn_rate,
            failure_model.join_rate,
            failure_model.churn_schedule,
            int.from_bytes(digest, "big"),
        )

    def _fates(self, round_index: int, ids: np.ndarray, salt, threshold) -> np.ndarray:
        """Boolean fate mask for ``ids`` at ``round_index`` under ``threshold``."""
        if ids.size == 0:
            return np.zeros(0, dtype=bool)
        if _CHURN_HASHER is not None and ids.size >= _BATCH_HASHER_MIN:
            return _CHURN_HASHER(self.key, salt, round_index, ids, threshold)
        with np.errstate(over="ignore"):
            x = _splitmix64(np.uint64(self.key) ^ salt)
            x = _splitmix64(x ^ _as_u64(round_index))
            x = _splitmix64(x ^ _as_u64(ids))
        return (x >> np.uint64(11)) < threshold

    def step(
        self, round_index: int, alive: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply round ``round_index``'s churn to ``alive`` **in place**.

        Returns ``(died_ids, joined_ids)`` (int64 arrays, ascending).  Rate
        fates are evaluated on the mask as it stood at entry; scheduled
        events for this round are applied last and override rate fates for
        the same node.
        """
        n = alive.shape[0]
        die = np.zeros(n, dtype=bool)
        join = np.zeros(n, dtype=bool)
        if self.churn_rate > 0.0:
            alive_ids = np.flatnonzero(alive)
            die[alive_ids] = self._fates(
                round_index, alive_ids, self._crash_salt, self._crash_threshold
            )
        if self.join_rate > 0.0:
            dead_ids = np.flatnonzero(~alive)
            join[dead_ids] = self._fates(
                round_index, dead_ids, self._join_salt, self._join_threshold
            )
        for ids, event in self._schedule.get(int(round_index), ()):
            ids = ids[ids < n]
            if event == "crash":
                die[ids] = True
                join[ids] = False
            else:
                join[ids] = True
                die[ids] = False
        die &= alive
        join &= ~alive
        # Never let a round extinguish the network: spare the lowest-id victim.
        if not join.any() and die.any():
            survivors = int(np.count_nonzero(alive)) - int(np.count_nonzero(die))
            if survivors == 0:
                die[np.flatnonzero(die)[0]] = False
        died = np.flatnonzero(die)
        joined = np.flatnonzero(join)
        alive[died] = False
        alive[joined] = True
        return died, joined
