"""The synchronous round engine for the random phone-call model.

One engine run executes one protocol (a population of
:class:`~repro.simulator.node.ProtocolNode` instances) over a
:class:`~repro.simulator.network.Network` until every alive node reports
completion, an optional stop condition fires, or the round budget runs out.

Round structure
---------------
Per Section 2 of the paper, rounds are synchronous and each node may place
one call per round.  Information flows both ways over an established call, so
the engine processes every round in *sub-steps*:

1. sub-step 0: every alive node's ``begin_round`` output is delivered;
2. sub-steps 1..max_substeps-1: messages returned by ``on_messages``
   (replies and forwards) are delivered within the same round;
3. anything still pending after the sub-step budget is carried over and
   delivered at the start of the next round, before ``begin_round``.

The default of two sub-steps models "call, then answer over the same link".
Phase III of DRR-gossip uses three (call a random node, it forwards to its
root, the root may answer), which the corresponding protocols request via
``EngineConfig.max_substeps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from .errors import ConfigurationError, ProtocolViolation, RoundLimitExceeded
from .message import Message, Send
from .metrics import MetricsCollector
from .network import Network
from .node import ProtocolNode, RoundContext
from .trace import NullTracer, TraceEvent, Tracer

__all__ = ["EngineConfig", "EngineResult", "SynchronousEngine", "default_round_limit"]


def default_round_limit(n: int) -> int:
    """A generous default round budget of ``Theta(log^2 n)``.

    Every protocol in the repository is ``O(log n)`` or ``O(log^2 n)`` rounds;
    the default budget flags non-termination bugs quickly without tripping on
    legitimate slow runs at small ``n``.
    """
    return max(64, 8 * int(math.ceil(math.log2(max(2, n)))) ** 2)


@dataclass
class EngineConfig:
    """Tunables of a single engine run."""

    #: Hard limit on the number of rounds.  ``None`` selects
    #: :func:`default_round_limit`.
    max_rounds: int | None = None
    #: Number of delivery sub-steps per round (see module docstring).
    max_substeps: int = 2
    #: Whether exceeding ``max_rounds`` raises (True) or returns a partial
    #: result flagged ``completed=False`` (False).
    strict: bool = True
    #: Enforce the one-call-per-round budget of the phone-call model.
    enforce_call_budget: bool = True
    #: Optional stop condition evaluated after every round; receives the
    #: node list and the round index and returns True to stop early.
    stop_condition: Callable[[Sequence[ProtocolNode], int], bool] | None = None

    def __post_init__(self) -> None:
        if self.max_rounds is not None and self.max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        if self.max_substeps < 1:
            raise ConfigurationError("max_substeps must be at least 1")


@dataclass
class EngineResult:
    """Outcome of an engine run."""

    rounds: int
    completed: bool
    metrics: MetricsCollector
    nodes: Sequence[ProtocolNode]
    stopped_by_condition: bool = False
    carried_over_messages: int = 0
    #: Final liveness mask after mid-run churn (``None`` when the network
    #: has no churn oracle; the initial mask is then still current).
    final_alive: np.ndarray | None = None

    def results_by_node(self) -> dict[int, object]:
        return {node.node_id: node.result() for node in self.nodes}

    def node(self, node_id: int) -> ProtocolNode:
        return self.nodes[node_id]


class SynchronousEngine:
    """Drives a protocol to completion over a network."""

    def __init__(
        self,
        network: Network,
        nodes: Sequence[ProtocolNode],
        rng: np.random.Generator,
        metrics: MetricsCollector | None = None,
        config: EngineConfig | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if len(nodes) != network.n:
            raise ConfigurationError(
                f"expected {network.n} protocol nodes, got {len(nodes)}"
            )
        for index, node in enumerate(nodes):
            if node.node_id != index:
                raise ConfigurationError(
                    f"node at position {index} has node_id {node.node_id}; "
                    "nodes must be supplied in id order"
                )
        self.network = network
        self.nodes = list(nodes)
        self.rng = rng
        self.metrics = metrics if metrics is not None else MetricsCollector(n=network.n)
        self.config = config or EngineConfig()
        # An empty Tracer is falsy (len() == 0), so test against None rather
        # than truthiness.
        self.tracer = tracer if tracer is not None else NullTracer()
        self._pending: list[Message] = []

    # ------------------------------------------------------------------ #
    def _context(self, round_index: int) -> RoundContext:
        return RoundContext(
            round_index=round_index,
            n=self.network.n,
            rng=self.rng,
            alive=self.network.alive,
            _neighbor_fn=self.network.neighbor_fn,
        )

    def _collect_sends(
        self,
        sender: ProtocolNode,
        sends: Sequence[Send],
        round_index: int,
        budget: Mapping[int, int] | None,
    ) -> list[Message]:
        messages: list[Message] = []
        if not sends:
            return messages
        if budget is not None and self.config.enforce_call_budget:
            used = budget.get(sender.node_id, 0) + len(sends)
            if used > sender.calls_per_round:
                raise ProtocolViolation(
                    f"node {sender.node_id} initiated {used} calls in round "
                    f"{round_index}, but its budget is {sender.calls_per_round}"
                )
            budget[sender.node_id] = used  # type: ignore[index]
        for send in sends:
            if not isinstance(send, Send):
                raise ProtocolViolation(
                    f"node {sender.node_id} returned {type(send).__name__}; "
                    "protocol callbacks must return Send objects"
                )
            messages.append(send.to_message(sender.node_id).stamped(round_index))
        return messages

    def _deliver(
        self, messages: list[Message], ctx: RoundContext, substep: int
    ) -> list[Message]:
        """Deliver a batch and gather the replies it provokes."""
        arrived = self.network.deliver(messages, self.metrics, self.rng)
        if self.tracer.enabled:
            arrived_set = {id(m) for m in arrived}
            for message in messages:
                self.tracer.record(
                    TraceEvent(
                        round_index=ctx.round_index,
                        substep=substep,
                        message=message,
                        delivered=id(message) in arrived_set,
                    )
                )
        by_recipient: dict[int, list[Message]] = {}
        for message in arrived:
            by_recipient.setdefault(message.recipient, []).append(message)
        replies: list[Message] = []
        for recipient, batch in by_recipient.items():
            node = self.nodes[recipient]
            sends = node.on_messages(ctx, batch)
            # Replies are not charged against the call budget: answering an
            # established call is the second half of the same call.
            replies.extend(self._collect_sends(node, sends, ctx.round_index, None))
        return replies

    # ------------------------------------------------------------------ #
    def run(self) -> EngineResult:
        max_rounds = (
            self.config.max_rounds
            if self.config.max_rounds is not None
            else default_round_limit(self.network.n)
        )
        churn = self.network.has_churn
        alive_ids = self.network.alive_ids
        round_index = 0
        completed = False
        stopped = False

        while round_index < max_rounds:
            if churn:
                # Churn strikes at the top of the round: the dead stop
                # sending/receiving immediately (carried-over deliveries
                # below already see the updated mask), joiners participate
                # from this round's begin_round on.
                died, joined = self.network.apply_churn(round_index)
                for node_id in died:
                    self.nodes[node_id].on_deactivated(round_index)
                for node_id in joined:
                    self.nodes[node_id].on_activated(round_index)
                if died.size or joined.size:
                    alive_ids = self.network.alive_ids
            ctx = self._context(round_index)
            self.metrics.record_round()
            call_budget: dict[int, int] = {}

            # Deliver messages carried over from the previous round first so
            # protocols observe them before deciding this round's call.
            outgoing: list[Message] = []
            if self._pending:
                carried, self._pending = self._pending, []
                outgoing.extend(self._deliver(carried, ctx, substep=0))

            for node_id in alive_ids:
                node = self.nodes[node_id]
                sends = node.begin_round(ctx)
                outgoing.extend(
                    self._collect_sends(node, sends, round_index, call_budget)
                )

            substep = 1
            while outgoing and substep < self.config.max_substeps:
                outgoing = self._deliver(outgoing, ctx, substep)
                substep += 1
            # Whatever is left spills into the next round.
            self._pending = outgoing

            round_index += 1

            if self.config.stop_condition is not None and self.config.stop_condition(
                self.nodes, round_index
            ):
                stopped = True
                completed = True
                break

            if all(self.nodes[i].is_complete() for i in alive_ids) and not self._pending:
                completed = True
                break

        if not completed and self.config.strict:
            raise RoundLimitExceeded(max_rounds)

        return EngineResult(
            rounds=round_index,
            completed=completed,
            metrics=self.metrics,
            nodes=self.nodes,
            stopped_by_condition=stopped,
            carried_over_messages=len(self._pending),
            final_alive=self.network.alive.copy() if churn else None,
        )
