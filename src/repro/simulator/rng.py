"""Reproducible randomness for simulations.

Every experiment in the repository draws all of its randomness from a single
:class:`numpy.random.Generator` created here.  Experiments record the seed in
their result objects, so any run can be replayed bit-for-bit.  Independent
streams (one per protocol phase, or one per repetition of a sweep) are
derived with :func:`spawn` which uses NumPy's ``SeedSequence`` spawning so
streams never overlap.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed", "RngStream"]

#: Seed used when the caller does not provide one.  Fixed (rather than
#: entropy-based) so that "I just ran the quickstart" is reproducible.
DEFAULT_SEED = 20100614


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy generator from a seed, passing generators through.

    Accepting an existing generator makes every public function in the
    library composable: callers can pass either a seed (typically at the
    experiment boundary) or the generator they are already using (inside
    protocol code), and nested calls never reseed accidentally.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the generator's bit-generator seed sequence when available, and
    falls back to drawing child seeds when the generator was constructed
    without one (which NumPy permits but is rare in this code base).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def _stable_label_hash(label: str) -> int:
    """A 48-bit hash of a string label that is stable across processes.

    Python's builtin ``hash`` is salted per interpreter process (PEP 456),
    which would make derived seeds differ between runs and between the
    parent and spawned workers of a parallel sweep.  The orchestration
    layer keys its result store on derived seeds, so label hashing must be
    a pure function of the label.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=6).digest()
    return int.from_bytes(digest, "big")


def derive_seed(seed: int, *labels: int | str) -> int:
    """Deterministically derive a sub-seed from a base seed and labels.

    Used by sweep drivers so that (seed, n, repetition) always maps to the
    same stream regardless of execution order, parallelisation, or which
    interpreter process performs the derivation.
    """
    mix = np.uint64(seed ^ 0x9E3779B97F4A7C15)
    for label in labels:
        if isinstance(label, str):
            label_value = np.uint64(_stable_label_hash(label))
        else:
            label_value = np.uint64(int(label) & 0xFFFFFFFFFFFFFFFF)
        mix = np.uint64((int(mix) * 6364136223846793005 + int(label_value) + 1442695040888963407) % 2**64)
    return int(mix % (2**63 - 1))


class RngStream:
    """A labelled family of generators derived from one experiment seed.

    The stream hands out one generator per ``(label...)`` tuple and caches
    it, so repeated look-ups inside a protocol return the same generator
    (and therefore continue the same stream) while distinct labels are
    independent.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._cache: dict[tuple, np.random.Generator] = {}

    def get(self, *labels: int | str) -> np.random.Generator:
        key = tuple(labels)
        if key not in self._cache:
            self._cache[key] = np.random.default_rng(derive_seed(self.seed, *labels))
        return self._cache[key]

    def seeds(self, count: int, *labels: int | str) -> Sequence[int]:
        """Return ``count`` deterministic sub-seeds for a labelled family."""
        return [derive_seed(self.seed, *labels, i) for i in range(count)]

    def __iter__(self) -> Iterator[np.random.Generator]:  # pragma: no cover
        raise TypeError("RngStream is not iterable; use .get(label) or .seeds(count)")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(seed={self.seed}, streams={len(self._cache)})"
