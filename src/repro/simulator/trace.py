"""Optional execution tracing.

Tracing is off by default (it allocates per-message records, which matters
when an experiment delivers tens of millions of messages), and is switched on
per-engine for debugging, for the worked examples, and for the tests that
assert fine-grained protocol behaviour such as "a leaf sends exactly one
convergecast message".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .message import Message

__all__ = ["TraceEvent", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One delivered or lost message, as observed by the engine."""

    round_index: int
    substep: int
    message: Message
    delivered: bool

    def describe(self) -> str:
        status = "->" if self.delivered else "-x"
        return (
            f"r{self.round_index}.{self.substep} "
            f"{self.message.sender}{status}{self.message.recipient} "
            f"{self.message.kind}{dict(self.message.payload)}"
        )


class NullTracer:
    """No-op tracer used when tracing is disabled."""

    enabled = False

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def events(self) -> Iterator[TraceEvent]:  # pragma: no cover - trivial
        return iter(())


class Tracer(NullTracer):
    """Records every transmission the engine processes.

    Parameters
    ----------
    predicate:
        Optional filter; only events for which ``predicate(event)`` is true
        are stored.  Useful to trace a single node or message kind without
        paying for the rest.
    limit:
        Hard cap on stored events to protect against runaway memory use;
        events past the limit are counted but dropped.
    """

    enabled = True

    def __init__(
        self,
        predicate: Callable[[TraceEvent], bool] | None = None,
        limit: int = 1_000_000,
    ) -> None:
        self.predicate = predicate
        self.limit = limit
        self.dropped = 0
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if self.predicate is not None and not self.predicate(event):
            return
        if len(self._events) >= self.limit:
            self.dropped += 1
            return
        self._events.append(event)

    def events(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.message.kind == str(kind)]

    def involving(self, node_id: int) -> list[TraceEvent]:
        return [
            e
            for e in self._events
            if e.message.sender == node_id or e.message.recipient == node_id
        ]

    def sent_by(self, node_id: int) -> list[TraceEvent]:
        return [e for e in self._events if e.message.sender == node_id]

    def received_by(self, node_id: int) -> list[TraceEvent]:
        return [
            e for e in self._events if e.message.recipient == node_id and e.delivered
        ]
