"""Protocol node interface for the synchronous round engine.

A protocol is implemented as a class whose instances live one-per-node and
react to two callbacks per round:

``begin_round``
    Called once per round for every alive node, in node-id order.  The node
    may *initiate* at most ``calls_per_round`` transmissions here (one, in
    the random phone-call model of the paper).

``on_messages``
    Called when messages addressed to the node are delivered.  The node may
    return reply/forward transmissions; these are delivered within the same
    round (the "information can be exchanged in both directions along the
    link" clause of the model) up to the engine's sub-step budget, after
    which they spill into the next round.

Nodes signal completion through :meth:`ProtocolNode.is_complete`; the engine
stops when every alive node is complete (or a protocol-level
:class:`~repro.simulator.engine.StopCondition` fires).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .message import Message, Send

__all__ = ["RoundContext", "ProtocolNode", "PassiveNode"]


@dataclass
class RoundContext:
    """Read-only view of the world handed to protocol callbacks.

    Attributes
    ----------
    round_index:
        Zero-based index of the current round.
    n:
        Total number of nodes in the network (including crashed ones), i.e.
        the ``n`` that appears in the paper's bounds.
    rng:
        The shared generator all protocol randomness must come from.
    alive:
        Boolean array of length ``n``; ``alive[i]`` is False for initially
        crashed nodes.
    neighbors:
        ``neighbors(i)`` returns the ids a node may contact directly.  On the
        complete graph this is every other node; on sparse topologies it is
        the adjacency list (Section 4 model).
    """

    round_index: int
    n: int
    rng: np.random.Generator
    alive: np.ndarray
    _neighbor_fn: Any = None

    def neighbors(self, node_id: int) -> Sequence[int]:
        if self._neighbor_fn is None:
            raise RuntimeError("this context has no topology attached")
        return self._neighbor_fn(node_id)

    def random_node(self, exclude: int | None = None) -> int:
        """Sample a node uniformly at random from all ``n`` nodes.

        This is the primitive the random phone-call model gives every node;
        crashed nodes can still be *selected* (the call simply goes
        unanswered), which mirrors the paper's assumption that crashes happen
        before the algorithm starts and are not detectable a priori.
        """
        if exclude is None:
            return int(self.rng.integers(0, self.n))
        pick = int(self.rng.integers(0, self.n - 1))
        return pick if pick < exclude else pick + 1


class ProtocolNode(abc.ABC):
    """Base class for per-node protocol state machines."""

    #: How many transmissions the node may initiate in ``begin_round``.
    #: 1 in the phone-call model; Local-DRR (message-passing model on sparse
    #: graphs) overrides this because a node may message all neighbours in
    #: one round.
    calls_per_round: int = 1

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)

    # ------------------------------------------------------------------ #
    # engine callbacks
    # ------------------------------------------------------------------ #
    def begin_round(self, ctx: RoundContext) -> list[Send]:
        """Initiate calls for this round.  Default: stay silent."""
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        """React to delivered messages, optionally replying/forwarding."""
        return []

    def on_deactivated(self, round_index: int) -> None:
        """Called when mid-run churn kills this node.  Default: no-op.

        A dead node gets no further ``begin_round``/``on_messages`` calls;
        protocols that track per-node liveness state override this.
        """

    def on_activated(self, round_index: int) -> None:
        """Called when mid-run churn (re)activates this node.  Default: no-op.

        Protocols override this to re-seed the node's state from its local
        value (a joining node restarts; it does not resume).
        """

    @abc.abstractmethod
    def is_complete(self) -> bool:
        """Return True once the node has finished its part of the protocol."""

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def result(self) -> Any:
        """Protocol-specific output of this node (aggregate estimate, ...)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(node_id={self.node_id}, complete={self.is_complete()})"


class PassiveNode(ProtocolNode):
    """A node that never initiates and is always complete.

    Useful as a stand-in for crashed nodes in tests and as a base class for
    protocols in which only a subset of nodes (e.g. tree roots in Phase III)
    take an active role while the rest merely forward.
    """

    def is_complete(self) -> bool:
        return True
