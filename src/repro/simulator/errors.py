"""Exception hierarchy for the gossip simulator substrate.

Every error raised by :mod:`repro.simulator` derives from
:class:`SimulationError` so callers can catch substrate problems without
accidentally swallowing protocol-level bugs.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "ConfigurationError",
    "ProtocolViolation",
    "RoundLimitExceeded",
    "UnknownNodeError",
]


class SimulationError(Exception):
    """Base class for all simulator-substrate errors."""


class ConfigurationError(SimulationError):
    """Raised when an engine, network, or failure model is misconfigured.

    Examples: negative loss probability, empty node set, a crash fraction
    outside ``[0, 1)``, or a non-positive round limit.
    """


class ProtocolViolation(SimulationError):
    """Raised when a protocol node violates the communication model.

    The random phone-call model allows each node to *initiate* at most one
    call per round (receiving any number of calls is permitted).  Protocols
    that ask the engine to send more than their per-round initiation budget,
    address a message to a crashed/unknown node, or send from a node that is
    not part of the network trigger this error.
    """


class RoundLimitExceeded(SimulationError):
    """Raised when a protocol fails to terminate within the round budget.

    Gossip protocols in this repository are all ``O(log n)`` or
    ``O(polylog n)`` rounds; hitting the limit almost always indicates a bug
    (for instance a convergecast waiting for a child message that was lost
    and never retransmitted) rather than slow convergence.  The engine can be
    configured with :attr:`repro.simulator.engine.EngineConfig.strict` set to
    ``False`` to return a partial result instead of raising.
    """

    def __init__(self, rounds: int, message: str | None = None) -> None:
        self.rounds = rounds
        super().__init__(
            message
            or f"protocol did not terminate within the {rounds}-round budget"
        )


class UnknownNodeError(SimulationError):
    """Raised when a message references a node id outside the network."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        super().__init__(f"node id {node_id} is not part of the network")
