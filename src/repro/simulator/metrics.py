"""Message, bit, and round accounting.

The paper's headline claims are complexity statements -- ``O(log n)`` rounds
and ``O(n log log n)`` messages for DRR-gossip versus ``O(n log n)`` messages
for uniform gossip -- so the metrics collector is the measurement instrument
of the whole reproduction.  It counts every directed transmission the engine
delivers (and, separately, every transmission that was attempted but lost to
the failure model), broken down by message kind and by named protocol phase.

Accounting conventions
----------------------
* A *message* is one directed transmission.  A phone call in which both
  endpoints exchange information (a DRR probe answered by a rank, a
  Gossip-max inquiry answered by a value) therefore counts as **two**
  messages.  This matches Karp et al.'s accounting where both transmissions
  of a push-pull exchange are charged.
* *Bits* are ``payload_words * word_bits`` with ``word_bits = ceil(log2 n) +
  value_bits``; the engine fills in ``n`` so tests can assert that every
  protocol respects the ``O(log n + log s)`` per-message budget.
* *Rounds* count engine rounds.  Sub-steps within a round (the reply half of
  a call) do not increase the round counter.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from ..observability import telemetry as _telemetry

__all__ = ["PhaseMetrics", "MetricsCollector"]


@dataclass
class PhaseMetrics:
    """Counters for a single named phase of a protocol."""

    name: str
    rounds: int = 0
    messages: int = 0
    messages_lost: int = 0
    words: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    #: transmissions addressed to a node that was dead when they arrived
    #: (churn runs only; a subset of the undeliverable count).  Kept out of
    #: :meth:`as_dict` when zero so churn-free results serialise unchanged.
    messages_to_dead: int = 0

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "messages_lost": self.messages_lost,
            "words": self.words,
            "messages_by_kind": dict(self.messages_by_kind),
        }
        if self.messages_to_dead:
            out["messages_to_dead"] = self.messages_to_dead
        return out


class MetricsCollector:
    """Accumulates counts for one protocol execution.

    A collector always has a *current phase*; protocols switch phases with
    :meth:`begin_phase` (e.g. ``"drr"``, ``"convergecast"``, ``"gossip"``),
    and the per-phase breakdown is what the Section 3.5 experiment (E11 in
    DESIGN.md) reports.
    """

    DEFAULT_PHASE = "default"

    def __init__(self, n: int | None = None, value_bits: int = 32) -> None:
        if n is not None and n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.value_bits = value_bits
        self._phases: dict[str, PhaseMetrics] = {}
        self._phase_order: list[str] = []
        self._current = self._ensure_phase(self.DEFAULT_PHASE)

    # ------------------------------------------------------------------ #
    # phase management
    # ------------------------------------------------------------------ #
    def _ensure_phase(self, name: str) -> PhaseMetrics:
        if name not in self._phases:
            self._phases[name] = PhaseMetrics(name=name)
            self._phase_order.append(name)
        return self._phases[name]

    def begin_phase(self, name: str) -> None:
        """Switch the collector to phase ``name`` (creating it if needed)."""
        self._current = self._ensure_phase(name)
        tel = _telemetry._CURRENT
        if tel.enabled:
            tel.phase_begin(name)

    @property
    def current_phase(self) -> str:
        return self._current.name

    def phases(self) -> Iterator[PhaseMetrics]:
        for name in self._phase_order:
            yield self._phases[name]

    def phase(self, name: str) -> PhaseMetrics:
        if name not in self._phases:
            raise KeyError(f"unknown phase {name!r}; known: {self._phase_order}")
        return self._phases[name]

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_round(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("round count cannot be negative")
        self._current.rounds += count
        tel = _telemetry._CURRENT
        if tel.enabled:
            tel.round_tick()

    def record_message(self, kind: str, payload_words: int = 1, lost: bool = False) -> None:
        """Record one attempted transmission.

        Lost messages count toward the message complexity (the sender spent
        the transmission) but are tracked separately so experiments can
        report loss rates.
        """
        phase = self._current
        phase.messages += 1
        phase.words += max(0, payload_words)
        phase.messages_by_kind[str(kind)] += 1
        if lost:
            phase.messages_lost += 1

    def record_messages(self, kind: str, count: int, payload_words: int = 1, lost: int = 0) -> None:
        """Bulk-record ``count`` identical transmissions (columnar paths use this).

        ``lost`` of the ``count`` attempts never arrived; like in
        :meth:`record_message` they still count toward the message
        complexity but are tracked separately.  The vectorized substrate
        charges whole per-round batches through this method with the same
        lost-message semantics the engine applies per message, which is what
        keeps the two backends' accounting identical.
        """
        if count < 0:
            raise ValueError("message count cannot be negative")
        if not (0 <= lost <= count):
            raise ValueError(f"lost must be in [0, count], got {lost} of {count}")
        phase = self._current
        phase.messages += count
        phase.words += max(0, payload_words) * count
        phase.messages_by_kind[str(kind)] += count
        phase.messages_lost += lost

    def record_dead_targets(self, count: int) -> None:
        """Record ``count`` transmissions wasted on dead recipients.

        Only churn-aware call sites charge this (the messages were already
        counted by :meth:`record_messages`; this tracks the degradation
        axis separately), so churn-free runs never touch the counter.
        """
        if count < 0:
            raise ValueError("dead-target count cannot be negative")
        self._current.messages_to_dead += count

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #
    @property
    def total_rounds(self) -> int:
        return sum(p.rounds for p in self._phases.values())

    @property
    def total_messages(self) -> int:
        return sum(p.messages for p in self._phases.values())

    @property
    def total_messages_lost(self) -> int:
        return sum(p.messages_lost for p in self._phases.values())

    @property
    def total_words(self) -> int:
        return sum(p.words for p in self._phases.values())

    @property
    def total_messages_to_dead(self) -> int:
        return sum(p.messages_to_dead for p in self._phases.values())

    @property
    def total_bits(self) -> int:
        """Total bits under the paper's O(log n + log s) per-word model."""
        if self.n is None:
            word_bits = 64
        else:
            word_bits = max(1, math.ceil(math.log2(max(2, self.n)))) + self.value_bits
        return self.total_words * word_bits

    def messages_by_kind(self) -> Counter:
        total: Counter = Counter()
        for phase in self._phases.values():
            total.update(phase.messages_by_kind)
        return total

    def messages_by_phase(self) -> dict[str, int]:
        return {name: self._phases[name].messages for name in self._phase_order}

    def rounds_by_phase(self) -> dict[str, int]:
        return {name: self._phases[name].rounds for name in self._phase_order}

    # ------------------------------------------------------------------ #
    # merging / export
    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's counts into this one, phase by phase.

        Used by composite protocols (DRR-gossip-ave runs Gossip-max,
        Gossip-ave and Data-spread back to back) so the final result exposes
        one coherent breakdown.
        """
        for phase in other.phases():
            mine = self._ensure_phase(phase.name)
            mine.rounds += phase.rounds
            mine.messages += phase.messages
            mine.messages_lost += phase.messages_lost
            mine.words += phase.words
            mine.messages_by_kind.update(phase.messages_by_kind)
            mine.messages_to_dead += phase.messages_to_dead

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "total_rounds": self.total_rounds,
            "total_messages": self.total_messages,
            "total_messages_lost": self.total_messages_lost,
            "total_words": self.total_words,
            "phases": [p.as_dict() for p in self.phases()],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsCollector(rounds={self.total_rounds}, "
            f"messages={self.total_messages}, phases={list(self._phase_order)})"
        )
