"""Message objects exchanged by protocol nodes.

The paper limits message length to ``O(log n + log s)`` bits, where ``s`` is
the range of the node values (Section 2).  We model that budget explicitly:
every :class:`Message` carries ``payload_words``, the number of
machine-word-sized fields it transports (a node address, a value, a weight,
a tree size, ...).  The metrics collector converts words into the paper's
bit budget so experiments can check that no protocol silently cheats by
shipping whole value vectors around.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["MessageKind", "Message", "Send"]


class MessageKind(str, enum.Enum):
    """Well-known message kinds used by the bundled protocols.

    Protocols are free to define additional string kinds; the enum exists so
    that metrics break down cleanly for the algorithms shipped with the
    reproduction and so tests can refer to kinds without magic strings.
    """

    #: Phase I (DRR): ask a sampled node for its rank.
    PROBE = "probe"
    #: Phase I (DRR): reply to a probe with the responder's rank.
    RANK = "rank"
    #: Phase I (DRR): tell the chosen parent that the sender is its child.
    CONNECT = "connect"
    #: Phase II: convergecast payload travelling up a tree.
    CONVERGECAST = "convergecast"
    #: Phase II: broadcast payload travelling down a tree (root address or
    #: final aggregate).
    BROADCAST = "broadcast"
    #: Phase III: gossip push carrying a running aggregate between roots.
    GOSSIP = "gossip"
    #: Phase III: forwarding hop from a non-root to its root.
    FORWARD = "forward"
    #: Phase III (Gossip-max sampling procedure): inquiry sent by a root.
    INQUIRY = "inquiry"
    #: Phase III (Gossip-max sampling procedure): response to an inquiry.
    INQUIRY_REPLY = "inquiry-reply"
    #: Baselines: uniform-gossip push (Kempe et al. push-sum / push-max).
    PUSH = "push"
    #: Baselines: pull request / rumor-spreading pull.
    PULL = "pull"
    #: Overlay routing: one hop of a Chord identifier lookup.
    LOOKUP = "lookup"
    #: Overlay routing: the owner's reply to a completed Chord lookup.
    LOOKUP_REPLY = "lookup-reply"
    #: Baselines / misc: generic application payload.
    DATA = "data"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Message:
    """A single directed transmission delivered by the engine.

    Parameters
    ----------
    sender:
        Node id of the originating node.
    recipient:
        Node id of the destination node.
    kind:
        A :class:`MessageKind` or free-form string tagging the message type;
        used for metrics break-down and by protocol dispatch code.
    payload:
        Arbitrary (read-only) mapping describing the content.  Protocols in
        this repository only ever store numbers and node ids here, keeping
        the ``O(log n + log s)`` bound honest.
    payload_words:
        Number of word-sized fields the message carries, used for bit
        accounting.  Defaults to the number of payload entries.
    round_sent:
        The engine stamps the round in which the message was handed over for
        delivery.  ``-1`` until stamped.
    nonce:
        Disambiguator consumed by the loss oracle when a protocol can send
        two same-kind messages between the same pair in one round (e.g. a
        Phase III forwarder relaying two pushes, or two Chord routes
        crossing one link).  ``0`` for the common unique case.
    """

    sender: int
    recipient: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_words: int = -1
    round_sent: int = -1
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.payload_words < 0:
            object.__setattr__(self, "payload_words", max(1, len(self.payload)))
        if isinstance(self.kind, MessageKind):
            object.__setattr__(self, "kind", self.kind.value)

    def stamped(self, round_index: int) -> "Message":
        """Return a copy carrying the round in which it was sent."""
        return Message(
            sender=self.sender,
            recipient=self.recipient,
            kind=self.kind,
            payload=self.payload,
            payload_words=self.payload_words,
            round_sent=round_index,
            nonce=self.nonce,
        )

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into the payload mapping."""
        return self.payload.get(key, default)


@dataclass(frozen=True)
class Send:
    """A request from a protocol node to transmit a message.

    ``Send`` is what protocol callbacks return; the engine converts it into a
    stamped :class:`Message`, applies the failure model, and updates metrics.
    Keeping the two types separate makes it impossible for a protocol to forge
    sender ids or round stamps.
    """

    recipient: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_words: int = -1
    nonce: int = 0

    def to_message(self, sender: int) -> Message:
        return Message(
            sender=sender,
            recipient=self.recipient,
            kind=self.kind,
            payload=self.payload,
            payload_words=self.payload_words,
            nonce=self.nonce,
        )
