"""The execution kernels behind every protocol in the repository.

A *kernel* is an execution strategy for the random phone-call model.  Every
protocol (the DRR-gossip phases under :mod:`repro.core` and the baselines
under :mod:`repro.baselines`) is exposed through a single public function
with a ``backend`` parameter; the function body dispatches through
:func:`run_on` to one of the registered kernels:

``vectorized`` (:class:`VectorizedKernel`)
    The columnar kernel.  An entire round's calls and replies are NumPy
    arrays: one batch of targets, one batch of loss samples, one batched
    metrics charge.  This is the single-process hot path and scales to
    ``n`` in the millions.

``sharded`` (:class:`~repro.substrate.sharded.ShardedKernel`)
    The columnar kernel fanned out over a pool of worker processes on
    ``multiprocessing.shared_memory`` arrays (one barrier per round, only
    message index arrays move between processes).  Targets ``n >= 10^7``;
    a subclass of the vectorized kernel, so protocols pick it up through
    the same dispatch with zero call-site changes.

``engine`` (:class:`EngineKernel`)
    The message-level kernel.  Protocols run as per-node
    :class:`~repro.simulator.node.ProtocolNode` state machines driven by
    :class:`~repro.simulator.engine.SynchronousEngine`; every transmission
    is an individual :class:`~repro.simulator.message.Message`.  This is
    the fidelity reference the paper semantics are validated against.

The kernels are engineered to be *equivalent*, not merely similar: they
consume the shared RNG stream in the same order (a NumPy generator produces
identical variates for one ``size=k`` batch draw and ``k`` sequential scalar
draws, and the sharded kernel draws in the parent), decide per-message loss
through the identity-keyed :class:`~repro.simulator.failures.LossOracle`
(so fates are independent of batching order *and* of shard boundaries), and
charge messages through the same accounting conventions.  They therefore
produce identical round counts, message counts (total, per kind, per phase,
lost), and estimates for the same seed — on reliable *and* lossy networks.
``tests/test_substrate.py`` asserts this for every protocol.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..simulator.engine import EngineConfig, EngineResult, SynchronousEngine
from ..simulator.errors import ConfigurationError
from ..simulator.failures import ChurnOracle, FailureModel, LossOracle
from ..simulator.metrics import MetricsCollector
from ..simulator.network import Network
from ..simulator.node import ProtocolNode
from .delivery import (
    compact_frontier,
    deliver_batch,
    fold_pushes,
    occurrence_index,
    probe_exchange,
    relay_to_roots,
    sample_uniform,
)

__all__ = [
    "Kernel",
    "VectorizedKernel",
    "EngineKernel",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "UNAVAILABLE_BACKENDS",
    "available_backends",
    "get_kernel",
    "normalize_backend",
    "run_on",
]

T = TypeVar("T")


class Kernel:
    """Base class of the execution kernels (see module docstring)."""

    #: backend name used in configs, CLI flags, and the result store
    name: str = "abstract"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class VectorizedKernel(Kernel):
    """Columnar execution: one NumPy batch per round per message kind.

    The kernel itself is stateless; it exposes the shared delivery / relay /
    sampling primitives so protocol implementations never hand-roll failure
    injection or metrics charging (that used to be duplicated in every
    module, with subtly different lost-message accounting).
    """

    name = "vectorized"

    #: one shared code path for loss sampling + message charging
    deliver = staticmethod(deliver_batch)
    #: the fused PROBE -> RANK exchange of one DRR probing round
    probe_exchange = staticmethod(probe_exchange)
    #: the two-hop push-to-root relay of the Phase III procedures
    relay_to_roots = staticmethod(relay_to_roots)
    #: uniform target sampling, draw-order compatible with RoundContext.random_node
    sample_uniform = staticmethod(sample_uniform)
    #: per-(key) send ranks, matching the engine's per-node send numbering
    occurrence_index = staticmethod(occurrence_index)
    #: drop found senders from the compacted DRR frontier (order-preserving)
    compact_frontier = staticmethod(compact_frontier)
    #: fused scatter-add folding a gossip round's pushes into the accumulators
    fold_pushes = staticmethod(fold_pushes)

    def refresh_alive(self, alive: np.ndarray) -> None:
        """Hook called after a churn step mutates the ``alive`` mask in place.

        The single-process kernel reads the caller's array directly, so
        there is nothing to do; the sharded kernel overrides this to rewrite
        the shared-memory mirror its workers read.
        """


class EngineKernel(Kernel):
    """Message-level execution on the :class:`SynchronousEngine`."""

    name = "engine"

    def run(
        self,
        nodes: Sequence[ProtocolNode],
        *,
        rng: np.random.Generator,
        metrics: MetricsCollector,
        failure_model: FailureModel | None = None,
        alive: np.ndarray | None = None,
        neighbor_fn: Callable[[int], Sequence[int]] | None = None,
        loss_oracle: LossOracle | None = None,
        loss_base_round: int = 0,
        churn_oracle: ChurnOracle | None = None,
        churn_base_round: int = 0,
        max_substeps: int = 2,
        max_rounds: int | None = None,
        strict: bool = True,
        enforce_call_budget: bool = True,
        stop_condition: Callable[[Sequence[ProtocolNode], int], bool] | None = None,
        tracer=None,
    ) -> EngineResult:
        """Drive ``nodes`` to completion, wiring up network and config.

        This replaces the per-protocol boilerplate that used to build a
        :class:`Network` and :class:`EngineConfig` by hand.  Passing
        ``alive`` injects a crash mask sampled by the caller, and
        ``loss_oracle`` the caller's run-scoped loss oracle — crash sampling
        and oracle-key derivation each happen exactly once per protocol run,
        in the shared entry point, for both backends.  ``loss_base_round``
        offsets this execution's round counter in the oracle's identity
        space (multi-stage protocols run several engine executions under
        one oracle).  ``churn_oracle`` / ``churn_base_round`` are the same
        pattern for mid-run churn; the evolved mask comes back on
        :attr:`EngineResult.final_alive`.
        """
        network = Network(
            len(nodes),
            failure_model=failure_model or FailureModel(),
            neighbor_fn=neighbor_fn,
            rng=rng,
            alive=alive,
            loss_oracle=loss_oracle,
            loss_base_round=loss_base_round,
            churn_oracle=churn_oracle,
            churn_base_round=churn_base_round,
        )
        engine = SynchronousEngine(
            network=network,
            nodes=list(nodes),
            rng=rng,
            metrics=metrics,
            tracer=tracer,
            config=EngineConfig(
                max_rounds=max_rounds,
                max_substeps=max_substeps,
                strict=strict,
                enforce_call_budget=enforce_call_budget,
                stop_condition=stop_condition,
            ),
        )
        return engine.run()


#: the kernel registry; ``Kernel`` instances are stateless singletons
BACKENDS: dict[str, Kernel] = {
    VectorizedKernel.name: VectorizedKernel(),
    EngineKernel.name: EngineKernel(),
}

DEFAULT_BACKEND = VectorizedKernel.name

#: backends that exist but could not register in this environment, mapped to
#: the human-readable reason (e.g. ``compiled`` without numba installed).
#: :func:`normalize_backend` turns the reason into the error message, so a
#: user selecting an uninstalled backend learns how to get it rather than
#: being told it does not exist.
UNAVAILABLE_BACKENDS: dict[str, str] = {}


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends (stable order: default first)."""
    names = sorted(BACKENDS, key=lambda name: (name != DEFAULT_BACKEND, name))
    return tuple(names)


def normalize_backend(backend: str | Kernel | None) -> str:
    """Validate a backend selector and return its canonical name."""
    if backend is None:
        return DEFAULT_BACKEND
    if isinstance(backend, Kernel):
        return backend.name
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        reason = UNAVAILABLE_BACKENDS.get(name)
        if reason is not None:
            raise ConfigurationError(
                f"substrate backend {name!r} is not available: {reason} "
                f"(available: {', '.join(available_backends())})"
            )
        raise ConfigurationError(
            f"unknown substrate backend {backend!r} "
            f"(available: {', '.join(available_backends())})"
        )
    return name


def get_kernel(backend: str | Kernel | None = None) -> Kernel:
    """Resolve a backend selector to its kernel instance."""
    return BACKENDS[normalize_backend(backend)]


def run_on(
    backend: str | Kernel | None,
    *,
    vectorized: Callable[[VectorizedKernel], T],
    engine: Callable[[EngineKernel], T],
    tracer=None,
) -> T:
    """Dispatch one protocol run to the selected kernel.

    ``vectorized`` and ``engine`` are the two executions of the *same*
    protocol; the pair is this repository's concrete form of the
    protocol-over-kernel interface.  Both callables receive their kernel so
    all delivery / engine plumbing goes through the shared primitives.

    ``tracer`` (a :class:`~repro.simulator.trace.Tracer`) records
    per-message events and only exists on the message-level engine;
    requesting it on a columnar kernel is rejected here rather than
    silently recording nothing (which is what used to happen).
    """
    kernel = get_kernel(backend)
    if isinstance(kernel, EngineKernel):
        return engine(kernel)
    if tracer is not None and getattr(tracer, "enabled", False):
        raise ConfigurationError(
            f"tracing is engine-only: backend {kernel.name!r} executes rounds "
            "columnarly and never materialises per-message events. "
            "Run with backend='engine' for a message trace, or use telemetry "
            "(RunSpec.telemetry / repro.observability) for per-phase and "
            "per-primitive timing on the columnar backends."
        )
    return vectorized(kernel)
