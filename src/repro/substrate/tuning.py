"""Opt-in dtype narrowing for the columnar hot paths.

The vectorized kernel stores node ids as ``int64`` and estimate
accumulators as ``float64``.  At ``n >= 10^7`` the id arrays dominate the
memory traffic of a round (targets, senders, receiver positions, parent
pointers), and halving them to ``int32`` measurably reduces the
bandwidth bound.  Narrowing is **off by default** because it is not free:

* ``narrow_ids`` is semantically exact — ids are drawn from the shared
  RNG stream at full width and only *stored* narrow, so the stream, every
  message fate, and every count are unchanged — but a narrowed array that
  protocols hand back to user code changes dtype.
* ``narrow_estimates`` stores gossip mass accumulators in ``float32``,
  which changes estimates at the ``1e-7`` relative level; fixed-seed
  results are no longer bit-exact against the default configuration (the
  backend-equivalence suite runs with narrowing off).

Use :func:`tuned` as a context manager around a run, or :func:`set_tuning`
for a process-wide default::

    from repro.substrate import tuning
    with tuning.tuned(narrow_ids=True):
        drr_gossip_average(values, rng=1)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace

import numpy as np

__all__ = ["KernelTuning", "get_tuning", "set_tuning", "tuned"]

#: ids above this cannot be narrowed to int32 (kept well below 2**31 so
#: derived quantities like ``size * (n + 1) + id`` stay safe in float64).
_INT32_MAX_N = 2**31 - 2


@dataclass(frozen=True)
class KernelTuning:
    """Immutable narrowing configuration consulted by the hot paths."""

    #: store node-id arrays as int32 (ids are still *drawn* at full width)
    narrow_ids: bool = False
    #: store float estimate accumulators as float32
    narrow_estimates: bool = False

    def id_dtype(self, n: int) -> np.dtype:
        """Storage dtype for node-id arrays over a population of ``n``."""
        if self.narrow_ids and n <= _INT32_MAX_N:
            return np.dtype(np.int32)
        return np.dtype(np.int64)

    def estimate_dtype(self) -> np.dtype:
        """Storage dtype for estimate/mass accumulators."""
        return np.dtype(np.float32 if self.narrow_estimates else np.float64)


_current = KernelTuning()


def get_tuning() -> KernelTuning:
    """The active narrowing configuration (defaults: everything off)."""
    return _current


def set_tuning(**flags: bool) -> KernelTuning:
    """Set the process-wide tuning; returns the new configuration."""
    global _current
    _current = replace(_current, **flags)
    return _current


@contextlib.contextmanager
def tuned(**flags: bool):
    """Context manager applying narrowing flags for the enclosed runs."""
    global _current
    previous = _current
    _current = replace(previous, **flags)
    try:
        yield _current
    finally:
        _current = previous
