"""Columnar delivery primitives shared by every vectorized protocol.

These functions are the vectorized counterpart of
:meth:`repro.simulator.network.Network.deliver` and
:meth:`repro.simulator.node.RoundContext.random_node`:

* :func:`deliver_batch` applies the loss oracle to one batch of directed
  transmissions and charges them to the metrics collector — including the
  lost-message accounting that the message-level engine applies, so both
  backends report identical ``messages`` *and* ``messages_lost`` on the
  same seeds.
* :func:`probe_exchange` is the fused PROBE -> RANK exchange of one DRR
  probing round (two deliveries plus the rank comparison in one pass, so
  a backend can execute the whole round without materialising the
  intermediate compactions — the "mask then scatter" fusion).
* :func:`relay_to_roots` is the two-hop "push to a uniform node, the node
  forwards to its root" relay that Gossip-max, Gossip-ave, and Data-spread
  all use (it used to be hand-rolled separately in each of them).
* :func:`sample_uniform` draws uniform targets in the exact order per-node
  engine protocols draw them, which is what makes the two backends
  bit-compatible.

Loss fates come from the run-scoped
:class:`~repro.simulator.failures.LossOracle`: the fate of a transmission is
a pure function of ``(round, kind, sender, recipient, nonce)``, never of the
order a backend batches its deliveries in.  Every call therefore threads the
*identity* of its transmissions (senders and the sending round) alongside the
recipients; the engine derives the same identities from its stamped
:class:`~repro.simulator.message.Message` objects, which is what makes the
two backends agree message-for-message even on lossy networks.

Target sampling still comes from the shared RNG stream: one
``rng.integers(..., size=k)`` batch produces the same variates as ``k``
sequential scalar draws, so a columnar round consumes the stream exactly like
``k`` engine nodes acting in id order.

Fast paths
----------
``alive=None`` declares "nobody crashed" (protocols pass it instead of an
all-True mask so the per-message liveness gather disappears), and a
reliable oracle short-circuits every hashing and masking step: on a
reliable, crash-free network a delivery charges its counters and returns
without touching per-message memory at all.  The fast paths change *no*
accounting and consume *no* RNG — they skip work whose outcome is known.
"""

from __future__ import annotations

import numpy as np

from ..observability.telemetry import instrumented
from ..simulator.failures import LossOracle
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from .tuning import get_tuning

__all__ = [
    "compact_frontier",
    "deliver_batch",
    "fold_pushes",
    "occurrence_index",
    "probe_exchange",
    "relay_to_roots",
    "sample_uniform",
]


def sample_uniform(
    rng: np.random.Generator,
    n: int,
    size: int,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Sample ``size`` uniform node ids, optionally excluding per-sender ids.

    With ``exclude`` (an array of sender ids, one per sample) the draw uses
    the same rejection-free shift as
    :meth:`~repro.simulator.node.RoundContext.random_node`: draw from
    ``[0, n-1)`` and shift values at or above the excluded id up by one.

    Ids are always *drawn* at full width (so the shared RNG stream is
    identical whatever the storage dtype) and only stored narrow when
    :mod:`repro.substrate.tuning` narrowing is enabled.
    """
    dtype = get_tuning().id_dtype(n)
    if size == 0:
        return np.zeros(0, dtype=dtype)
    if exclude is None:
        targets = rng.integers(0, n, size=size)
        return targets.astype(dtype, copy=False)
    if n <= 1:
        # A single node has nobody else to call; mirror the legacy behaviour
        # of targeting node 0 (the call finds no higher rank and fizzles).
        return np.zeros(size, dtype=dtype)
    targets = rng.integers(0, n - 1, size=size)
    exclude = np.asarray(exclude)
    np.add(targets, 1, out=targets, where=targets >= exclude)
    return targets.astype(dtype, copy=False)


#: peeling bails to the sort path above this duplicate depth — beyond it the
#: batch is adversarially skewed and the stable sort is the better constant.
_PEEL_MAX_DEPTH = 64


def _occurrence_index_sorted(keys: np.ndarray) -> np.ndarray:
    """Stable-sort fallback for sparse / non-integer / deeply skewed keys."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    group_start = np.maximum.accumulate(np.where(new_group, np.arange(keys.size), 0))
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size) - group_start
    return ranks


def occurrence_index(keys: np.ndarray) -> np.ndarray:
    """Occurrence rank of each element among equal keys, in array order.

    ``occurrence_index([5, 3, 5, 5, 2]) == [0, 0, 1, 2, 0]``.  Used to build
    loss-oracle nonces for batches that may repeat a (sender, recipient)
    pair within a round: the engine assigns the same ranks by counting a
    node's sends in arrival order, which equals batch order here.

    The hot-path batches (forwarders of a lossy Phase III relay) carry dense
    integer node ids whose duplicate depth is the balls-in-bins maximum load,
    ``O(log n / log log n)`` w.h.p.  Those run through a linear counting
    scheme: one ``bincount`` over the key range plus one scatter/gather pass
    per duplicate level, so the global stable sort that used to dominate the
    lossy relay is gone.  Sparse, non-integer, or adversarially skewed keys
    fall back to the stable sort.  (The compiled kernel replaces this with a
    true single-pass counting loop.)
    """
    keys = np.asarray(keys)
    size = int(keys.size)
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    if not np.issubdtype(keys.dtype, np.integer):
        return _occurrence_index_sorted(keys)
    lo = int(keys.min())
    span = int(keys.max()) - lo + 1
    if span > 4 * size + 1024:
        return _occurrence_index_sorted(keys)
    slots = (keys.astype(np.int64, copy=False) - lo) if lo else keys.astype(np.int64, copy=False)
    depth = int(np.bincount(slots, minlength=span).max())
    if depth == 1:
        return np.zeros(size, dtype=np.int64)
    if depth > _PEEL_MAX_DEPTH:
        return _occurrence_index_sorted(keys)
    ranks = np.empty(size, dtype=np.int64)
    idx = np.arange(size)
    first = np.empty(span, dtype=np.int64)
    for level in range(depth):
        live = slots[idx]
        # Duplicate fancy-index assignment keeps the *last* write; reversing
        # makes the earliest remaining occurrence of each key win.  Stale
        # entries from earlier levels are never read: a slot is always
        # rewritten in the same pass that reads it.
        first[live[::-1]] = idx[::-1]
        is_first = first[live] == idx
        ranks[idx[is_first]] = level
        idx = idx[~is_first]
        if not idx.size:
            break
    return ranks


@instrumented("substrate.deliver")
def deliver_batch(
    metrics: MetricsCollector,
    oracle: LossOracle,
    kind: str | MessageKind,
    targets: np.ndarray,
    *,
    senders: int | np.ndarray,
    round_index: int | np.ndarray,
    alive: np.ndarray | None = None,
    payload_words: int = 1,
    nonces: np.ndarray | None = None,
    dead_targets: bool = False,
) -> np.ndarray:
    """Deliver one batch of transmissions; returns the delivered mask.

    Exactly mirrors :meth:`Network.deliver`: every attempted transmission is
    charged; a transmission is lost when the link drops it *or* the
    recipient is dead.  Lost transmissions count toward the message
    complexity (the sender spent the call) and toward ``messages_lost``.

    ``senders`` and ``round_index`` identify the transmissions for the loss
    oracle; either may be a scalar shared by the whole batch or an array
    aligned with ``targets``.  ``alive=None`` means every node is alive.
    ``dead_targets=True`` (churn runs only) additionally charges
    transmissions addressed to dead nodes as ``messages_to_dead``, matching
    the engine's per-delivery accounting under an attached churn oracle.
    """
    targets = np.asarray(targets)
    count = int(targets.size)
    if count == 0:
        return np.zeros(0, dtype=bool)
    if dead_targets and alive is not None:
        wasted = count - int(np.count_nonzero(alive[targets]))
        if wasted:
            metrics.record_dead_targets(wasted)
    if oracle.reliable:
        # Reliable link: fate is decided by recipient liveness alone.
        if alive is None:
            metrics.record_messages(kind, count, payload_words=payload_words, lost=0)
            return np.ones(count, dtype=bool)
        delivered = alive[targets]
    else:
        delivered = ~oracle.sample(round_index, kind, senders, targets, nonces)
        if alive is not None:
            delivered &= alive[targets]
    metrics.record_messages(
        kind, count, payload_words=payload_words, lost=count - int(delivered.sum())
    )
    return delivered


@instrumented("substrate.probe_exchange")
def probe_exchange(
    metrics: MetricsCollector,
    oracle: LossOracle,
    targets: np.ndarray,
    *,
    senders: np.ndarray,
    ranks: np.ndarray,
    round_index: int,
    alive: np.ndarray | None = None,
) -> np.ndarray:
    """One fused DRR probing exchange; returns the *found* mask over senders.

    Semantics are exactly the unfused sequence the vectorized DRR loop used
    to spell out: every sender probes its target (PROBE), every delivered
    probe provokes a rank reply (RANK), and a sender *finds* its parent when
    the reply arrives and carries a strictly higher rank.  Charging order —
    the full PROBE batch, then the RANK batch of the arrived probes — is
    preserved, so message accounting is identical to the engine's.

    The fusion exists for the backends' benefit: the whole round is one
    mask-then-compare pass over the batch (no ``senders[mask]``
    compactions between the two deliveries), and a sharded kernel can run
    it slice-local because every per-message fate and the rank comparison
    depend only on that message's own identity.
    """
    targets = np.asarray(targets)
    count = int(targets.size)
    if count == 0:
        return np.zeros(0, dtype=bool)
    if oracle.reliable and alive is None:
        # Everything arrives: k probes, k replies, zero losses.
        metrics.record_messages(MessageKind.PROBE, count, payload_words=1, lost=0)
        metrics.record_messages(MessageKind.RANK, count, payload_words=1, lost=0)
        return ranks[targets] > ranks[senders]
    probe_ok = deliver_batch(
        metrics, oracle, MessageKind.PROBE, targets,
        senders=senders, round_index=round_index, alive=alive,
    )
    probers = senders[probe_ok]
    responders = targets[probe_ok]
    reply_ok = deliver_batch(
        metrics, oracle, MessageKind.RANK, probers,
        senders=responders, round_index=round_index, alive=alive,
    )
    found_sub = reply_ok & (ranks[responders] > ranks[probers])
    found = np.zeros(count, dtype=bool)
    found[np.flatnonzero(probe_ok)[found_sub]] = True
    return found


@instrumented("substrate.relay")
def relay_to_roots(
    metrics: MetricsCollector,
    oracle: LossOracle,
    targets: np.ndarray,
    *,
    senders: np.ndarray,
    round_index: int,
    kind: str | MessageKind,
    position: np.ndarray,
    root_of: np.ndarray,
    alive: np.ndarray | None = None,
    payload_words: int = 1,
    dead_targets: bool = False,
) -> np.ndarray:
    """Resolve uniform push targets to receiving root positions (-1 = dropped).

    The Phase III relay of the paper: a message addressed to a uniform node
    either lands on a root directly or is forwarded by the node to its root
    (one extra FORWARD transmission, charged only when the first hop
    arrived and the node knows its root's address from Phase II).  Accounts
    for first-hop loss, dead targets, unknown roots, second-hop loss, and
    dead roots.  Charges the first-hop batch under ``kind`` (GOSSIP vs
    INQUIRY, depending on the procedure) and the forwarding hop under
    FORWARD, both with engine-identical lost-message accounting.

    A forwarder relaying several same-round pushes sends several FORWARD
    messages to the same root; their oracle nonces are the forwarder's send
    ranks in push order, exactly how the engine's forwarder node numbers
    its sends in arrival order.  (On a reliable network the nonce ranks are
    never computed — fates are known — which removes the sort that used to
    dominate the reliable gossip rounds.)

    Parameters
    ----------
    senders:
        Originating root node ids, aligned with ``targets``.
    round_index:
        The round in which the pushes (and their forwards) are sent.
    position:
        ``position[node]`` is the index of ``node`` in the caller's roots
        array, or ``-1`` for non-roots.
    root_of:
        Phase II forwarding table (-1 when the node never learned its root).
    alive:
        Liveness mask, or ``None`` when nobody crashed.
    """
    targets = np.asarray(targets)
    if oracle.reliable and alive is None:
        return _relay_reliable(
            metrics, kind, targets, position, root_of, payload_words
        )
    if dead_targets and alive is not None:
        wasted = int(targets.size) - int(np.count_nonzero(alive[targets]))
        if wasted:
            metrics.record_dead_targets(wasted)
    receiver = np.full(targets.shape, -1, dtype=np.int64)
    first_lost = oracle.sample(round_index, kind, senders, targets)
    first_hop_ok = ~first_lost if alive is None else ~first_lost & alive[targets]
    metrics.record_messages(
        kind,
        int(targets.size),
        payload_words=payload_words,
        lost=int(targets.size) - int(first_hop_ok.sum()),
    )
    is_root_target = position[targets] >= 0
    # direct hits on a root
    direct = first_hop_ok & is_root_target
    receiver[direct] = position[targets[direct]]
    # forwarded hits through a non-root that knows its root (nodes whose
    # Phase II broadcast was lost silently drop, sending nothing)
    needs_forward = np.flatnonzero(first_hop_ok & ~is_root_target)
    forwarders = targets[needs_forward]
    knows_root = root_of[forwarders] >= 0
    send_idx = needs_forward[knows_root]
    if send_idx.size:
        hop_from = targets[send_idx]
        hop_to = root_of[hop_from]
        if dead_targets and alive is not None:
            wasted = int(send_idx.size) - int(np.count_nonzero(alive[hop_to]))
            if wasted:
                metrics.record_dead_targets(wasted)
        if oracle.reliable:
            arrived = alive[hop_to] if alive is not None else np.ones(send_idx.size, dtype=bool)
        else:
            second_lost = oracle.sample(
                round_index,
                MessageKind.FORWARD,
                hop_from,
                hop_to,
                nonces=occurrence_index(hop_from),
            )
            arrived = ~second_lost if alive is None else ~second_lost & alive[hop_to]
        metrics.record_messages(
            MessageKind.FORWARD,
            int(send_idx.size),
            payload_words=payload_words,
            lost=int(send_idx.size) - int(arrived.sum()),
        )
        receiver[send_idx[arrived]] = position[hop_to[arrived]]
    return receiver


def compact_frontier(active: np.ndarray, drop: np.ndarray) -> np.ndarray:
    """Remove the dropped senders from a compacted frontier, keeping order.

    ``active[~drop]`` spelled as a kernel primitive so backends can fuse the
    mask inversion and the gather (the vectorized form materialises ``~drop``
    every DRR round; the compiled kernel writes survivors in one pass).
    """
    return active[~drop]


@instrumented("substrate.fold_pushes")
def fold_pushes(
    receiver: np.ndarray,
    send_s: np.ndarray,
    send_g: np.ndarray,
    s: np.ndarray,
    g: np.ndarray,
) -> None:
    """Fold one gossip round's delivered pushes into ``s``/``g`` in place.

    ``receiver`` holds the landing position of each push (-1 = dropped).
    bincount is the fused scatter-add (one C pass per round): it pre-sums
    the round's contributions per position *in batch order* before folding
    into the accumulators, and every backend reproduces exactly that
    summation order so fixed-seed estimates stay bit-identical.
    """
    delivered = receiver >= 0
    if not delivered.any():
        return
    landed = receiver[delivered]
    m = s.size
    s += np.bincount(landed, weights=send_s[delivered], minlength=m).astype(
        s.dtype, copy=False
    )
    g += np.bincount(landed, weights=send_g[delivered], minlength=m).astype(
        g.dtype, copy=False
    )


def _relay_reliable(
    metrics: MetricsCollector,
    kind: str | MessageKind,
    targets: np.ndarray,
    position: np.ndarray,
    root_of: np.ndarray,
    payload_words: int,
) -> np.ndarray:
    """The reliable, crash-free relay: pure table lookups, zero hashing.

    Every first hop arrives; a push landing on a non-root is forwarded iff
    the node knows its root, and every forward arrives.  Message accounting
    is exactly the general path's with all fates "delivered".
    """
    receiver = position[targets].astype(np.int64, copy=False)
    metrics.record_messages(kind, int(targets.size), payload_words=payload_words, lost=0)
    nonroot = np.flatnonzero(receiver < 0)
    if nonroot.size:
        hop_root = root_of[targets[nonroot]]
        knows = hop_root >= 0
        send_idx = nonroot[knows]
        if send_idx.size:
            metrics.record_messages(
                MessageKind.FORWARD,
                int(send_idx.size),
                payload_words=payload_words,
                lost=0,
            )
            receiver[send_idx] = position[hop_root[knows]]
    return receiver
