"""Columnar delivery primitives shared by every vectorized protocol.

These three functions are the vectorized counterpart of
:meth:`repro.simulator.network.Network.deliver` and
:meth:`repro.simulator.node.RoundContext.random_node`:

* :func:`deliver_batch` applies the failure model to one batch of directed
  transmissions and charges them to the metrics collector — including the
  lost-message accounting that the message-level engine applies, so both
  backends report identical ``messages`` *and* ``messages_lost`` on the
  same seeds.
* :func:`relay_to_roots` is the two-hop "push to a uniform node, the node
  forwards to its root" relay that Gossip-max, Gossip-ave, and Data-spread
  all use (it used to be hand-rolled separately in each of them).
* :func:`sample_uniform` draws uniform targets in the exact order per-node
  engine protocols draw them, which is what makes the two backends
  bit-compatible on reliable networks.

Both the loss sampling (`FailureModel.sample_losses`, one ``rng.random(k)``)
and the target sampling (one ``rng.integers(..., size=k)``) produce the same
variates as ``k`` sequential scalar draws from the same generator state, so
a columnar round consumes the RNG stream exactly like ``k`` engine nodes
acting in id order.
"""

from __future__ import annotations

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector

__all__ = ["deliver_batch", "relay_to_roots", "sample_uniform"]


def sample_uniform(
    rng: np.random.Generator,
    n: int,
    size: int,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Sample ``size`` uniform node ids, optionally excluding per-sender ids.

    With ``exclude`` (an array of sender ids, one per sample) the draw uses
    the same rejection-free shift as
    :meth:`~repro.simulator.node.RoundContext.random_node`: draw from
    ``[0, n-1)`` and shift values at or above the excluded id up by one.
    """
    if size == 0:
        return np.zeros(0, dtype=np.int64)
    if exclude is None:
        return rng.integers(0, n, size=size)
    if n <= 1:
        # A single node has nobody else to call; mirror the legacy behaviour
        # of targeting node 0 (the call finds no higher rank and fizzles).
        return np.zeros(size, dtype=np.int64)
    targets = rng.integers(0, n - 1, size=size)
    exclude = np.asarray(exclude, dtype=np.int64)
    return np.where(targets >= exclude, targets + 1, targets)


def deliver_batch(
    metrics: MetricsCollector,
    failure_model: FailureModel,
    rng: np.random.Generator,
    kind: str | MessageKind,
    targets: np.ndarray,
    *,
    alive: np.ndarray | None = None,
    payload_words: int = 1,
) -> np.ndarray:
    """Deliver one batch of transmissions; returns the delivered mask.

    Exactly mirrors :meth:`Network.deliver`: every attempted transmission is
    charged; a transmission is lost when the link drops it *or* the
    recipient is dead.  Lost transmissions count toward the message
    complexity (the sender spent the call) and toward ``messages_lost``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    count = int(targets.size)
    if count == 0:
        return np.zeros(0, dtype=bool)
    delivered = ~failure_model.sample_losses(count, rng)
    if alive is not None:
        delivered &= alive[targets]
    metrics.record_messages(
        kind, count, payload_words=payload_words, lost=count - int(delivered.sum())
    )
    return delivered


def relay_to_roots(
    metrics: MetricsCollector,
    failure_model: FailureModel,
    rng: np.random.Generator,
    targets: np.ndarray,
    *,
    kind: str | MessageKind,
    position: np.ndarray,
    root_of: np.ndarray,
    alive: np.ndarray,
    payload_words: int = 1,
) -> np.ndarray:
    """Resolve uniform push targets to receiving root positions (-1 = dropped).

    The Phase III relay of the paper: a message addressed to a uniform node
    either lands on a root directly or is forwarded by the node to its root
    (one extra FORWARD transmission, charged only when the first hop
    arrived and the node knows its root's address from Phase II).  Accounts
    for first-hop loss, dead targets, unknown roots, second-hop loss, and
    dead roots.  Charges the first-hop batch under ``kind`` (GOSSIP vs
    INQUIRY, depending on the procedure) and the forwarding hop under
    FORWARD, both with engine-identical lost-message accounting.

    Parameters
    ----------
    position:
        ``position[node]`` is the index of ``node`` in the caller's roots
        array, or ``-1`` for non-roots.
    root_of:
        Phase II forwarding table (-1 when the node never learned its root).
    """
    targets = np.asarray(targets, dtype=np.int64)
    receiver = np.full(targets.shape, -1, dtype=np.int64)
    first_hop_ok = ~failure_model.sample_losses(targets.size, rng) & alive[targets]
    metrics.record_messages(
        kind,
        int(targets.size),
        payload_words=payload_words,
        lost=int(targets.size) - int(first_hop_ok.sum()),
    )
    is_root_target = position[targets] >= 0
    # direct hits on a root
    direct = first_hop_ok & is_root_target
    receiver[direct] = position[targets[direct]]
    # forwarded hits through a non-root
    needs_forward = first_hop_ok & ~is_root_target
    forward_targets = root_of[targets[needs_forward]]
    knows_root = forward_targets >= 0
    second_hop_ok = ~failure_model.sample_losses(int(needs_forward.sum()), rng)
    ok = knows_root & second_hop_ok
    ok_roots = forward_targets[ok]
    ok_alive = alive[ok_roots]
    if knows_root.any():
        delivered_forwards = int(ok_alive.sum())
        metrics.record_messages(
            MessageKind.FORWARD,
            int(knows_root.sum()),
            payload_words=payload_words,
            lost=int(knows_root.sum()) - delivered_forwards,
        )
    idx = np.flatnonzero(needs_forward)[ok][ok_alive]
    receiver[idx] = position[forward_targets[ok][ok_alive]]
    return receiver
