"""Backend-selectable execution substrate.

One simulation kernel, two interchangeable backends:

* ``vectorized`` — columnar NumPy execution; an entire round's calls and
  replies are batched as arrays.  Scales to millions of nodes.
* ``engine`` — per-node message-level execution on the
  :class:`~repro.simulator.engine.SynchronousEngine`.  The fidelity
  reference.

Every protocol in :mod:`repro.core` and :mod:`repro.baselines` takes a
``backend`` argument (or, for the DRR-gossip pipelines, reads it from
:class:`~repro.core.drr_gossip.DRRGossipConfig`) and dispatches through
:func:`run_on`.  See :mod:`repro.substrate.kernel` for the contract between
the backends and ``tests/test_substrate.py`` for the equivalence guarantees.
"""

from .delivery import deliver_batch, relay_to_roots, sample_uniform
from .kernel import (
    BACKENDS,
    DEFAULT_BACKEND,
    EngineKernel,
    Kernel,
    VectorizedKernel,
    available_backends,
    get_kernel,
    normalize_backend,
    run_on,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "EngineKernel",
    "Kernel",
    "VectorizedKernel",
    "available_backends",
    "deliver_batch",
    "get_kernel",
    "normalize_backend",
    "relay_to_roots",
    "run_on",
    "sample_uniform",
]
