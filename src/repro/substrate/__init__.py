"""Backend-selectable execution substrate.

One simulation kernel, four interchangeable backends:

* ``vectorized`` — columnar NumPy execution; an entire round's calls and
  replies are batched as arrays.  Scales to millions of nodes.
* ``sharded`` — the columnar kernel fanned out over a pool of worker
  processes on ``multiprocessing.shared_memory`` arrays (one barrier per
  round).  Targets ``n >= 10^7``; configure the shard count via
  :func:`repro.substrate.sharded.configure`, ``REPRO_SHARDS``, or
  ``RunSpec.backend_options``.
* ``compiled`` — the columnar kernel with numba-jitted hot primitives
  (:mod:`repro.substrate.compiled`).  Targets ``n`` up to ``10^8``;
  requires the optional numba extra (``pip install .[compiled]``) and
  deregisters itself with an explanatory error when numba is missing.
  Composes with sharding via ``backend_options={"shards": P}``.
* ``engine`` — per-node message-level execution on the
  :class:`~repro.simulator.engine.SynchronousEngine`.  The fidelity
  reference.

Every protocol in :mod:`repro.core` and :mod:`repro.baselines` takes a
``backend`` argument (or, for the DRR-gossip pipelines, reads it from
:class:`~repro.core.drr_gossip.DRRGossipConfig`) and dispatches through
:func:`run_on`.  Topology-bound workloads — Local-DRR's neighbour broadcast
and batched Chord lookups — go through the topology kernel
(:mod:`repro.substrate.topology_kernel`) under the same contract.  See
:mod:`repro.substrate.kernel` for the contract between the backends and
``tests/test_substrate.py`` for the equivalence guarantees, which hold on
reliable *and* lossy networks (loss fates are identity-keyed through
:class:`~repro.simulator.failures.LossOracle`, never draw-order-dependent,
and never shard-boundary-dependent).
"""

from .delivery import (
    compact_frontier,
    deliver_batch,
    fold_pushes,
    occurrence_index,
    probe_exchange,
    relay_to_roots,
    sample_uniform,
)
from .topology_kernel import (
    ChordLookupBatch,
    ChordLookupNode,
    neighbor_broadcast,
    run_chord_lookups,
)
from .kernel import (
    BACKENDS,
    DEFAULT_BACKEND,
    UNAVAILABLE_BACKENDS,
    EngineKernel,
    Kernel,
    VectorizedKernel,
    available_backends,
    get_kernel,
    normalize_backend,
    run_on,
)
from .sharded import ShardedKernel, shutdown_pools
from .compiled import NUMBA_AVAILABLE, CompiledKernel
from . import tuning

__all__ = [
    "BACKENDS",
    "ChordLookupBatch",
    "ChordLookupNode",
    "CompiledKernel",
    "DEFAULT_BACKEND",
    "EngineKernel",
    "Kernel",
    "NUMBA_AVAILABLE",
    "ShardedKernel",
    "UNAVAILABLE_BACKENDS",
    "VectorizedKernel",
    "available_backends",
    "compact_frontier",
    "deliver_batch",
    "fold_pushes",
    "get_kernel",
    "neighbor_broadcast",
    "occurrence_index",
    "probe_exchange",
    "normalize_backend",
    "relay_to_roots",
    "run_chord_lookups",
    "run_on",
    "sample_uniform",
    "shutdown_pools",
    "tuning",
]
