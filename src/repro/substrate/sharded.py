"""The ``sharded`` kernel: columnar rounds fanned out over worker processes.

This is the third execution substrate (ROADMAP: "a multiprocessing-sharded
columnar kernel for n >= 10^7").  It subclasses :class:`VectorizedKernel`,
so every protocol reaches it through the existing ``backend=`` seam with
zero call-site changes, and it inherits the columnar implementations as a
correct fallback for everything it does not accelerate.

Architecture
------------
* A :class:`ShardPool` owns ``P`` worker processes and a set of
  ``multiprocessing.shared_memory`` segments.  Per-node *state* arrays that
  a round reads (liveness, ranks, the Phase II forwarding tables) are
  **mirrored** into shared memory once per run and partitioned into ``P``
  contiguous shards; per-round *message* arrays (targets, senders, nonces)
  are staged into a reusable scratch arena.  Only those index/payload
  arrays ever move — node state is never pickled.
* Each round's batch is split into ``P`` contiguous slices; every worker
  runs its local slice columnar-style (the same NumPy passes the
  vectorized kernel runs) and the parent joins them with **one barrier per
  round** before charging metrics.  The *lossy* Phase III relay is the one
  two-barrier op: slice-local first-hop fates plus per-slice
  ``occurrence_index`` partials, an exclusive-scan merge of per-key
  forward counts across slice boundaries in the parent (so every FORWARD
  nonce equals its batch-global occurrence rank), then slice-local
  second-hop fates.
* Work below ``min_batch`` runs inline on the inherited vectorized path.

Equivalence
-----------
The sharded kernel computes the *same pure functions* over the same
arrays: target sampling stays on the shared RNG stream in the parent (so
the stream is consumed identically), per-message fates come from the
identity-keyed :class:`~repro.simulator.failures.LossOracle` (slice-local
by construction), and metrics are charged once, in the parent, from the
summed slice counts.  ``tests/test_substrate.py`` asserts three-way
equivalence (engine / vectorized / sharded) for every protocol under
reliable, lossy, and lossy+crash failure models.

Configuration
-------------
Shard count resolves, in order: an explicit :meth:`ShardedKernel.options`
context (what ``RunSpec.backend_options = {"shards": 4}`` applies),
:func:`configure`, the ``REPRO_SHARDS`` environment variable, then
``min(4, cpu_count)``.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import time
import traceback
import weakref
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from multiprocessing import util as _mp_util

import numpy as np

from ..observability.telemetry import current_telemetry
from ..simulator.failures import LossOracle
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from .delivery import occurrence_index
from .kernel import BACKENDS, VectorizedKernel

__all__ = ["ShardedKernel", "ShardPool", "configure", "default_shards", "shutdown_pools"]

_SEGMENT_PREFIX = "reprosub"

#: default minimum batch size routed to the pool (smaller batches run
#: inline: the dispatch barrier costs more than the work below this).
DEFAULT_MIN_BATCH = 65_536


def default_shards() -> int:
    """Shard count used when neither the spec nor :func:`configure` names one."""
    env = os.environ.get("REPRO_SHARDS", "").strip()
    if env:
        count = int(env)
        if count < 1:
            raise ValueError(f"REPRO_SHARDS must be >= 1, got {count}")
        return count
    return max(1, min(4, os.cpu_count() or 1))


def _attach(name: str) -> _shm.SharedMemory:
    """Attach an existing segment in a worker.

    Workers are spawned children, so they share the parent's resource
    tracker process: the attach-time ``register`` Python <= 3.12 performs
    is a set no-op there, and the parent's ``unlink`` performs the single
    matching ``unregister``.  Workers therefore must *not* unregister —
    doing so would strip the parent's registration and turn the parent's
    unlink into a tracker error.  Net effect: a clean run leaves zero
    tracker entries (no "leaked shared_memory" warnings), and if the
    parent dies without cleanup the tracker still reclaims the segments.
    """
    return _shm.SharedMemory(name=name)


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
class _WorkerState:
    """Per-worker cache of attached segments (arena + mirrors)."""

    def __init__(self) -> None:
        self.arena: _shm.SharedMemory | None = None
        self.arena_name: str | None = None
        self.mirrors: dict[str, _shm.SharedMemory] = {}

    def get_arena(self, name: str) -> _shm.SharedMemory:
        if self.arena_name != name:
            if self.arena is not None:
                self.arena.close()
            self.arena = _attach(name)
            self.arena_name = name
        return self.arena

    def column(self, name: str, spec: tuple[int, str, int]) -> np.ndarray:
        offset, dtype, count = spec
        arena = self.get_arena(name)
        return np.frombuffer(arena.buf, dtype=np.dtype(dtype), count=count, offset=offset)

    def mirror(self, spec: tuple[str, str, int]) -> np.ndarray:
        name, dtype, count = spec
        segment = self.mirrors.get(name)
        if segment is None:
            segment = _attach(name)
            self.mirrors[name] = segment
        return np.frombuffer(segment.buf, dtype=np.dtype(dtype), count=count)

    def drop_mirrors(self, names: list[str]) -> None:
        for name in names:
            segment = self.mirrors.pop(name, None)
            if segment is not None:
                segment.close()

    def close(self) -> None:
        if self.arena is not None:
            self.arena.close()
            self.arena = None
        for segment in self.mirrors.values():
            segment.close()
        self.mirrors.clear()


def _op_fates(task, state: _WorkerState, lo: int, hi: int):
    """Generic delivery fates for one slice: oracle hash + liveness gather."""
    targets = state.column(task["arena"], task["targets"])[lo:hi]
    oracle = LossOracle(task["loss_probability"], task["key"])
    senders = task["senders"]
    if not np.isscalar(senders):
        senders = state.column(task["arena"], senders)[lo:hi]
    rounds = task["round_index"]
    if not np.isscalar(rounds):
        rounds = state.column(task["arena"], rounds)[lo:hi]
    nonces = task.get("nonces")
    if nonces is not None:
        nonces = state.column(task["arena"], nonces)[lo:hi]
    if oracle.reliable:
        delivered = np.ones(hi - lo, dtype=bool)
    else:
        delivered = ~oracle.sample(rounds, task["kind"], senders, targets, nonces)
    if task.get("alive") is not None:
        delivered &= state.mirror(task["alive"])[targets]
    state.column(task["arena"], task["out"])[lo:hi] = delivered
    return int(delivered.sum())


def _op_probe(task, state: _WorkerState, lo: int, hi: int):
    """One fused DRR probe round for a slice (PROBE fate, RANK fate, compare)."""
    targets = state.column(task["arena"], task["targets"])[lo:hi]
    senders = state.column(task["arena"], task["senders"])[lo:hi]
    ranks = state.mirror(task["ranks"])
    oracle = LossOracle(task["loss_probability"], task["key"])
    alive = state.mirror(task["alive"]) if task.get("alive") is not None else None
    r = task["round_index"]
    if oracle.reliable:
        probe_ok = np.ones(hi - lo, dtype=bool) if alive is None else alive[targets]
    else:
        probe_ok = ~oracle.sample(r, MessageKind.PROBE, senders, targets)
        if alive is not None:
            probe_ok &= alive[targets]
    probers = senders[probe_ok]
    responders = targets[probe_ok]
    if oracle.reliable:
        reply_ok = (
            np.ones(probers.size, dtype=bool) if alive is None else alive[probers]
        )
    else:
        reply_ok = ~oracle.sample(r, MessageKind.RANK, responders, probers)
        if alive is not None:
            reply_ok &= alive[probers]
    found_sub = reply_ok & (ranks[responders] > ranks[probers])
    found = np.zeros(hi - lo, dtype=bool)
    found[np.flatnonzero(probe_ok)[found_sub]] = True
    state.column(task["arena"], task["out"])[lo:hi] = found
    return int(probe_ok.sum()), int(reply_ok.sum())


def _op_relay_reliable(task, state: _WorkerState, lo: int, hi: int):
    """The reliable two-hop relay for a slice (crash-aware, hash-free)."""
    targets = state.column(task["arena"], task["targets"])[lo:hi]
    position = state.mirror(task["position"])
    root_of = state.mirror(task["root_of"])
    alive = state.mirror(task["alive"]) if task.get("alive") is not None else None
    receiver = position[targets].astype(np.int64, copy=False)
    if alive is not None:
        first_ok = alive[targets]
        receiver = np.where(first_ok, receiver, np.int64(-2))  # -2: hop died
    else:
        first_ok = None
    nonroot = np.flatnonzero(receiver == -1)
    forwards = 0
    forward_arrived = 0
    if nonroot.size:
        hop_root = root_of[targets[nonroot]]
        knows = hop_root >= 0
        send_idx = nonroot[knows]
        forwards = int(send_idx.size)
        if forwards:
            hop_to = hop_root[knows]
            if alive is not None:
                ok = alive[hop_to]
                receiver[send_idx[ok]] = position[hop_to[ok]]
                forward_arrived = int(ok.sum())
            else:
                receiver[send_idx] = position[hop_to]
                forward_arrived = forwards
    receiver[receiver == -2] = -1
    out = state.column(task["arena"], task["out"])[lo:hi]
    out[:] = receiver
    first_count = int(first_ok.sum()) if first_ok is not None else hi - lo
    return first_count, forwards, forward_arrived


def _op_relay_lossy_first(task, state: _WorkerState, lo: int, hi: int):
    """First hop of the lossy two-hop relay for a slice.

    Computes slice-local first-hop fates, resolves direct root hits into the
    ``out`` (receiver) column, and marks the pushes that need a FORWARD in
    the ``fwd`` column (forwarder node id, -1 otherwise).  The ``nonce``
    column receives the *slice-local* occurrence rank of each forward; the
    parent later adds the exclusive-scan offset of earlier slices so every
    nonce becomes the batch-global occurrence rank the engine assigns.
    Returns ``(first_ok_count, sorted unique forwarder ids, their counts)``
    — the per-slice partials of the cross-shard merge.
    """
    targets = state.column(task["arena"], task["targets"])[lo:hi]
    senders = state.column(task["arena"], task["senders"])[lo:hi]
    position = state.mirror(task["position"])
    root_of = state.mirror(task["root_of"])
    alive = state.mirror(task["alive"]) if task.get("alive") is not None else None
    oracle = LossOracle(task["loss_probability"], task["key"])
    first_lost = oracle.sample(task["round_index"], task["kind"], senders, targets)
    first_ok = ~first_lost if alive is None else ~first_lost & alive[targets]
    receiver = np.full(hi - lo, -1, dtype=np.int64)
    is_root_target = position[targets] >= 0
    direct = first_ok & is_root_target
    receiver[direct] = position[targets[direct]]
    fwd = np.full(hi - lo, -1, dtype=np.int64)
    local_rank = np.zeros(hi - lo, dtype=np.int64)
    needs_forward = np.flatnonzero(first_ok & ~is_root_target)
    forwarders = targets[needs_forward]
    knows_root = root_of[forwarders] >= 0
    send_idx = needs_forward[knows_root]
    if send_idx.size:
        hop_from = np.asarray(targets[send_idx], dtype=np.int64)
        fwd[send_idx] = hop_from
        local_rank[send_idx] = occurrence_index(hop_from)
        unique_keys, key_counts = np.unique(hop_from, return_counts=True)
    else:
        unique_keys = np.zeros(0, dtype=np.int64)
        key_counts = np.zeros(0, dtype=np.int64)
    state.column(task["arena"], task["out"])[lo:hi] = receiver
    state.column(task["arena"], task["fwd"])[lo:hi] = fwd
    state.column(task["arena"], task["nonce"])[lo:hi] = local_rank
    return int(first_ok.sum()), unique_keys, key_counts.astype(np.int64, copy=False)


def _op_relay_lossy_second(task, state: _WorkerState, lo: int, hi: int):
    """Forward hop of the lossy relay for a slice (nonces already merged)."""
    fwd = state.column(task["arena"], task["fwd"])[lo:hi]
    nonces = state.column(task["arena"], task["nonce"])[lo:hi]
    receiver = state.column(task["arena"], task["out"])[lo:hi]
    position = state.mirror(task["position"])
    root_of = state.mirror(task["root_of"])
    alive = state.mirror(task["alive"]) if task.get("alive") is not None else None
    oracle = LossOracle(task["loss_probability"], task["key"])
    send_idx = np.flatnonzero(fwd >= 0)
    forwards = int(send_idx.size)
    if not forwards:
        return 0, 0
    hop_from = fwd[send_idx]
    hop_to = root_of[hop_from]
    second_lost = oracle.sample(
        task["round_index"], MessageKind.FORWARD, hop_from, hop_to,
        nonces=nonces[send_idx],
    )
    arrived = ~second_lost if alive is None else ~second_lost & alive[hop_to]
    receiver[send_idx[arrived]] = position[hop_to[arrived]]
    return forwards, int(arrived.sum())


_OPS = {
    "fates": _op_fates,
    "probe": _op_probe,
    "relay_reliable": _op_relay_reliable,
    "relay_lossy_first": _op_relay_lossy_first,
    "relay_lossy_second": _op_relay_lossy_second,
    "ping": lambda task, state, lo, hi: None,
}


def _merge_rank_offsets(
    key_lists: list[np.ndarray], count_lists: list[np.ndarray]
) -> list[np.ndarray]:
    """Exclusive scan of per-key forward counts across slice boundaries.

    ``key_lists[p]`` / ``count_lists[p]`` are slice ``p``'s sorted unique
    forwarder ids and their forward counts.  Returns, per slice, the number
    of forwards each of its keys performed in *earlier* slices — exactly the
    offset that turns a slice-local occurrence rank into the batch-global
    one (slices are contiguous, so batch order is slice order).
    """
    sizes = [int(keys.size) for keys in key_lists]
    total = sum(sizes)
    if total == 0:
        return [np.zeros(0, dtype=np.int64) for _ in key_lists]
    cat_keys = np.concatenate(key_lists)
    cat_counts = np.concatenate(count_lists)
    # Stable sort by key: entries of one key stay in slice order, so the
    # exclusive cumsum within each group counts earlier slices only.
    order = np.argsort(cat_keys, kind="stable")
    sorted_keys = cat_keys[order]
    sorted_counts = cat_counts[order]
    exclusive = np.cumsum(sorted_counts) - sorted_counts
    new_group = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    group_base = np.maximum.accumulate(np.where(new_group, exclusive, 0))
    within = exclusive - group_base
    offsets = np.empty(total, dtype=np.int64)
    offsets[order] = within
    out: list[np.ndarray] = []
    start = 0
    for size in sizes:
        out.append(offsets[start:start + size])
        start += size
    return out


def _worker_main(conn, worker_index: int, shards: int) -> None:
    """Worker loop: receive a task, run its slice, barrier via the reply."""
    state = _WorkerState()
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            try:
                state.drop_mirrors(task.get("drop_mirrors", ()))
                count = task.get("count", 0)
                lo = count * worker_index // shards
                hi = count * (worker_index + 1) // shards
                started = time.perf_counter()
                result = _OPS[task["op"]](task, state, lo, hi)
                busy_s = time.perf_counter() - started
                conn.send(("ok", result, busy_s))
            except Exception:  # pragma: no cover - surfaced in the parent
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        state.close()
        conn.close()


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class ShardWorkerError(RuntimeError):
    """A shard worker failed (crashed or raised); the pool has been torn down."""


class ShardPool:
    """``P`` worker processes plus the shared-memory segments they compute on."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = int(shards)
        #: pid that owns the workers and segments; a forked child inherits
        #: this object but must never drive or tear down the parent's pool
        self._owner_pid = os.getpid()
        _ensure_cleanup_hooks()
        self._ctx = get_context("spawn")
        self._serial = 0
        self._arena: _shm.SharedMemory | None = None
        self._retired: list[_shm.SharedMemory] = []
        #: id(array) -> (weakref, segment, dtype str, count); guarded by the
        #: weakref: an id can only be reused after the old array died, and
        #: its death removes the stale entry first.
        self._mirrors: dict[int, tuple] = {}
        self._dead_mirror_names: list[str] = []
        self._closed = False
        self._workers = []
        self._conns = []
        for index in range(self.shards):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, index, self.shards),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------ #
    # shared-memory management
    # ------------------------------------------------------------------ #
    def _new_segment(self, nbytes: int) -> _shm.SharedMemory:
        self._serial += 1
        name = f"{_SEGMENT_PREFIX}_{os.getpid()}_{id(self):x}_{self._serial}"
        return _shm.SharedMemory(create=True, name=name, size=max(16, nbytes))

    def _ensure_arena(self, nbytes: int) -> _shm.SharedMemory:
        if self._arena is None or self._arena.size < nbytes:
            if self._arena is not None:
                self._retired.append(self._arena)
            size = 1 << max(16, int(nbytes - 1).bit_length())
            self._arena = self._new_segment(size)
        return self._arena

    def _release_retired(self) -> None:
        # Safe after a barrier: every worker has re-attached the new arena.
        for segment in self._retired:
            segment.close()
            segment.unlink()
        self._retired.clear()

    def mirror(self, array: np.ndarray) -> tuple[str, str, int]:
        """Mirror a read-only per-node state array into shared memory.

        The copy happens once per array object; rounds reuse the mirror.
        Arrays passed here must not be mutated for the duration of the run
        (true of every rank vector / forwarding table the protocols build —
        they are fixed in the shared preamble) unless every mutation is
        followed by :meth:`update_mirror` before the next pooled call, which
        is how churn protocols keep the liveness mirror current.

        The cache key and lifetime guard are the *caller's* array object —
        never the contiguous staging copy, whose only reference would die
        on return and unlink the segment before the workers attach.
        """
        key = id(array)
        cached = self._mirrors.get(key)
        if cached is not None and cached[0]() is not None:
            _, segment, dtype, count = cached
            return segment.name, dtype, count
        contiguous = np.ascontiguousarray(array)
        segment = self._new_segment(contiguous.nbytes)
        view = np.frombuffer(segment.buf, dtype=contiguous.dtype, count=contiguous.size)
        view[:] = contiguous.ravel()
        del view
        tel = current_telemetry()
        if tel.enabled:
            tel.count("sharded.mirror_bytes", int(contiguous.nbytes))

        def _on_death(_ref, pool=weakref.ref(self), name=segment.name, k=key):
            live = pool()
            if live is not None:
                live._forget_mirror(k, name)

        ref = weakref.ref(array, _on_death)
        self._mirrors[key] = (ref, segment, contiguous.dtype.str, int(contiguous.size))
        return segment.name, contiguous.dtype.str, int(contiguous.size)

    def update_mirror(self, array: np.ndarray) -> bool:
        """Rewrite a cached mirror's contents from the (mutated) source array.

        Mid-run churn mutates the liveness mask in place; workers read the
        shared-memory mirror, so the fresh contents must be copied in before
        the next pooled call.  Shared memory makes this a parent-side
        ``memcpy`` — no IPC, no re-attach.  Returns ``False`` when ``array``
        was never mirrored (nothing to refresh; the next :meth:`mirror` call
        copies current contents anyway).
        """
        cached = self._mirrors.get(id(array))
        if cached is None or cached[0]() is None:
            return False
        _, segment, dtype, count = cached
        view = np.frombuffer(segment.buf, dtype=dtype, count=count)
        view[:] = np.ascontiguousarray(array).ravel()
        del view
        return True

    def _forget_mirror(self, key: int, name: str) -> None:
        if os.getpid() != self._owner_pid:
            # A forked child GC'ing its copy of a mirrored array must not
            # unlink the parent's live segment.
            return
        entry = self._mirrors.pop(key, None)
        if entry is not None and not self._closed:
            entry[1].close()
            entry[1].unlink()
            self._dead_mirror_names.append(name)

    # ------------------------------------------------------------------ #
    # task execution
    # ------------------------------------------------------------------ #
    def stage(self, layout: dict[str, np.ndarray]) -> tuple[str, dict[str, tuple]]:
        """Copy per-round columns into the arena; returns (name, col specs)."""
        offset = 0
        offsets: dict[str, int] = {}
        for name, array in layout.items():
            offset = (offset + 63) & ~63
            offsets[name] = offset
            offset += int(array.nbytes)
        arena = self._ensure_arena(offset)
        tel = current_telemetry()
        if tel.enabled:
            tel.gauge_max("sharded.arena_bytes", arena.size)
        specs: dict[str, tuple[int, str, int]] = {}
        for name, array in layout.items():
            off = offsets[name]
            specs[name] = (off, array.dtype.str, int(array.size))
            view = np.frombuffer(arena.buf, dtype=array.dtype, count=array.size, offset=off)
            view[:] = array
            del view
        return arena.name, specs

    def out_column(self, arena_name: str, spec: tuple[int, str, int]) -> np.ndarray:
        offset, dtype, count = spec
        assert self._arena is not None and self._arena.name == arena_name
        return np.frombuffer(self._arena.buf, dtype=np.dtype(dtype), count=count, offset=offset)

    def run(self, task: dict) -> list:
        """Broadcast one task, wait for the per-round barrier, join results."""
        if self._closed:
            raise ShardWorkerError("shard pool is closed")
        if self._dead_mirror_names:
            task = {**task, "drop_mirrors": tuple(self._dead_mirror_names)}
            self._dead_mirror_names.clear()
        started = time.perf_counter()
        try:
            for conn in self._conns:
                conn.send(task)
            replies = [conn.recv() for conn in self._conns]
        except (EOFError, BrokenPipeError, OSError) as exc:
            self.close()
            raise ShardWorkerError(
                "a shard worker died mid-round; the pool was torn down "
                "(its shared-memory segments have been released)"
            ) from exc
        wall_s = time.perf_counter() - started
        self._release_retired()
        failures = [reply[1] for reply in replies if reply[0] != "ok"]
        if failures:
            self.close()
            raise ShardWorkerError(f"shard worker failed:\n{failures[0]}")
        tel = current_telemetry()
        if tel.enabled and task.get("op") != "ping":
            tel.record_pool_round([reply[2] for reply in replies], wall_s)
        return [reply[1] for reply in replies]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Terminate workers and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if os.getpid() != self._owner_pid:
            # Inherited across a fork: the parent still owns the workers,
            # pipes, and segments.  Drop our references without touching
            # the shared file descriptors or unlinking anything.
            self._mirrors.clear()
            self._retired.clear()
            self._arena = None
            self._conns = []
            self._workers = []
            return
        for conn in self._conns:
            with contextlib.suppress(Exception):
                conn.send(None)
        for proc in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            with contextlib.suppress(Exception):
                conn.close()
        segments = list(self._retired)
        if self._arena is not None:
            segments.append(self._arena)
        segments.extend(entry[1] for entry in self._mirrors.values())
        self._mirrors.clear()
        self._retired.clear()
        self._arena = None
        for segment in segments:
            with contextlib.suppress(Exception):
                segment.close()
            with contextlib.suppress(Exception):
                segment.unlink()

    def alive(self) -> bool:
        if self._closed or os.getpid() != self._owner_pid:
            return False
        return all(proc.is_alive() for proc in self._workers)

    def __del__(self):  # pragma: no cover - interpreter teardown ordering
        with contextlib.suppress(Exception):
            self.close()


# --------------------------------------------------------------------------- #
# the kernel
# --------------------------------------------------------------------------- #
_pools: dict[int, ShardPool] = {}


def _get_pool(shards: int) -> ShardPool:
    pool = _pools.get(shards)
    if pool is None or not pool.alive():
        # alive() is False for pools inherited across a fork, so a forked
        # sweep worker transparently builds its own pool instead of writing
        # into its parent's pipes.
        pool = ShardPool(shards)
        _pools[shards] = pool
    return pool


def shutdown_pools() -> None:
    """Close every worker pool and release all shared memory (idempotent).

    Pools inherited across a fork are dropped without touching the
    parent's resources (see :meth:`ShardPool.close`).
    """
    for pool in list(_pools.values()):
        pool.close()
    _pools.clear()


_cleanup_hooks_pid: int | None = None


def _ensure_cleanup_hooks() -> None:
    """Register exit-time cleanup in *this* process (once per pid).

    Plain interpreters run ``atexit`` hooks, but multiprocessing children
    (e.g. a forked SweepRunner worker) leave via ``util._exit_function`` +
    ``os._exit`` and only run multiprocessing Finalizers — and a forked
    child's ``Process._bootstrap`` clears the finalizer registry it
    inherited, so registration must happen lazily in the process that
    actually creates a pool, not at import time.  With both hooks in
    place, any process that ran sharded work unlinks its segments on a
    clean exit (zero resource_tracker "leaked shared_memory" noise).
    """
    global _cleanup_hooks_pid
    if _cleanup_hooks_pid == os.getpid():
        return
    _cleanup_hooks_pid = os.getpid()
    atexit.register(shutdown_pools)
    _mp_util.Finalize(None, shutdown_pools, exitpriority=100)


class ShardedKernel(VectorizedKernel):
    """Columnar execution sharded over a persistent worker-process pool.

    Inherits every :class:`VectorizedKernel` primitive as the inline
    fallback; large batches of the delivery / probe / reliable-relay
    primitives run on the pool instead.  Stateless per run — the only
    state is the process-wide pool cache and the resolved configuration.
    """

    name = "sharded"

    def __init__(self) -> None:
        self._shards: int | None = None
        self._min_batch: int = DEFAULT_MIN_BATCH

    # -- configuration ------------------------------------------------- #
    @property
    def shards(self) -> int:
        return self._shards if self._shards is not None else default_shards()

    @property
    def min_batch(self) -> int:
        return self._min_batch

    def configure(self, shards: int | None = None, min_batch: int | None = None) -> None:
        """Set process-wide defaults (see also :meth:`options`)."""
        if shards is not None:
            if int(shards) < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            self._shards = int(shards)
        if min_batch is not None:
            if int(min_batch) < 0:
                raise ValueError(f"min_batch must be >= 0, got {min_batch}")
            self._min_batch = int(min_batch)

    @contextlib.contextmanager
    def options(self, shards: int | None = None, min_batch: int | None = None):
        """Temporarily override the configuration (used by ``RunSpec`` dispatch)."""
        previous = (self._shards, self._min_batch)
        try:
            self.configure(shards=shards, min_batch=min_batch)
            yield self
        finally:
            self._shards, self._min_batch = previous

    def _pool_for(self, count: int) -> ShardPool | None:
        if count < self._min_batch:
            self._count_inline("sharded.inline.small_batch")
            return None
        shards = self.shards
        if shards <= 1 and self._min_batch > 0:
            # A single shard on a plain run adds IPC for no parallelism;
            # min_batch == 0 forces the pool anyway (tests exercise it so).
            self._count_inline("sharded.inline.single_shard")
            return None
        return _get_pool(shards)

    @staticmethod
    def _count_inline(reason: str) -> None:
        tel = current_telemetry()
        if tel.enabled:
            tel.count(reason)

    # -- inline fallbacks ----------------------------------------------- #
    # Batches the pool rejects (below ``min_batch``, or a single shard) run
    # through these hooks; the compiled kernel overrides them with its
    # jitted implementations, which is how ``sharded`` composes with
    # ``compiled`` slice-local ops.
    _inline_deliver = staticmethod(VectorizedKernel.deliver)
    _inline_probe_exchange = staticmethod(VectorizedKernel.probe_exchange)
    _inline_relay_to_roots = staticmethod(VectorizedKernel.relay_to_roots)

    def refresh_alive(self, alive: np.ndarray) -> None:
        """Push an in-place churn update of ``alive`` into the pool's mirror.

        Only an *existing* pool with an existing mirror needs the rewrite;
        otherwise the next :meth:`ShardPool.mirror` call copies the current
        contents and there is nothing to do (in particular this never spins
        up a pool).
        """
        pool = _pools.get(self.shards)
        if pool is not None and pool.alive():
            pool.update_mirror(alive)

    # -- primitives ---------------------------------------------------- #
    def deliver(
        self,
        metrics: MetricsCollector,
        oracle: LossOracle,
        kind,
        targets: np.ndarray,
        *,
        senders,
        round_index,
        alive: np.ndarray | None = None,
        payload_words: int = 1,
        nonces: np.ndarray | None = None,
        dead_targets: bool = False,
    ) -> np.ndarray:
        targets = np.asarray(targets)
        count = int(targets.size)
        pool = None if (oracle.reliable and alive is None) else self._pool_for(count)
        if pool is None:
            return self._inline_deliver(
                metrics, oracle, kind, targets,
                senders=senders, round_index=round_index, alive=alive,
                payload_words=payload_words, nonces=nonces,
                dead_targets=dead_targets,
            )
        if dead_targets and alive is not None and count:
            wasted = count - int(np.count_nonzero(alive[targets]))
            if wasted:
                metrics.record_dead_targets(wasted)
        layout: dict[str, np.ndarray] = {"targets": targets}
        if isinstance(senders, np.ndarray):
            layout["senders"] = senders
        if isinstance(round_index, np.ndarray):
            layout["rounds"] = round_index
        if nonces is not None:
            layout["nonces"] = np.asarray(nonces)
        layout["__out__"] = np.zeros(count, dtype=bool)
        arena, specs = pool.stage(layout)
        task = {
            "op": "fates",
            "count": count,
            "arena": arena,
            "targets": specs["targets"],
            "senders": specs["senders"] if "senders" in specs else int(senders),
            "round_index": specs["rounds"] if "rounds" in specs else int(round_index),
            "nonces": specs.get("nonces"),
            "kind": str(getattr(kind, "value", kind)),
            "loss_probability": oracle.loss_probability,
            "key": oracle.key,
            "alive": pool.mirror(alive) if alive is not None else None,
            "out": specs["__out__"],
        }
        delivered_counts = pool.run(task)
        delivered = np.array(pool.out_column(arena, specs["__out__"]), dtype=bool)
        metrics.record_messages(
            kind, count, payload_words=payload_words, lost=count - sum(delivered_counts)
        )
        return delivered

    def probe_exchange(
        self,
        metrics: MetricsCollector,
        oracle: LossOracle,
        targets: np.ndarray,
        *,
        senders: np.ndarray,
        ranks: np.ndarray,
        round_index: int,
        alive: np.ndarray | None = None,
    ) -> np.ndarray:
        targets = np.asarray(targets)
        count = int(targets.size)
        pool = self._pool_for(count)
        if pool is None:
            return self._inline_probe_exchange(
                metrics, oracle, targets,
                senders=senders, ranks=ranks, round_index=round_index, alive=alive,
            )
        arena, specs = pool.stage(
            {"targets": targets, "senders": senders, "__out__": np.zeros(count, dtype=bool)}
        )
        task = {
            "op": "probe",
            "count": count,
            "arena": arena,
            "targets": specs["targets"],
            "senders": specs["senders"],
            "round_index": int(round_index),
            "loss_probability": oracle.loss_probability,
            "key": oracle.key,
            "ranks": pool.mirror(ranks),
            "alive": pool.mirror(alive) if alive is not None else None,
            "out": specs["__out__"],
        }
        counts = pool.run(task)
        probe_ok = sum(c[0] for c in counts)
        reply_ok = sum(c[1] for c in counts)
        metrics.record_messages(MessageKind.PROBE, count, payload_words=1, lost=count - probe_ok)
        metrics.record_messages(MessageKind.RANK, probe_ok, payload_words=1, lost=probe_ok - reply_ok)
        return np.array(pool.out_column(arena, specs["__out__"]), dtype=bool)

    def relay_to_roots(
        self,
        metrics: MetricsCollector,
        oracle: LossOracle,
        targets: np.ndarray,
        *,
        senders: np.ndarray,
        round_index: int,
        kind,
        position: np.ndarray,
        root_of: np.ndarray,
        alive: np.ndarray | None = None,
        payload_words: int = 1,
        dead_targets: bool = False,
    ) -> np.ndarray:
        targets = np.asarray(targets)
        count = int(targets.size)
        pool = self._pool_for(count)
        if pool is None:
            return self._inline_relay_to_roots(
                metrics, oracle, targets,
                senders=senders, round_index=round_index, kind=kind,
                position=position, root_of=root_of, alive=alive,
                payload_words=payload_words, dead_targets=dead_targets,
            )
        if dead_targets and alive is not None and count:
            wasted = count - int(np.count_nonzero(alive[targets]))
            if wasted:
                metrics.record_dead_targets(wasted)
        if oracle.reliable:
            arena, specs = pool.stage(
                {"targets": targets, "__out__": np.zeros(count, dtype=np.int64)}
            )
            task = {
                "op": "relay_reliable",
                "count": count,
                "arena": arena,
                "targets": specs["targets"],
                "position": pool.mirror(position),
                "root_of": pool.mirror(root_of),
                "alive": pool.mirror(alive) if alive is not None else None,
                "out": specs["__out__"],
            }
            counts = pool.run(task)
            first_ok = sum(c[0] for c in counts)
            forwards = sum(c[1] for c in counts)
            forward_arrived = sum(c[2] for c in counts)
            metrics.record_messages(kind, count, payload_words=payload_words, lost=count - first_ok)
            if forwards:
                metrics.record_messages(
                    MessageKind.FORWARD,
                    forwards,
                    payload_words=payload_words,
                    lost=forwards - forward_arrived,
                )
                if dead_targets and alive is not None and forwards > forward_arrived:
                    # Reliable links: a forward is blocked only by a dead root.
                    metrics.record_dead_targets(forwards - forward_arrived)
            return np.array(pool.out_column(arena, specs["__out__"]))
        return self._relay_lossy_pooled(
            pool, metrics, oracle, targets,
            senders=senders, round_index=round_index, kind=kind,
            position=position, root_of=root_of, alive=alive,
            payload_words=payload_words, dead_targets=dead_targets,
        )

    def _relay_lossy_pooled(
        self,
        pool: ShardPool,
        metrics: MetricsCollector,
        oracle: LossOracle,
        targets: np.ndarray,
        *,
        senders: np.ndarray,
        round_index: int,
        kind,
        position: np.ndarray,
        root_of: np.ndarray,
        alive: np.ndarray | None,
        payload_words: int,
        dead_targets: bool = False,
    ) -> np.ndarray:
        """The lossy relay on the pool: two barriers, cross-shard nonces.

        Barrier 1 computes slice-local first-hop fates and per-slice
        occurrence partials; the parent merges the per-key forward counts
        with one exclusive scan across slice boundaries and promotes each
        slice-local rank to the batch-global occurrence rank in place;
        barrier 2 hashes the FORWARD fates slice-locally against those
        nonces.  Fates are identity-keyed, so the result is bit-identical
        to the inline (and engine) relay.
        """
        count = int(targets.size)
        senders = np.asarray(senders)
        arena, specs = pool.stage(
            {
                "targets": targets,
                "senders": senders,
                "fwd": np.full(count, -1, dtype=np.int64),
                "nonce": np.zeros(count, dtype=np.int64),
                "__out__": np.full(count, -1, dtype=np.int64),
            }
        )
        task = {
            "op": "relay_lossy_first",
            "count": count,
            "arena": arena,
            "targets": specs["targets"],
            "senders": specs["senders"],
            "fwd": specs["fwd"],
            "nonce": specs["nonce"],
            "round_index": int(round_index),
            "kind": str(getattr(kind, "value", kind)),
            "loss_probability": oracle.loss_probability,
            "key": oracle.key,
            "position": pool.mirror(position),
            "root_of": pool.mirror(root_of),
            "alive": pool.mirror(alive) if alive is not None else None,
            "out": specs["__out__"],
        }
        partials = pool.run(task)
        first_ok = sum(p[0] for p in partials)
        offsets = _merge_rank_offsets([p[1] for p in partials], [p[2] for p in partials])
        fwd_col = pool.out_column(arena, specs["fwd"])
        nonce_col = pool.out_column(arena, specs["nonce"])
        shards = pool.shards
        for index in range(shards):
            slice_keys = partials[index][1]
            slice_offsets = offsets[index]
            if not slice_keys.size or not slice_offsets.any():
                continue
            lo = count * index // shards
            hi = count * (index + 1) // shards
            fwd_slice = fwd_col[lo:hi]
            forwarding = fwd_slice >= 0
            if not forwarding.any():
                continue
            key_pos = np.searchsorted(slice_keys, fwd_slice[forwarding])
            nonce_slice = nonce_col[lo:hi]
            nonce_slice[forwarding] += slice_offsets[key_pos]
        second = {
            "op": "relay_lossy_second",
            "count": count,
            "arena": arena,
            "fwd": specs["fwd"],
            "nonce": specs["nonce"],
            "round_index": int(round_index),
            "loss_probability": oracle.loss_probability,
            "key": oracle.key,
            "position": task["position"],
            "root_of": task["root_of"],
            "alive": task["alive"],
            "out": specs["__out__"],
        }
        counts = pool.run(second)
        forwards = sum(c[0] for c in counts)
        forward_arrived = sum(c[1] for c in counts)
        metrics.record_messages(kind, count, payload_words=payload_words, lost=count - first_ok)
        if forwards:
            metrics.record_messages(
                MessageKind.FORWARD,
                forwards,
                payload_words=payload_words,
                lost=forwards - forward_arrived,
            )
            if dead_targets and alive is not None:
                # ``fwd`` holds each forwarding slot's hop_from node id (-1
                # when no forward was sent); its root is the forward's target.
                hop_from = fwd_col[fwd_col >= 0]
                wasted = int(hop_from.size) - int(
                    np.count_nonzero(alive[root_of[hop_from]])
                )
                if wasted:
                    metrics.record_dead_targets(wasted)
        return np.array(pool.out_column(arena, specs["__out__"]))


def configure(shards: int | None = None, min_batch: int | None = None) -> ShardedKernel:
    """Configure the registered ``sharded`` kernel process-wide."""
    kernel = BACKENDS[ShardedKernel.name]
    kernel.configure(shards=shards, min_batch=min_batch)
    return kernel


# Register on import (repro.substrate imports this module).
BACKENDS.setdefault(ShardedKernel.name, ShardedKernel())
