"""The topology-aware kernel path of the execution substrate.

The point-to-point kernels in :mod:`repro.substrate.kernel` execute
protocols whose communication primitive is "call a uniformly random node".
Section 4 of the paper runs on *topologies*: Local-DRR communicates over the
edges of an arbitrary graph (neighbour broadcast in the message-passing
model), and the Chord experiments route messages hop-by-hop through an
overlay.  This module gives those workloads the same
``backend="vectorized" | "engine"`` contract as everything else:

* :func:`neighbor_broadcast` — one round of "every sender messages all of
  its neighbours", executed as a single batch over the graph's directed
  edge arrays (the CSR view of :class:`~repro.topology.base.Topology`).
  Local-DRR's rank-exchange round is exactly this primitive.
* :func:`run_chord_lookups` — a *batch* of Chord identifier lookups, all
  in-flight routes advancing one overlay hop per round.  The vectorized
  path keeps every route's cursor in an array and resolves the greedy
  finger choice with one columnar pass per finger level; the engine path
  runs :class:`ChordLookupNode` state machines that queue incoming routes
  and forward them in their next round.

Both paths charge messages and decide loss through the shared delivery /
oracle machinery in :mod:`repro.substrate.delivery`, so the two backends
produce identical owners, hop counts, rounds, and (lost-)message accounting
for the same seed — on reliable and lossy networks alike.  A route's hop
messages are keyed for the loss oracle by ``(round, LOOKUP, from, to,
route_id)``; the route id is the nonce because two routes can legitimately
cross the same overlay link in the same round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..observability.telemetry import instrumented
from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from .delivery import deliver_batch
from .kernel import EngineKernel, VectorizedKernel, run_on

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology
    from ..topology.chord import ChordNetwork

__all__ = [
    "ChordLookupBatch",
    "ChordLookupNode",
    "neighbor_broadcast",
    "run_chord_lookups",
]


# --------------------------------------------------------------------------- #
# neighbour broadcast (message-passing model on a graph)
# --------------------------------------------------------------------------- #
@instrumented("substrate.neighbor_broadcast")
def neighbor_broadcast(
    metrics: MetricsCollector,
    oracle: LossOracle,
    kind: str | MessageKind,
    topology: "Topology",
    *,
    senders_alive: np.ndarray,
    round_index: int,
    alive: np.ndarray | None = None,
    payload_words: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One batched round of "every alive sender messages all its neighbours".

    Returns ``(src, dst, delivered)`` over the directed edges whose sender
    is alive: the transmission arrays and the per-edge delivered mask.
    Charging and loss semantics are those of :func:`deliver_batch` (every
    attempt charged; lost when the link drops it or the recipient is dead).
    """
    src, dst = topology.edge_arrays()
    live = senders_alive[src]
    src, dst = src[live], dst[live]
    delivered = deliver_batch(
        metrics, oracle, kind, dst,
        senders=src, round_index=round_index,
        alive=alive if alive is not None else senders_alive,
        payload_words=payload_words,
    )
    return src, dst, delivered


# --------------------------------------------------------------------------- #
# batched Chord lookups
# --------------------------------------------------------------------------- #
@dataclass
class ChordLookupBatch:
    """Outcome of a batch of Chord identifier lookups.

    Attributes
    ----------
    owners:
        Node index responsible for each target identifier, or ``-1`` when
        the route died (a hop message was lost — there are no retries).
    hops:
        Overlay hops attempted per route, including a final lost hop.
    delivered:
        Whether the route reached its owner.
    replied:
        Whether the owner's reply reached the source (always False when the
        batch ran without ``count_reply``; a reply can be lost even when
        the forward route delivered).
    rounds:
        Rounds the batch took (all in-flight routes advance one hop per
        round, so this is the max hop count, plus the trailing reply round
        under ``count_reply``).
    metrics:
        Message accounting (every hop is one LOOKUP message; every reply
        one LOOKUP_REPLY message).
    reply_messages:
        Number of LOOKUP_REPLY messages sent (one per delivered route when
        ``count_reply`` was requested, matching the ``hops + 1`` cost model
        of :meth:`ChordNetwork.lookup`).
    """

    owners: np.ndarray
    hops: np.ndarray
    delivered: np.ndarray
    replied: np.ndarray
    rounds: int
    metrics: MetricsCollector
    reply_messages: int = 0

    @property
    def messages(self) -> int:
        return int(self.hops.sum()) + int(self.reply_messages)

    @property
    def completion_fraction(self) -> float:
        return float(self.delivered.mean()) if self.delivered.size else 1.0


def run_chord_lookups(
    chord: "ChordNetwork",
    sources: np.ndarray,
    target_identifiers: np.ndarray,
    *,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    phase_name: str = "chord-lookup",
    backend: str = "vectorized",
    count_reply: bool = False,
) -> ChordLookupBatch:
    """Route a batch of identifier lookups, one overlay hop per round.

    Each route starts at ``sources[i]`` and greedily follows finger tables
    toward ``target_identifiers[i]``, exactly like
    :meth:`ChordNetwork.lookup`; the batch advances every in-flight route by
    one hop per round, which is how concurrent lookups behave on a real
    overlay and what makes the round count of a gossip-over-Chord round
    well defined.  Under a lossy :class:`FailureModel` a lost hop kills its
    route (no retransmissions, matching the paper's model).

    With ``count_reply`` the owner answers the source directly in the round
    after the final hop (one LOOKUP_REPLY message per delivered route,
    keyed for the loss oracle by the route id — the batched form of the
    ``hops + 1`` cost model of :meth:`ChordNetwork.lookup`).  Replies ride
    the same batched cursor arrays as the forward routes, so requesting
    them adds one round and one message per delivered route, never a
    per-route Python loop.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(target_identifiers, dtype=np.int64) % chord.ring_size
    if sources.shape != targets.shape:
        raise ValueError("sources and target_identifiers must align")
    if sources.size and (sources.min() < 0 or sources.max() >= chord.n):
        raise ValueError("source index out of range")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=chord.n)
    metrics.begin_phase(phase_name)
    oracle = LossOracle.for_run(failure_model, rng)
    if sources.size == 0:
        return ChordLookupBatch(
            owners=np.zeros(0, dtype=np.int64),
            hops=np.zeros(0, dtype=np.int64),
            delivered=np.zeros(0, dtype=bool),
            replied=np.zeros(0, dtype=bool),
            rounds=0,
            metrics=metrics,
        )

    return run_on(
        backend,
        vectorized=lambda kernel: _chord_lookups_vectorized(
            kernel, chord, sources, targets, oracle, metrics, count_reply
        ),
        engine=lambda kernel: _chord_lookups_engine(
            kernel, chord, sources, targets, failure_model, oracle, rng, metrics, count_reply
        ),
    )


def _ring_in_interval(x, lo, hi, ring_size: int):
    """Vectorised circular membership test ``x in (lo, hi]`` (mod ring).

    Matches :meth:`ChordNetwork._in_interval` including the degenerate
    ``lo == hi`` case, which denotes the whole ring.
    """
    span = (hi - lo) % ring_size
    offset = (x - lo) % ring_size
    return (span == 0) | ((offset > 0) & (offset <= span))


def _next_hops(
    chord: "ChordNetwork", current: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy next hop for each route: ``(next_node, is_final)`` arrays."""
    ids = chord.identifiers
    ring = chord.ring_size
    succ = chord.successors[current]
    final = _ring_in_interval(targets, ids[current], ids[succ], ring)
    nxt = succ.copy()
    pending = ~final
    if pending.any():
        chosen = current.copy()
        undecided = pending.copy()
        # Columnar closest-preceding-finger: highest finger level first.
        for k in range(chord.m - 1, -1, -1):
            if not undecided.any():
                break
            finger = chord.fingers[current, k]
            hit = undecided & _ring_in_interval(
                ids[finger], ids[current], targets - 1, ring
            )
            chosen[hit] = finger[hit]
            undecided &= ~hit
        # A node with no preceding finger falls back to its successor.
        stuck = pending & (chosen == current)
        chosen[stuck] = succ[stuck]
        nxt[pending] = chosen[pending]
    return nxt, final


def _route_batch(
    chord: "ChordNetwork",
    sources: np.ndarray,
    targets: np.ndarray,
    oracle: LossOracle,
    metrics: MetricsCollector | None,
    count_reply: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """The one columnar routing loop:
    ``(owners, hops, delivered, replied, reply_messages, rounds)``.

    With ``metrics`` the loop *is* the vectorized backend (every hop charged
    through :func:`deliver_batch`); without it the same loop replays cursors
    and loss fates only — routing decisions and oracle keys are identical,
    which is how the engine backend reconstructs per-route hop counts
    without double-charging the messages its own execution already charged.

    Replies (``count_reply``) ride the same cursor machinery: routes that
    complete in round ``r`` queue one batched LOOKUP_REPLY send for round
    ``r + 1`` (owner -> source, nonce = route id), exactly when the engine's
    owner node answers from its next ``begin_round``.
    """
    count = sources.size
    owners = np.full(count, -1, dtype=np.int64)
    hops = np.zeros(count, dtype=np.int64)
    delivered = np.zeros(count, dtype=bool)
    replied = np.zeros(count, dtype=bool)
    reply_messages = 0
    current = sources.copy()
    active = np.ones(count, dtype=bool)
    route_ids = np.arange(count, dtype=np.int64)
    #: replies queued for the next round: (owners, sources, route ids)
    pending: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    rounds = 0
    # Greedy routing terminates in <= m + n hops even in degenerate cases
    # (+1 round for the trailing replies); the loop guard protects against
    # bugs, not expected behaviour.
    for _ in range(chord.m + chord.n + 1):
        has_pending = pending is not None and pending[2].size > 0
        if not active.any() and not has_pending:
            break
        if metrics is not None:
            metrics.record_round()
        if has_pending:
            reply_from, reply_to, reply_ids = pending
            reply_messages += int(reply_ids.size)
            if metrics is not None:
                reply_ok = deliver_batch(
                    metrics, oracle, MessageKind.LOOKUP_REPLY, reply_to,
                    senders=reply_from, round_index=rounds,
                    nonces=reply_ids, payload_words=2,
                )
            else:
                reply_ok = ~oracle.sample(
                    rounds, MessageKind.LOOKUP_REPLY, reply_from, reply_to, nonces=reply_ids
                )
            replied[reply_ids[reply_ok]] = True
        pending = None
        idx = np.flatnonzero(active)
        if idx.size:
            nxt, final = _next_hops(chord, current[idx], targets[idx])
            hops[idx] += 1
            if metrics is not None:
                arrived = deliver_batch(
                    metrics, oracle, MessageKind.LOOKUP, nxt,
                    senders=current[idx], round_index=rounds,
                    nonces=route_ids[idx], payload_words=2,
                )
            else:
                arrived = ~oracle.sample(
                    rounds, MessageKind.LOOKUP, current[idx], nxt, nonces=route_ids[idx]
                )
            done = arrived & final
            owners[idx[done]] = nxt[done]
            delivered[idx[done]] = True
            if count_reply and done.any():
                pending = (nxt[done].copy(), sources[idx[done]], route_ids[idx[done]])
            current[idx] = nxt
            active[idx] = arrived & ~final
        rounds += 1
    if active.any():
        raise RuntimeError(
            "Chord lookup batch failed to converge; finger tables are inconsistent"
        )
    return owners, hops, delivered, replied, reply_messages, rounds


def _chord_lookups_vectorized(
    kernel: VectorizedKernel,
    chord: "ChordNetwork",
    sources: np.ndarray,
    targets: np.ndarray,
    oracle: LossOracle,
    metrics: MetricsCollector,
    count_reply: bool,
) -> ChordLookupBatch:
    del kernel  # the shared routing loop charges through deliver_batch
    owners, hops, delivered, replied, reply_messages, rounds = _route_batch(
        chord, sources, targets, oracle, metrics, count_reply
    )
    return ChordLookupBatch(
        owners=owners, hops=hops, delivered=delivered, replied=replied,
        rounds=rounds, metrics=metrics, reply_messages=reply_messages,
    )


class ChordLookupNode(ProtocolNode):
    """A Chord node in a lookup batch: queues incoming routes, forwards next round.

    All nodes share the batch-wide result arrays; the node owning a target
    records the completion when the final hop reaches it (and, when the
    batch runs with ``count_reply``, answers the route's source directly in
    its next round).
    """

    def __init__(
        self,
        node_id: int,
        chord: "ChordNetwork",
        owners: np.ndarray,
        delivered: np.ndarray,
        replied: np.ndarray,
        count_reply: bool = False,
    ) -> None:
        super().__init__(node_id)
        self.chord = chord
        self.owners = owners
        self.delivered = delivered
        self.replied = replied
        self.count_reply = count_reply
        #: routes to forward in the next round, as (route_id, target, source)
        #: triples.  A node may forward arbitrarily many routes per round, so
        #: the batch runs with the engine's call budget disabled
        #: (enforce_call_budget=False in _chord_lookups_engine).
        self.queued: list[tuple[int, int, int]] = []
        #: completed routes whose reply goes out next round: (route_id, source)
        self.reply_queue: list[tuple[int, int]] = []
        #: LOOKUP_REPLY messages this node sent (for the cost model)
        self.replies_sent = 0

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        sends: list[Send] = []
        if self.reply_queue:
            replies, self.reply_queue = self.reply_queue, []
            for route_id, source in replies:
                self.replies_sent += 1
                sends.append(
                    Send(
                        recipient=int(source),
                        kind=MessageKind.LOOKUP_REPLY,
                        payload={"route": int(route_id), "owner": self.node_id},
                        payload_words=2,
                        nonce=int(route_id),
                    )
                )
        if not self.queued:
            return sends
        routes, self.queued = self.queued, []
        for route_id, target, source in routes:
            nxt, final = _next_hops(
                self.chord,
                np.array([self.node_id], dtype=np.int64),
                np.array([target], dtype=np.int64),
            )
            sends.append(
                Send(
                    recipient=int(nxt[0]),
                    kind=MessageKind.LOOKUP,
                    payload={
                        "route": int(route_id),
                        "target": int(target),
                        "source": int(source),
                        "final": bool(final[0]),
                    },
                    payload_words=2,
                    nonce=int(route_id),
                )
            )
        return sends

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.LOOKUP_REPLY.value:
                self.replied[int(message.get("route"))] = True
                continue
            if message.kind != MessageKind.LOOKUP.value:
                continue
            route_id = int(message.get("route"))
            if message.get("final"):
                self.owners[route_id] = self.node_id
                self.delivered[route_id] = True
                if self.count_reply:
                    self.reply_queue.append((route_id, int(message.get("source"))))
            else:
                self.queued.append(
                    (route_id, int(message.get("target")), int(message.get("source")))
                )
        return []

    def is_complete(self) -> bool:
        return not self.queued and not self.reply_queue


def _chord_lookups_engine(
    kernel: EngineKernel,
    chord: "ChordNetwork",
    sources: np.ndarray,
    targets: np.ndarray,
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    count_reply: bool,
) -> ChordLookupBatch:
    count = sources.size
    owners = np.full(count, -1, dtype=np.int64)
    delivered = np.zeros(count, dtype=bool)
    replied = np.zeros(count, dtype=bool)
    nodes = [
        ChordLookupNode(i, chord, owners, delivered, replied, count_reply)
        for i in range(chord.n)
    ]
    for route_id in range(count):
        nodes[int(sources[route_id])].queued.append(
            (route_id, int(targets[route_id]), int(sources[route_id]))
        )

    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=np.ones(chord.n, dtype=bool),
        neighbor_fn=lambda node_id: chord.neighbors(node_id),
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=chord.m + chord.n + 1,
        strict=False,
        enforce_call_budget=False,
    )
    if not outcome.completed:
        raise RuntimeError(
            "Chord lookup batch failed to converge; finger tables are inconsistent"
        )
    # Per-route hop counts: the engine's own execution already charged every
    # hop to `metrics`, so replay the shared routing loop without metrics to
    # reconstruct cursors and loss fates (both are deterministic).
    hops = _route_batch(chord, sources, targets, oracle, metrics=None)[1]
    return ChordLookupBatch(
        owners=owners, hops=hops, delivered=delivered, replied=replied,
        rounds=outcome.rounds, metrics=metrics,
        reply_messages=sum(node.replies_sent for node in nodes),
    )
