"""The ``compiled`` kernel: numba-jitted hot primitives for n up to 10^8.

Fourth execution substrate (ROADMAP: "a compiled variant of the columnar
kernel").  A :class:`~repro.substrate.sharded.ShardedKernel` subclass whose
hot primitives — delivery-fate hashing, the fused PROBE -> RANK exchange,
the two-hop Phase III relay, ``occurrence_index``, DRR frontier compaction,
and the gossip-ave scatter-adds — are ``@njit(cache=True, parallel=True)``
kernels over pre-allocated scratch buffers.  Protocols reach it through the
ordinary ``backend="compiled"`` seam with zero call-site changes.

Bit-identity
------------
The jitted kernels compute the *same pure functions* as the NumPy paths:

* Loss fates replicate :meth:`~repro.simulator.failures.LossOracle._mix`
  exactly — the same splitmix64 chain over the same ``(run key, kind salt,
  round, sender, recipient, nonce)`` identity, the same top-53-bit
  threshold compare.  (blake2b only ever derives the run key and the kind
  salts, in Python, before any kernel runs.)
* Float summation order matches the vectorized kernel: the gossip-ave fold
  accumulates per-position partials serially in batch order (bincount's
  order) and only the final fold across positions runs in parallel, so
  fixed-seed estimates are bit-identical, not merely close.

``tests/test_substrate.py`` extends the backend-equivalence matrix to four
backends wherever numba is importable.

Optional dependency
-------------------
numba is an optional extra (``pip install .[compiled]``).  Without it the
backend deregisters itself: ``BACKENDS`` has no ``"compiled"`` entry and
:func:`~repro.substrate.kernel.normalize_backend` raises a
``ConfigurationError`` that says how to install it.  Setting the
``REPRO_COMPILED_PYTHON`` environment variable (or using the
:func:`python_fallback` test helper) registers the kernel with pure-NumPy
fallbacks instead, which exercises the registration / options /
orchestration layers without numba.

First use pays numba's compile cost once per primitive signature;
``cache=True`` persists the machine code on disk, so subsequent processes
start warm.  The kernel auto-enables the lossless half of the
:mod:`repro.substrate.tuning` narrowing pass (index arrays only — ids are
still *drawn* at full width, so the RNG stream and every result are
unchanged); accumulators always stay ``float64``.

Composing with ``sharded``: ``backend_options={"shards": P}`` fans batches
out over the worker pool exactly like the sharded kernel (the two
optimisations stack — workers import this module, so their per-slice fate
hashing goes through the jitted batch hasher installed into
:mod:`repro.simulator.failures`).
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

from ..observability.telemetry import instrumented
from ..simulator import failures
from ..simulator.failures import kind_salt
from ..simulator.message import MessageKind
from .delivery import (
    deliver_batch,
    fold_pushes,
    occurrence_index,
    probe_exchange,
    relay_to_roots,
    sample_uniform,
)
from .kernel import BACKENDS, UNAVAILABLE_BACKENDS
from .sharded import ShardedKernel
from .tuning import get_tuning, tuned

__all__ = [
    "NUMBA_AVAILABLE",
    "CompiledKernel",
    "deregister",
    "python_fallback",
    "register",
]

try:  # pragma: no cover - exercised in environments with numba installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator standing in for numba.njit when it is absent.

        The decorated loops are only ever *called* when numba compiled
        them — the kernel methods below delegate to the NumPy paths in
        python-fallback mode — but they must stay importable either way.
        """
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


_FORCE_PYTHON_ENV = "REPRO_COMPILED_PYTHON"

NUMBA_REQUIREMENT = (
    "it needs numba, which is not installed — install the optional extra "
    "(pip install .[compiled]) or choose another backend"
)

# splitmix64 constants and shift amounts, typed uint64 so every jitted
# operation stays in wrapping uint64 arithmetic (mixing uint64 with plain
# int literals would promote to float64 under NumPy rules).
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_S11 = np.uint64(11)
_S27 = np.uint64(27)
_S30 = np.uint64(30)
_S31 = np.uint64(31)

_EMPTY_ALIVE = np.zeros(0, dtype=np.bool_)


# --------------------------------------------------------------------------- #
# jitted loops (every one bit-identical to its NumPy counterpart)
# --------------------------------------------------------------------------- #
@njit(cache=True, inline="always")
def _sm64(x):
    x = x + _GAMMA
    x = (x ^ (x >> _S30)) * _M1
    x = (x ^ (x >> _S27)) * _M2
    return x ^ (x >> _S31)


@njit(cache=True, parallel=True)
def _k_hash(key, kinds, kstep, rounds, rstep, senders, sstep, recipients, nonces, nstep, out):
    """The LossOracle._mix chain for one batch of mixed-identity messages."""
    for i in prange(recipients.size):
        x = _sm64(key ^ kinds[i * kstep])
        x = _sm64(x ^ np.uint64(rounds[i * rstep]))
        x = _sm64(x ^ np.uint64(senders[i * sstep]))
        x = _sm64(x ^ np.uint64(recipients[i]))
        x = _sm64(x ^ np.uint64(nonces[i * nstep]))
        out[i] = x


@njit(cache=True, parallel=True)
def _k_deliver(key, salt, rounds, rstep, senders, sstep, targets, nonces, nstep,
               threshold, alive, has_alive, out):
    """Fused lossy delivery fates: hash + threshold + liveness gather."""
    ok = 0
    for i in prange(targets.size):
        t = targets[i]
        x = _sm64(key ^ salt)
        x = _sm64(x ^ np.uint64(rounds[i * rstep]))
        x = _sm64(x ^ np.uint64(senders[i * sstep]))
        x = _sm64(x ^ np.uint64(t))
        x = _sm64(x ^ np.uint64(nonces[i * nstep]))
        delivered = (x >> _S11) >= threshold
        if delivered and has_alive:
            delivered = alive[t]
        out[i] = delivered
        if delivered:
            ok += 1
    return ok


@njit(cache=True, parallel=True)
def _k_probe(key, probe_salt, rank_salt, round_u, senders, targets, ranks,
             threshold, alive, has_alive, reliable, out):
    """One fused DRR probe exchange: PROBE fate, RANK fate, rank compare."""
    probe_ok = 0
    reply_ok = 0
    for i in prange(targets.size):
        s = senders[i]
        t = targets[i]
        if reliable:
            p = alive[t] if has_alive else True
        else:
            x = _sm64(key ^ probe_salt)
            x = _sm64(x ^ round_u)
            x = _sm64(x ^ np.uint64(s))
            x = _sm64(x ^ np.uint64(t))
            x = _sm64(x)
            p = (x >> _S11) >= threshold
            if p and has_alive:
                p = alive[t]
        found = False
        if p:
            probe_ok += 1
            if reliable:
                r_ok = alive[s] if has_alive else True
            else:
                y = _sm64(key ^ rank_salt)
                y = _sm64(y ^ round_u)
                y = _sm64(y ^ np.uint64(t))
                y = _sm64(y ^ np.uint64(s))
                y = _sm64(y)
                r_ok = (y >> _S11) >= threshold
                if r_ok and has_alive:
                    r_ok = alive[s]
            if r_ok:
                reply_ok += 1
                found = ranks[t] > ranks[s]
        out[i] = found
    return probe_ok, reply_ok


@njit(cache=True, parallel=True)
def _k_relay(key, kind_salt_u, fwd_salt_u, round_u, senders, targets, position,
             root_of, alive, has_alive, reliable, threshold, counts,
             receiver, fwd, nonce):
    """The two-hop Phase III relay, fused over one batch.

    Pass 1 (parallel): first-hop fates, direct root hits, forward marking.
    Pass 2 (serial, batch order): single-pass occurrence ranks through the
    pre-allocated ``counts`` scratch — the nonces the engine's forwarders
    assign.  Pass 3 (parallel): FORWARD fates.  Pass 4 restores the
    all-zero ``counts`` invariant by resetting only the touched entries.
    """
    m = targets.size
    first_ok = 0
    for i in prange(m):
        t = targets[i]
        if reliable:
            ok = alive[t] if has_alive else True
        else:
            x = _sm64(key ^ kind_salt_u)
            x = _sm64(x ^ round_u)
            x = _sm64(x ^ np.uint64(senders[i]))
            x = _sm64(x ^ np.uint64(t))
            x = _sm64(x)
            ok = (x >> _S11) >= threshold
            if ok and has_alive:
                ok = alive[t]
        r = -1
        f = -1
        if ok:
            first_ok += 1
            p = position[t]
            if p >= 0:
                r = p
            elif root_of[t] >= 0:
                f = t
        receiver[i] = r
        fwd[i] = f
    forwards = 0
    for i in range(m):
        f = fwd[i]
        if f >= 0:
            forwards += 1
            nonce[i] = counts[f]
            counts[f] += 1
    arrived = 0
    for i in prange(m):
        f = fwd[i]
        if f >= 0:
            h = root_of[f]
            if reliable:
                ok2 = alive[h] if has_alive else True
            else:
                y = _sm64(key ^ fwd_salt_u)
                y = _sm64(y ^ round_u)
                y = _sm64(y ^ np.uint64(f))
                y = _sm64(y ^ np.uint64(h))
                y = _sm64(y ^ np.uint64(nonce[i]))
                ok2 = (y >> _S11) >= threshold
                if ok2 and has_alive:
                    ok2 = alive[h]
            if ok2:
                receiver[i] = position[h]
                arrived += 1
    for i in range(m):
        f = fwd[i]
        if f >= 0:
            counts[f] = 0
    return first_ok, forwards, arrived


@njit(cache=True, parallel=True)
def _k_churn_mask(key, salt, round_u, ids, threshold, out):
    """Fused churn-fate mask: the ChurnOracle hash chain + threshold compare."""
    hits = 0
    for i in prange(ids.size):
        x = _sm64(key ^ salt)
        x = _sm64(x ^ round_u)
        x = _sm64(x ^ np.uint64(ids[i]))
        hit = (x >> _S11) < threshold
        out[i] = hit
        if hit:
            hits += 1
    return hits


@njit(cache=True)
def _k_occurrence(keys, base, counts, out):
    """True single-pass occurrence ranks over a pre-allocated counts scratch."""
    for i in range(keys.size):
        k = np.int64(keys[i]) - base
        out[i] = counts[k]
        counts[k] += 1
    for i in range(keys.size):
        counts[np.int64(keys[i]) - base] = 0


@njit(cache=True)
def _k_compact(active, drop):
    """Order-preserving frontier compaction in one pass (no ~drop temp)."""
    out = np.empty_like(active)
    j = 0
    for i in range(active.size):
        if not drop[i]:
            out[j] = active[i]
            j += 1
    return out[:j]


@njit(cache=True, parallel=True)
def _k_fold(receiver, send_s, send_g, s, g, part_s, part_g):
    """Gossip-ave fold: serial per-position partials (bincount's summation
    order), then a parallel fold of the partials into the accumulators."""
    m = s.size
    for j in prange(m):
        part_s[j] = 0.0
        part_g[j] = 0.0
    delivered = 0
    for i in range(receiver.size):
        r = receiver[i]
        if r >= 0:
            delivered += 1
            part_s[r] += send_s[i]
            part_g[r] += send_g[i]
    if delivered > 0:
        for j in prange(m):
            s[j] += part_s[j]
            g[j] += part_g[j]


# --------------------------------------------------------------------------- #
# scalar/array normalisation for the stride-0 broadcast trick
# --------------------------------------------------------------------------- #
def _identity64(value):
    """Return ``(int64-compatible array, stride)`` for a scalar or array."""
    if isinstance(value, np.ndarray) and value.ndim > 0:
        return value, 1
    return np.full(1, int(value), dtype=np.int64), 0


def _salts_u64(value):
    if isinstance(value, np.ndarray) and value.ndim > 0:
        return value.astype(np.uint64, copy=False), 1
    return np.full(1, np.uint64(value), dtype=np.uint64), 0


def _batch_hash(key, kind_value, round_index, senders, recipients, nonces):
    """The accelerated :meth:`LossOracle._mix` installed into ``failures``."""
    recipients = np.asarray(recipients)
    kinds, kstep = _salts_u64(kind_value)
    rounds, rstep = _identity64(round_index)
    sends, sstep = _identity64(senders)
    nons, nstep = _identity64(nonces if nonces is not None else 0)
    out = np.empty(recipients.size, dtype=np.uint64)
    _k_hash(np.uint64(key), kinds, kstep, rounds, rstep, sends, sstep,
            recipients, nons, nstep, out)
    return out


def _churn_mask(key, salt, round_index, ids, threshold):
    """The accelerated :meth:`ChurnOracle._fates` installed into ``failures``."""
    ids = np.asarray(ids)
    out = np.empty(ids.size, dtype=np.bool_)
    _k_churn_mask(
        np.uint64(key), np.uint64(salt), np.uint64(int(round_index)),
        ids, np.uint64(threshold), out,
    )
    return out


# --------------------------------------------------------------------------- #
# the kernel
# --------------------------------------------------------------------------- #
class CompiledKernel(ShardedKernel):
    """Columnar execution with numba-compiled hot primitives.

    Subclasses :class:`ShardedKernel` so ``backend_options={"shards": P}``
    composes the jitted slice work with the shared-memory pool; with the
    default single shard everything runs inline through the jitted loops.
    Scratch buffers (occurrence counts, fold partials) are pre-allocated
    per kernel and grown monotonically; :meth:`release_scratch` frees them
    after an exceptionally large run.
    """

    name = "compiled"

    #: enable the provably-lossless half of the tuning narrowing pass
    #: (index arrays only — never estimate accumulators)
    auto_narrow_ids: bool = True

    def __init__(self) -> None:
        super().__init__()
        self._scratch: dict[str, np.ndarray] = {}

    # -- configuration -------------------------------------------------- #
    @property
    def shards(self) -> int:
        # Unlike ``sharded`` (which defaults to the machine's cores), the
        # compiled kernel is single-process unless shards are requested:
        # its parallelism comes from the jitted loops themselves.
        return self._shards if self._shards is not None else 1

    def _pool_for(self, count: int):
        if self.shards <= 1 and self._min_batch > 0:
            # Inline compiled execution *is* the design here, not a
            # fallback — no ``sharded.inline.*`` counter fires.
            return None
        return super()._pool_for(count)

    # -- scratch management --------------------------------------------- #
    def _scratch_for(self, name: str, size: int, dtype) -> np.ndarray:
        buffer = self._scratch.get(name)
        if buffer is None or buffer.size < size:
            buffer = np.zeros(max(int(size), 1024), dtype=dtype)
            self._scratch[name] = buffer
        return buffer

    def release_scratch(self) -> None:
        """Drop the pre-allocated scratch buffers (they regrow on demand)."""
        self._scratch.clear()

    # -- primitives ------------------------------------------------------ #
    def sample_uniform(self, rng, n, size, exclude=None):
        if self.auto_narrow_ids and not get_tuning().narrow_ids:
            with tuned(narrow_ids=True):
                return sample_uniform(rng, n, size, exclude)
        return sample_uniform(rng, n, size, exclude)

    @instrumented("compiled.deliver")
    def _inline_deliver(self, metrics, oracle, kind, targets, *, senders,
                        round_index, alive=None, payload_words=1, nonces=None,
                        dead_targets=False):
        targets = np.asarray(targets)
        count = int(targets.size)
        if not NUMBA_AVAILABLE or oracle.reliable or count == 0:
            return deliver_batch(
                metrics, oracle, kind, targets,
                senders=senders, round_index=round_index, alive=alive,
                payload_words=payload_words, nonces=nonces,
                dead_targets=dead_targets,
            )
        if dead_targets and alive is not None:
            wasted = count - int(np.count_nonzero(alive[targets]))
            if wasted:
                metrics.record_dead_targets(wasted)
        rounds, rstep = _identity64(round_index)
        sends, sstep = _identity64(senders)
        nons, nstep = _identity64(nonces if nonces is not None else 0)
        out = np.empty(count, dtype=np.bool_)
        ok = _k_deliver(
            np.uint64(oracle.key), np.uint64(kind_salt(kind)),
            rounds, rstep, sends, sstep, targets, nons, nstep,
            oracle._threshold,
            alive if alive is not None else _EMPTY_ALIVE, alive is not None,
            out,
        )
        metrics.record_messages(kind, count, payload_words=payload_words, lost=count - int(ok))
        return out

    @instrumented("compiled.probe_exchange")
    def _inline_probe_exchange(self, metrics, oracle, targets, *, senders,
                               ranks, round_index, alive=None):
        targets = np.asarray(targets)
        count = int(targets.size)
        if not NUMBA_AVAILABLE or count == 0:
            return probe_exchange(
                metrics, oracle, targets,
                senders=senders, ranks=ranks, round_index=round_index, alive=alive,
            )
        out = np.empty(count, dtype=np.bool_)
        probe_ok, reply_ok = _k_probe(
            np.uint64(oracle.key),
            np.uint64(kind_salt(MessageKind.PROBE)),
            np.uint64(kind_salt(MessageKind.RANK)),
            np.uint64(int(round_index)),
            np.asarray(senders), targets, ranks,
            oracle._threshold,
            alive if alive is not None else _EMPTY_ALIVE, alive is not None,
            oracle.reliable,
            out,
        )
        probe_ok = int(probe_ok)
        reply_ok = int(reply_ok)
        metrics.record_messages(MessageKind.PROBE, count, payload_words=1, lost=count - probe_ok)
        metrics.record_messages(MessageKind.RANK, probe_ok, payload_words=1, lost=probe_ok - reply_ok)
        return out

    @instrumented("compiled.relay")
    def _inline_relay_to_roots(self, metrics, oracle, targets, *, senders,
                               round_index, kind, position, root_of,
                               alive=None, payload_words=1, dead_targets=False):
        targets = np.asarray(targets)
        count = int(targets.size)
        if not NUMBA_AVAILABLE or (oracle.reliable and alive is None) or count == 0:
            return relay_to_roots(
                metrics, oracle, targets,
                senders=senders, round_index=round_index, kind=kind,
                position=position, root_of=root_of, alive=alive,
                payload_words=payload_words, dead_targets=dead_targets,
            )
        if dead_targets and alive is not None:
            wasted = count - int(np.count_nonzero(alive[targets]))
            if wasted:
                metrics.record_dead_targets(wasted)
        counts = self._scratch_for("relay_counts", int(position.size), np.int32)
        fwd = self._scratch_for("relay_fwd", count, np.int64)[:count]
        nonce = self._scratch_for("relay_nonce", count, np.int64)[:count]
        receiver = np.empty(count, dtype=np.int64)
        first_ok, forwards, arrived = _k_relay(
            np.uint64(oracle.key), np.uint64(kind_salt(kind)),
            np.uint64(kind_salt(MessageKind.FORWARD)),
            np.uint64(int(round_index)),
            np.asarray(senders), targets, position, root_of,
            alive if alive is not None else _EMPTY_ALIVE, alive is not None,
            oracle.reliable, oracle._threshold, counts,
            receiver, fwd, nonce,
        )
        first_ok = int(first_ok)
        forwards = int(forwards)
        arrived = int(arrived)
        metrics.record_messages(kind, count, payload_words=payload_words, lost=count - first_ok)
        if forwards:
            metrics.record_messages(
                MessageKind.FORWARD, forwards,
                payload_words=payload_words, lost=forwards - arrived,
            )
            if dead_targets and alive is not None:
                # ``fwd`` (still valid scratch) holds each slot's forwarder
                # node id, -1 when no FORWARD was sent.
                hop_from = fwd[fwd >= 0]
                wasted = int(hop_from.size) - int(
                    np.count_nonzero(alive[root_of[hop_from]])
                )
                if wasted:
                    metrics.record_dead_targets(wasted)
        return receiver

    def occurrence_index(self, keys):
        keys = np.asarray(keys)
        size = int(keys.size)
        if not NUMBA_AVAILABLE or size == 0 or not np.issubdtype(keys.dtype, np.integer):
            return occurrence_index(keys)
        base = int(keys.min())
        span = int(keys.max()) - base + 1
        if span > 4 * size + 65_536:
            return occurrence_index(keys)
        counts = self._scratch_for("occurrence_counts", span, np.int32)
        out = np.empty(size, dtype=np.int64)
        _k_occurrence(keys, np.int64(base), counts, out)
        return out

    def compact_frontier(self, active, drop):
        if not NUMBA_AVAILABLE:
            return active[~drop]
        return _k_compact(np.ascontiguousarray(active), drop)

    @instrumented("compiled.fold_pushes")
    def fold_pushes(self, receiver, send_s, send_g, s, g):
        if (
            not NUMBA_AVAILABLE
            or s.dtype != np.float64
            or g.dtype != np.float64
            or send_s.dtype != np.float64
            or send_g.dtype != np.float64
        ):
            # narrow_estimates (float32 accumulators) keeps the NumPy fold
            # so the bincount-then-cast rounding stays bit-identical.
            return fold_pushes(receiver, send_s, send_g, s, g)
        part_s = self._scratch_for("fold_s", int(s.size), np.float64)[: s.size]
        part_g = self._scratch_for("fold_g", int(g.size), np.float64)[: g.size]
        _k_fold(receiver, send_s, send_g, s, g, part_s, part_g)


# --------------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------------- #
def _forced_python() -> bool:
    return os.environ.get(_FORCE_PYTHON_ENV, "").strip().lower() not in ("", "0", "false")


def register(force_python: bool = False) -> bool:
    """(Re-)evaluate registration; True when ``compiled`` is in ``BACKENDS``.

    With numba importable the backend registers and installs the jitted
    batch hasher into :mod:`repro.simulator.failures` (shared by every
    backend — the engine's chunked path and the sharded workers hash
    through it too).  Without numba the backend deregisters and leaves a
    reason in ``UNAVAILABLE_BACKENDS`` unless python fallbacks were
    explicitly requested (``force_python`` or ``REPRO_COMPILED_PYTHON``).
    """
    if NUMBA_AVAILABLE or force_python or _forced_python():
        BACKENDS.setdefault(CompiledKernel.name, CompiledKernel())
        UNAVAILABLE_BACKENDS.pop(CompiledKernel.name, None)
        if NUMBA_AVAILABLE:
            failures.set_batch_hasher(_batch_hash)
            failures.set_churn_hasher(_churn_mask)
        return True
    deregister()
    return False


def deregister() -> None:
    """Remove the backend (import failure, or tests simulating one)."""
    BACKENDS.pop(CompiledKernel.name, None)
    UNAVAILABLE_BACKENDS[CompiledKernel.name] = NUMBA_REQUIREMENT
    failures.set_batch_hasher(None)
    failures.set_churn_hasher(None)


@contextlib.contextmanager
def python_fallback():
    """Temporarily register ``compiled`` with pure-NumPy fallbacks.

    For tests on numba-less machines: exercises registration, spec
    round-trips, options, scratch and orchestration — the jitted loops
    themselves are bypassed (they are covered by the four-way equivalence
    matrix wherever numba is installed, e.g. the ``bench-compiled`` CI job).
    """
    was_registered = CompiledKernel.name in BACKENDS
    register(force_python=True)
    try:
        yield BACKENDS[CompiledKernel.name]
    finally:
        if not was_registered:
            deregister()


register()
