"""Run the CLI without installing the package: ``python -m repro <command>``.

Equivalent to the ``drr-gossip`` console entry point; useful on machines
where the package is only on ``PYTHONPATH`` (e.g. ``PYTHONPATH=src python
-m repro sweep --jobs 4``).
"""

from __future__ import annotations

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
