"""Simulation-as-a-service: an HTTP job API over the store's work queue.

The layering (thin to thick)::

    server.py   ThreadingHTTPServer — JSON transport, nothing else
    routers.py  (method, path, body) → (status, document)
    manager.py  spec validation, content-addressed dedup, store I/O
    client.py   stdlib ServiceClient (submit / wait_for / result)

Execution never happens in the service process: submissions become
pending rows in the store's claimable work queue, and pull-based workers
(``drr-gossip serve --workers N`` spawns a local pool; ``drr-gossip
worker --store PATH`` adds more from any host sharing the store) drain
them.  A run's id is its canonical spec hash, so identical submissions
deduplicate into one execution and completed specs are served straight
from the result cache.

Start a service::

    drr-gossip serve --store results/service.sqlite --workers 2

and talk to it with :class:`ServiceClient` or plain curl (see the README
"Simulation service" section).
"""

from .client import ServiceClient, ServiceError
from .manager import ServiceManager
from .routers import Router
from .server import ServiceServer, WorkerPool

__all__ = [
    "Router",
    "ServiceClient",
    "ServiceError",
    "ServiceManager",
    "ServiceServer",
    "WorkerPool",
]
